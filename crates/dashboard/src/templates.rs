//! Dashboard/row/panel templates and `$variable` instantiation.
//!
//! "The dashboard templates can be created in Grafana, and the resulting
//! JSON-based configuration is saved in the template location." Templates
//! here are dashboard-model JSON with `$jobid`, `$user`, `$hostname`,
//! `$db`, `$from`, `$to` placeholders; the Viewer Agent instantiates a
//! panel template once per host and composes rows into the job dashboard.

use crate::model::{Dashboard, Panel, Row};
use lms_util::{Error, Json, Result};

/// Substitutes `$name` placeholders in every string of a JSON tree.
pub fn substitute(json: &Json, vars: &[(&str, &str)]) -> Json {
    match json {
        Json::Str(s) => {
            let mut out = s.clone();
            for (k, v) in vars {
                out = out.replace(&format!("${k}"), v);
            }
            Json::Str(out)
        }
        Json::Arr(items) => Json::Arr(items.iter().map(|i| substitute(i, vars)).collect()),
        Json::Obj(members) => Json::Obj(
            members.iter().map(|(k, v)| (k.clone(), substitute(v, vars))).collect(),
        ),
        other => other.clone(),
    }
}

/// A named collection of templates (the "template location").
#[derive(Debug, Default)]
pub struct TemplateStore {
    /// Panel templates by name (JSON in the panel schema).
    panels: Vec<(String, Json)>,
    /// Row templates: row title template + panel template names.
    rows: Vec<(String, RowTemplate)>,
}

/// A row template: title plus the panel templates to instantiate, and the
/// measurement whose presence in the database triggers the row.
#[derive(Debug, Clone)]
pub struct RowTemplate {
    /// Row title (placeholders allowed).
    pub title: String,
    /// Names of panel templates to instantiate.
    pub panel_templates: Vec<String>,
    /// The row is included iff this measurement exists in the job DB.
    pub requires_measurement: String,
    /// Instantiate the row's panels once per host (`true`) or once per job.
    pub per_host: bool,
}

impl TemplateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in template set covering the standard LMS metrics.
    pub fn builtin() -> Self {
        let mut store = TemplateStore::new();
        store.add_panel_json(
            "cpu_busy",
            r#"{"title":"CPU busy $hostname","type":"graph","unit":"fraction",
                "targets":[{"db":"$db","query":"SELECT mean(busy) FROM cpu_total WHERE hostname = '$hostname' AND time >= $from AND time <= $to GROUP BY time(1m)","alias":"$hostname","column":"mean"}],
                "annotations":"events"}"#,
        ).expect("builtin template");
        store.add_panel_json(
            "load",
            r#"{"title":"Load $hostname","type":"graph","unit":"",
                "targets":[{"db":"$db","query":"SELECT mean(load1) FROM load WHERE hostname = '$hostname' AND time >= $from AND time <= $to GROUP BY time(1m)","alias":"$hostname","column":"mean"}]}"#,
        ).expect("builtin template");
        store.add_panel_json(
            "flops_dp",
            r#"{"title":"DP FLOP rate $hostname","type":"graph","unit":"MFLOP/s",
                "targets":[{"db":"$db","query":"SELECT mean(dp_mflop_s) FROM hpm_flops_dp WHERE hostname = '$hostname' AND time >= $from AND time <= $to GROUP BY time(1m)","alias":"$hostname","column":"mean"}],
                "annotations":"events"}"#,
        ).expect("builtin template");
        store.add_panel_json(
            "membw",
            r#"{"title":"Memory bandwidth $hostname","type":"graph","unit":"MBytes/s",
                "targets":[{"db":"$db","query":"SELECT mean(memory_bandwidth_mbytes_s) FROM hpm_mem WHERE hostname = '$hostname' AND time >= $from AND time <= $to GROUP BY time(1m)","alias":"$hostname","column":"mean"}],
                "annotations":"events"}"#,
        ).expect("builtin template");
        store.add_panel_json(
            "memory",
            r#"{"title":"Memory used $hostname","type":"graph","unit":"fraction",
                "targets":[{"db":"$db","query":"SELECT mean(used_frac) FROM memory WHERE hostname = '$hostname' AND time >= $from AND time <= $to GROUP BY time(1m)","alias":"$hostname","column":"mean"}]}"#,
        ).expect("builtin template");
        store.add_panel_json(
            "network",
            r#"{"title":"Network $hostname","type":"graph","unit":"B/s",
                "targets":[{"db":"$db","query":"SELECT mean(rx_bytes_per_s) FROM network WHERE hostname = '$hostname' AND time >= $from AND time <= $to GROUP BY time(1m)","alias":"$hostname rx","column":"mean"}]}"#,
        ).expect("builtin template");

        store.add_row(RowTemplate {
            title: "CPU".into(),
            panel_templates: vec!["cpu_busy".into(), "load".into()],
            requires_measurement: "cpu_total".into(),
            per_host: true,
        });
        store.add_row(RowTemplate {
            title: "FLOPS".into(),
            panel_templates: vec!["flops_dp".into()],
            requires_measurement: "hpm_flops_dp".into(),
            per_host: true,
        });
        store.add_row(RowTemplate {
            title: "Memory".into(),
            panel_templates: vec!["membw".into(), "memory".into()],
            requires_measurement: "hpm_mem".into(),
            per_host: true,
        });
        store.add_row(RowTemplate {
            title: "Network".into(),
            panel_templates: vec!["network".into()],
            requires_measurement: "network".into(),
            per_host: true,
        });
        store
    }

    /// Registers a panel template from JSON text.
    pub fn add_panel_json(&mut self, name: &str, json_text: &str) -> Result<()> {
        let json = Json::parse(json_text)?;
        // Validate it parses as a panel once placeholders are neutralized.
        let probe = substitute(
            &json,
            &[("db", "x"), ("hostname", "h"), ("from", "0"), ("to", "1"), ("jobid", "0"),
              ("user", "u"), ("measurement", "m")],
        );
        let wrapper = Json::obj([
            ("title", Json::str("probe")),
            ("rows", Json::arr([Json::obj([("panels", Json::arr([probe]))])])),
        ]);
        Dashboard::from_json(&wrapper)
            .map_err(|e| Error::config(format!("panel template `{name}`: {e}")))?;
        self.panels.retain(|(n, _)| n != name);
        self.panels.push((name.to_string(), json));
        Ok(())
    }

    /// Registers a row template.
    pub fn add_row(&mut self, row: RowTemplate) {
        self.rows.push((row.title.clone(), row));
    }

    /// All row templates, in registration order.
    pub fn rows(&self) -> impl Iterator<Item = &RowTemplate> {
        self.rows.iter().map(|(_, r)| r)
    }

    /// Number of panel templates.
    pub fn panel_count(&self) -> usize {
        self.panels.len()
    }

    /// Instantiates one panel template.
    pub fn instantiate_panel(&self, name: &str, vars: &[(&str, &str)]) -> Result<Panel> {
        let (_, template) = self
            .panels
            .iter()
            .find(|(n, _)| n == name)
            .ok_or_else(|| Error::not_found(format!("panel template `{name}`")))?;
        let json = substitute(template, vars);
        let wrapper = Json::obj([
            ("title", Json::str("wrapper")),
            ("rows", Json::arr([Json::obj([("panels", Json::arr([json]))])])),
        ]);
        let d = Dashboard::from_json(&wrapper)?;
        Ok(d.rows.into_iter().next().and_then(|r| r.panels.into_iter().next()).expect("one panel"))
    }

    /// Instantiates a row template for the given hosts.
    pub fn instantiate_row(
        &self,
        row: &RowTemplate,
        hosts: &[String],
        base_vars: &[(&str, &str)],
    ) -> Result<Row> {
        let mut out = Row { title: row.title.clone(), panels: Vec::new() };
        let host_list: Vec<&str> = if row.per_host {
            hosts.iter().map(String::as_str).collect()
        } else {
            vec![hosts.first().map(String::as_str).unwrap_or("")]
        };
        for host in host_list {
            let mut vars = base_vars.to_vec();
            vars.push(("hostname", host));
            for panel_name in &row.panel_templates {
                out.panels.push(self.instantiate_panel(panel_name, &vars)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PanelKind;

    #[test]
    fn substitution_descends_the_tree() {
        let j = Json::parse(r#"{"a":"job $jobid","b":[{"c":"$db and $db"}],"n":5}"#).unwrap();
        let s = substitute(&j, &[("jobid", "42"), ("db", "lms")]);
        assert_eq!(s.get("a").unwrap().as_str(), Some("job 42"));
        assert_eq!(s.get("b").unwrap().idx(0).unwrap().get("c").unwrap().as_str(),
            Some("lms and lms"));
        assert_eq!(s.get("n").unwrap().as_i64(), Some(5));
    }

    #[test]
    fn builtin_store_instantiates_panels() {
        let store = TemplateStore::builtin();
        assert!(store.panel_count() >= 6);
        let p = store
            .instantiate_panel(
                "flops_dp",
                &[("db", "lms"), ("hostname", "h3"), ("from", "100"), ("to", "200")],
            )
            .unwrap();
        assert_eq!(p.title, "DP FLOP rate h3");
        assert_eq!(p.kind, PanelKind::Graph);
        assert!(p.targets[0].query.contains("hostname = 'h3'"));
        assert!(p.targets[0].query.contains("time >= 100 AND time <= 200"));
        assert_eq!(p.annotation_measurement.as_deref(), Some("events"));
    }

    #[test]
    fn row_instantiation_per_host() {
        let store = TemplateStore::builtin();
        let row_template = store
            .rows()
            .find(|r| r.requires_measurement == "cpu_total")
            .unwrap()
            .clone();
        let hosts = vec!["h1".to_string(), "h2".to_string()];
        let row = store
            .instantiate_row(
                &row_template,
                &hosts,
                &[("db", "lms"), ("from", "0"), ("to", "1")],
            )
            .unwrap();
        // 2 panel templates × 2 hosts.
        assert_eq!(row.panels.len(), 4);
        assert!(row.panels.iter().any(|p| p.title == "CPU busy h1"));
        assert!(row.panels.iter().any(|p| p.title == "Load h2"));
    }

    #[test]
    fn custom_template_registration_and_override() {
        let mut store = TemplateStore::new();
        store
            .add_panel_json(
                "custom",
                r#"{"title":"$measurement","type":"singlestat","targets":[{"db":"$db","query":"SELECT last(value) FROM $measurement","column":"last"}]}"#,
            )
            .unwrap();
        let p = store
            .instantiate_panel("custom", &[("db", "u"), ("measurement", "minimd_pressure")])
            .unwrap();
        assert_eq!(p.kind, PanelKind::SingleStat);
        assert_eq!(p.title, "minimd_pressure");
        // Re-registering replaces.
        store
            .add_panel_json("custom", r#"{"title":"v2","type":"text","content":"x"}"#)
            .unwrap();
        assert_eq!(store.panel_count(), 1);
        let p = store.instantiate_panel("custom", &[]).unwrap();
        assert_eq!(p.kind, PanelKind::Text);
    }

    #[test]
    fn invalid_template_rejected() {
        let mut store = TemplateStore::new();
        assert!(store.add_panel_json("bad", "not json at all").is_err());
        assert!(store
            .add_panel_json("bad", r#"{"title":"x","type":"hologram"}"#)
            .is_err());
        assert!(store.instantiate_panel("missing", &[]).is_err());
    }
}
