//! Affinity-domain expressions (likwid-pin style).
//!
//! LIKWID addresses hardware threads either by raw logical id lists
//! (`0-3,8,10`) or through *affinity domains*: `N` (node), `S<i>` (socket),
//! `M<i>` (NUMA domain), `C<i>` (last-level-cache domain — equal to the
//! socket in our model). A domain-qualified expression `S1:0-3` selects the
//! *n*-th threads **within** that domain, in domain-local order with primary
//! SMT threads first.
//!
//! The transparent affinity monitor in `lms-usermetric` and the workload
//! pinning in `lms-apps` both consume [`CpuSet`]s.

use crate::model::Topology;
use lms_util::{Error, Result};

/// An ordered set of logical CPU ids (duplicates removed, order preserved).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CpuSet {
    ids: Vec<u32>,
}

impl CpuSet {
    /// An empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a set from raw ids (deduplicating, preserving first-seen order).
    pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Self {
        let mut out = CpuSet::empty();
        for id in ids {
            out.insert(id);
        }
        out
    }

    fn insert(&mut self, id: u32) {
        if !self.ids.contains(&id) {
            self.ids.push(id);
        }
    }

    /// Parses an expression against a topology.
    ///
    /// Grammar:
    /// - plain list: `0-3,8,10-12` (logical ids, validated against the node),
    /// - domain list: `<domain>:<list>` where domain ∈ `N`, `S<i>`, `M<i>`,
    ///   `C<i>` and the list indexes into the domain's thread order,
    /// - `<domain>:scatter` — one thread per core across the domain (primary
    ///   threads only), the likwid "scatter" policy.
    pub fn parse(expr: &str, topo: &Topology) -> Result<Self> {
        let expr = expr.trim();
        if expr.is_empty() {
            return Err(Error::invalid("empty cpuset expression"));
        }
        if let Some((domain, list)) = expr.split_once(':') {
            let pool = domain_threads(domain.trim(), topo)?;
            if list.trim() == "scatter" {
                // Primary threads of each core in the domain, in order.
                let primaries: Vec<u32> =
                    pool.iter().copied().filter(|&id| topo.hw_thread(id).unwrap().smt == 0).collect();
                return Ok(CpuSet { ids: primaries });
            }
            let indices = parse_list(list)?;
            let mut out = CpuSet::empty();
            for idx in indices {
                let id = *pool.get(idx as usize).ok_or_else(|| {
                    Error::invalid(format!(
                        "index {idx} out of range for domain {domain} ({} threads)",
                        pool.len()
                    ))
                })?;
                out.insert(id);
            }
            Ok(out)
        } else {
            let ids = parse_list(expr)?;
            for &id in &ids {
                if id >= topo.num_hw_threads() {
                    return Err(Error::invalid(format!(
                        "cpu {id} out of range (node has {})",
                        topo.num_hw_threads()
                    )));
                }
            }
            Ok(CpuSet::from_ids(ids))
        }
    }

    /// The ids, in selection order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Iterates over the ids.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ids.iter().copied()
    }

    /// Number of selected threads.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no thread is selected.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        self.ids.contains(&id)
    }

    /// Renders back to a compact range list (sorted): `0-3,8`.
    pub fn to_compact_string(&self) -> String {
        let mut sorted = self.ids.clone();
        sorted.sort_unstable();
        let mut out = String::new();
        let mut i = 0;
        while i < sorted.len() {
            let start = sorted[i];
            let mut end = start;
            while i + 1 < sorted.len() && sorted[i + 1] == end + 1 {
                i += 1;
                end = sorted[i];
            }
            if !out.is_empty() {
                out.push(',');
            }
            if start == end {
                out.push_str(&start.to_string());
            } else {
                out.push_str(&format!("{start}-{end}"));
            }
            i += 1;
        }
        out
    }
}

/// Parses `0-3,8,10-12` into a flat id/index list (order preserved).
fn parse_list(list: &str) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    for part in list.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((a, b)) = part.split_once('-') {
            let a: u32 = a
                .trim()
                .parse()
                .map_err(|_| Error::invalid(format!("bad range start `{part}`")))?;
            let b: u32 =
                b.trim().parse().map_err(|_| Error::invalid(format!("bad range end `{part}`")))?;
            if b < a {
                return Err(Error::invalid(format!("descending range `{part}`")));
            }
            out.extend(a..=b);
        } else {
            out.push(part.parse().map_err(|_| Error::invalid(format!("bad cpu id `{part}`")))?);
        }
    }
    if out.is_empty() {
        return Err(Error::invalid("empty cpu list"));
    }
    Ok(out)
}

/// Threads of an affinity domain, primary SMT threads first (likwid order).
fn domain_threads(domain: &str, topo: &Topology) -> Result<Vec<u32>> {
    let (kind, index) = domain.split_at(1);
    let parse_idx = |max: u32| -> Result<u32> {
        let i: u32 = index
            .parse()
            .map_err(|_| Error::invalid(format!("bad domain index in `{domain}`")))?;
        if i >= max {
            return Err(Error::invalid(format!("domain `{domain}` out of range (max {max})")));
        }
        Ok(i)
    };
    let mut threads: Vec<u32> = match kind {
        "N" if index.is_empty() => topo.hw_threads().map(|t| t.id).collect(),
        "S" => {
            let s = parse_idx(topo.num_sockets())?;
            topo.threads_of_socket(s)
        }
        "M" => {
            let m = parse_idx(topo.num_numa_domains())?;
            topo.threads_of_numa(m)
        }
        // C = last-level cache domain == socket in this model.
        "C" => {
            let c = parse_idx(topo.num_sockets())?;
            topo.threads_of_socket(c)
        }
        _ => return Err(Error::invalid(format!("unknown affinity domain `{domain}`"))),
    };
    // Primary threads (smt 0) first, then siblings — likwid's domain order.
    threads.sort_by_key(|&id| {
        let t = topo.hw_thread(id).unwrap();
        (t.smt, t.socket, t.core)
    });
    Ok(threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::preset_dual_socket_10c() // 2s × 10c × 2t = 40 threads
    }

    #[test]
    fn plain_lists() {
        let t = topo();
        let s = CpuSet::parse("0-3,8,10-12", &t).unwrap();
        assert_eq!(s.ids(), &[0, 1, 2, 3, 8, 10, 11, 12]);
        assert!(s.contains(8));
        assert!(!s.contains(9));
    }

    #[test]
    fn plain_list_rejects_out_of_range() {
        assert!(CpuSet::parse("0,40", &topo()).is_err());
        assert!(CpuSet::parse("3-1", &topo()).is_err());
        assert!(CpuSet::parse("x", &topo()).is_err());
        assert!(CpuSet::parse("", &topo()).is_err());
    }

    #[test]
    fn socket_domain_selects_primary_threads_first() {
        let t = topo();
        // S1 threads in likwid order: primaries 10..19, then SMT 30..39.
        let s = CpuSet::parse("S1:0-3", &t).unwrap();
        assert_eq!(s.ids(), &[10, 11, 12, 13]);
        let s = CpuSet::parse("S1:10-11", &t).unwrap();
        assert_eq!(s.ids(), &[30, 31]); // SMT siblings come after 10 primaries
    }

    #[test]
    fn node_domain() {
        let t = topo();
        let s = CpuSet::parse("N:0-19", &t).unwrap();
        assert_eq!(s.len(), 20);
        // Node order: all primaries across sockets first.
        assert!(s.iter().all(|id| t.hw_thread(id).unwrap().smt == 0));
    }

    #[test]
    fn numa_domain() {
        let t = topo().with_numa_per_socket(2).unwrap();
        let s = CpuSet::parse("M1:0-4", &t).unwrap();
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|id| t.hw_thread(id).unwrap().numa == 1));
    }

    #[test]
    fn cache_domain_equals_socket() {
        let t = topo();
        assert_eq!(CpuSet::parse("C0:0-9", &t).unwrap(), CpuSet::parse("S0:0-9", &t).unwrap());
    }

    #[test]
    fn scatter_policy() {
        let t = topo();
        let s = CpuSet::parse("S0:scatter", &t).unwrap();
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|id| t.hw_thread(id).unwrap().smt == 0));
        let n = CpuSet::parse("N:scatter", &t).unwrap();
        assert_eq!(n.len(), 20);
    }

    #[test]
    fn domain_errors() {
        let t = topo();
        assert!(CpuSet::parse("S2:0", &t).is_err()); // only 2 sockets (0,1)
        assert!(CpuSet::parse("S0:0-25", &t).is_err()); // only 20 threads in socket
        assert!(CpuSet::parse("X0:0", &t).is_err());
        assert!(CpuSet::parse("Sx:0", &t).is_err());
    }

    #[test]
    fn dedup_preserves_order() {
        let s = CpuSet::parse("3,1,3,1,2", &topo()).unwrap();
        assert_eq!(s.ids(), &[3, 1, 2]);
    }

    #[test]
    fn compact_rendering() {
        let s = CpuSet::from_ids([8, 0, 1, 2, 3, 12, 11, 10]);
        assert_eq!(s.to_compact_string(), "0-3,8,10-12");
        assert_eq!(CpuSet::from_ids([5]).to_compact_string(), "5");
        assert_eq!(CpuSet::empty().to_compact_string(), "");
    }

    #[test]
    fn compact_round_trip() {
        let t = topo();
        for expr in ["0-3,8,10-12", "0", "0-39", "7,9,11"] {
            let s = CpuSet::parse(expr, &t).unwrap();
            assert_eq!(s.to_compact_string(), expr);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// parse ∘ to_compact_string is the identity on the *set* for
            /// any random id selection (order is canonicalized).
            #[test]
            fn compact_string_round_trips(ids in proptest::collection::btree_set(0u32..40, 1..20)) {
                let t = topo();
                let set = CpuSet::from_ids(ids.iter().copied());
                let compact = set.to_compact_string();
                let reparsed = CpuSet::parse(&compact, &t).unwrap();
                let mut a: Vec<u32> = set.iter().collect();
                let mut b: Vec<u32> = reparsed.iter().collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "compact form was `{}`", compact);
            }

            /// Domain expressions always produce threads inside the domain
            /// and never duplicates.
            #[test]
            fn domain_selection_is_sound(socket in 0u32..2, take in 1usize..20) {
                let t = topo();
                let expr = format!("S{socket}:0-{}", take - 1);
                let set = CpuSet::parse(&expr, &t).unwrap();
                prop_assert_eq!(set.len(), take);
                let unique: std::collections::BTreeSet<u32> = set.iter().collect();
                prop_assert_eq!(unique.len(), take);
                prop_assert!(set.iter().all(|id| t.hw_thread(id).unwrap().socket == socket));
            }
        }
    }
}
