//! The node topology model.
//!
//! Mirrors what `likwid-topology` reports about a node: the socket/core/SMT
//! structure, the cache hierarchy with sharing, and NUMA domains. Hardware
//! thread numbering follows the common Linux/likwid convention: physical
//! cores of all sockets first (socket-major), then the SMT siblings in a
//! second block, so thread `i` and `i + num_cores` share a core.

use lms_util::{Error, Result};

/// Cache levels distinguished by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// Per-core L1 data cache.
    L1d,
    /// Per-core unified L2.
    L2,
    /// Last-level cache shared per socket.
    L3,
}

/// One cache in the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct Cache {
    /// Level and flavour.
    pub kind: CacheKind,
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Number of *cores* sharing one instance of this cache.
    pub shared_by_cores: u32,
}

/// One hardware thread (logical CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwThread {
    /// Logical CPU id (the OS numbering).
    pub id: u32,
    /// Socket index.
    pub socket: u32,
    /// Core index *within the socket*.
    pub core: u32,
    /// SMT sibling index within the core (0 = primary thread).
    pub smt: u32,
    /// NUMA domain index.
    pub numa: u32,
}

/// A node's hardware topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    name: String,
    sockets: u32,
    cores_per_socket: u32,
    threads_per_core: u32,
    numa_per_socket: u32,
    caches: Vec<Cache>,
    /// Nominal clock in Hz (the simulator's cycle budget per second).
    nominal_hz: f64,
    /// Peak DP FLOPs per cycle per core (vector width × FMA factor).
    flops_per_cycle_dp: f64,
    /// Peak memory bandwidth per socket in bytes/s.
    mem_bw_per_socket: f64,
    /// TDP per socket in watts (for the RAPL energy model).
    tdp_watts: f64,
}

impl Topology {
    /// Builds a custom topology.
    pub fn new(
        name: impl Into<String>,
        sockets: u32,
        cores_per_socket: u32,
        threads_per_core: u32,
    ) -> Result<Self> {
        if sockets == 0 || cores_per_socket == 0 || threads_per_core == 0 {
            return Err(Error::invalid("topology dimensions must be non-zero"));
        }
        Ok(Topology {
            name: name.into(),
            sockets,
            cores_per_socket,
            threads_per_core,
            numa_per_socket: 1,
            caches: vec![
                Cache { kind: CacheKind::L1d, size_bytes: 32 << 10, line_bytes: 64, shared_by_cores: 1 },
                Cache { kind: CacheKind::L2, size_bytes: 256 << 10, line_bytes: 64, shared_by_cores: 1 },
                Cache {
                    kind: CacheKind::L3,
                    size_bytes: (cores_per_socket as u64) * (2560 << 10),
                    line_bytes: 64,
                    shared_by_cores: cores_per_socket,
                },
            ],
            nominal_hz: 2.5e9,
            flops_per_cycle_dp: 8.0, // AVX + FMA: 4 lanes × 2
            mem_bw_per_socket: 50e9,
            tdp_watts: 105.0,
        })
    }

    /// The "Ivy Bridge EP"-like preset used throughout the examples and
    /// benches: 2 sockets × 10 cores × 2 SMT threads — a typical commodity
    /// cluster node of the paper's era.
    pub fn preset_dual_socket_10c() -> Self {
        let mut t = Topology::new("ivybridge-ep-2s10c2t", 2, 10, 2).unwrap();
        t.nominal_hz = 2.2e9;
        t.flops_per_cycle_dp = 8.0;
        t.mem_bw_per_socket = 42e9;
        t.tdp_watts = 115.0;
        t
    }

    /// A small single-socket preset for quick tests (1 × 4 × 2).
    pub fn preset_desktop_4c() -> Self {
        let mut t = Topology::new("desktop-1s4c2t", 1, 4, 2).unwrap();
        t.nominal_hz = 3.5e9;
        t.mem_bw_per_socket = 25e9;
        t.tdp_watts = 65.0;
        t
    }

    /// Sets the NUMA domains per socket (cluster-on-die style).
    pub fn with_numa_per_socket(mut self, n: u32) -> Result<Self> {
        if n == 0 || !self.cores_per_socket.is_multiple_of(n) {
            return Err(Error::invalid(format!(
                "{} cores per socket cannot split into {n} NUMA domains",
                self.cores_per_socket
            )));
        }
        self.numa_per_socket = n;
        Ok(self)
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Socket count.
    pub fn num_sockets(&self) -> u32 {
        self.sockets
    }

    /// Physical core count (all sockets).
    pub fn num_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> u32 {
        self.cores_per_socket
    }

    /// SMT threads per core.
    pub fn threads_per_core(&self) -> u32 {
        self.threads_per_core
    }

    /// Hardware thread (logical CPU) count.
    pub fn num_hw_threads(&self) -> u32 {
        self.num_cores() * self.threads_per_core
    }

    /// NUMA domain count (all sockets).
    pub fn num_numa_domains(&self) -> u32 {
        self.sockets * self.numa_per_socket
    }

    /// The cache hierarchy.
    pub fn caches(&self) -> &[Cache] {
        &self.caches
    }

    /// Nominal core clock in Hz.
    pub fn nominal_hz(&self) -> f64 {
        self.nominal_hz
    }

    /// Peak DP FLOPs per cycle per core.
    pub fn flops_per_cycle_dp(&self) -> f64 {
        self.flops_per_cycle_dp
    }

    /// Peak DP FLOP/s for the whole node.
    pub fn peak_flops_dp(&self) -> f64 {
        self.nominal_hz * self.flops_per_cycle_dp * self.num_cores() as f64
    }

    /// Peak memory bandwidth per socket (bytes/s).
    pub fn mem_bw_per_socket(&self) -> f64 {
        self.mem_bw_per_socket
    }

    /// Peak memory bandwidth for the node (bytes/s).
    pub fn peak_mem_bw(&self) -> f64 {
        self.mem_bw_per_socket * self.sockets as f64
    }

    /// TDP per socket (W).
    pub fn tdp_watts(&self) -> f64 {
        self.tdp_watts
    }

    /// Resolves a logical CPU id to its place in the hierarchy.
    pub fn hw_thread(&self, id: u32) -> Result<HwThread> {
        if id >= self.num_hw_threads() {
            return Err(Error::invalid(format!(
                "hw thread {id} out of range (node has {})",
                self.num_hw_threads()
            )));
        }
        let cores = self.num_cores();
        let smt = id / cores;
        let core_global = id % cores;
        let socket = core_global / self.cores_per_socket;
        let core = core_global % self.cores_per_socket;
        let cores_per_numa = self.cores_per_socket / self.numa_per_socket;
        let numa = socket * self.numa_per_socket + core / cores_per_numa;
        Ok(HwThread { id, socket, core, smt, numa })
    }

    /// All hardware threads, ordered by logical id.
    pub fn hw_threads(&self) -> impl Iterator<Item = HwThread> + '_ {
        (0..self.num_hw_threads()).map(|id| self.hw_thread(id).unwrap())
    }

    /// Logical ids of all threads on `socket`.
    pub fn threads_of_socket(&self, socket: u32) -> Vec<u32> {
        self.hw_threads().filter(|t| t.socket == socket).map(|t| t.id).collect()
    }

    /// Logical ids of all threads in NUMA domain `numa`.
    pub fn threads_of_numa(&self, numa: u32) -> Vec<u32> {
        self.hw_threads().filter(|t| t.numa == numa).map(|t| t.id).collect()
    }

    /// Logical ids of the primary (smt=0) thread of every core.
    pub fn primary_threads(&self) -> Vec<u32> {
        (0..self.num_cores()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_dimensions() {
        let t = Topology::preset_dual_socket_10c();
        assert_eq!(t.num_sockets(), 2);
        assert_eq!(t.num_cores(), 20);
        assert_eq!(t.num_hw_threads(), 40);
        assert_eq!(t.num_numa_domains(), 2);
        assert!(t.peak_flops_dp() > 3e11);
    }

    #[test]
    fn rejects_degenerate_dimensions() {
        assert!(Topology::new("x", 0, 4, 1).is_err());
        assert!(Topology::new("x", 1, 0, 1).is_err());
        assert!(Topology::new("x", 1, 4, 0).is_err());
    }

    #[test]
    fn thread_numbering_is_socket_major_with_smt_block() {
        let t = Topology::preset_dual_socket_10c();
        // Thread 0: socket 0, core 0, smt 0.
        assert_eq!(t.hw_thread(0).unwrap(), HwThread { id: 0, socket: 0, core: 0, smt: 0, numa: 0 });
        // Thread 10: socket 1, core 0.
        let th = t.hw_thread(10).unwrap();
        assert_eq!((th.socket, th.core, th.smt), (1, 0, 0));
        // Thread 20 is the SMT sibling of thread 0.
        let th = t.hw_thread(20).unwrap();
        assert_eq!((th.socket, th.core, th.smt), (0, 0, 1));
        assert!(t.hw_thread(40).is_err());
    }

    #[test]
    fn socket_and_numa_listings() {
        let t = Topology::preset_dual_socket_10c();
        let s0 = t.threads_of_socket(0);
        assert_eq!(s0.len(), 20);
        assert!(s0.contains(&0) && s0.contains(&20) && !s0.contains(&10));
        assert_eq!(t.primary_threads().len(), 20);
    }

    #[test]
    fn numa_split() {
        let t = Topology::preset_dual_socket_10c().with_numa_per_socket(2).unwrap();
        assert_eq!(t.num_numa_domains(), 4);
        // Cores 0-4 of socket 0 are NUMA 0; cores 5-9 are NUMA 1.
        assert_eq!(t.hw_thread(4).unwrap().numa, 0);
        assert_eq!(t.hw_thread(5).unwrap().numa, 1);
        assert_eq!(t.hw_thread(10).unwrap().numa, 2);
        assert_eq!(t.threads_of_numa(1).len(), 10);
    }

    #[test]
    fn numa_split_must_divide_cores() {
        assert!(Topology::preset_dual_socket_10c().with_numa_per_socket(3).is_err());
        assert!(Topology::preset_dual_socket_10c().with_numa_per_socket(0).is_err());
    }

    #[test]
    fn cache_hierarchy_present() {
        let t = Topology::preset_dual_socket_10c();
        let kinds: Vec<_> = t.caches().iter().map(|c| c.kind).collect();
        assert_eq!(kinds, vec![CacheKind::L1d, CacheKind::L2, CacheKind::L3]);
        let l3 = &t.caches()[2];
        assert_eq!(l3.shared_by_cores, 10);
    }

    #[test]
    fn hw_threads_iterator_is_complete_and_consistent() {
        let t = Topology::preset_desktop_4c();
        let all: Vec<_> = t.hw_threads().collect();
        assert_eq!(all.len(), 8);
        for (i, th) in all.iter().enumerate() {
            assert_eq!(th.id, i as u32);
        }
        // SMT sibling pairing: i and i+4 share (socket, core).
        for i in 0..4 {
            let a = t.hw_thread(i).unwrap();
            let b = t.hw_thread(i + 4).unwrap();
            assert_eq!((a.socket, a.core), (b.socket, b.core));
            assert_ne!(a.smt, b.smt);
        }
    }
}
