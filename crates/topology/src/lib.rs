//! # lms-topology
//!
//! Node hardware topology for the LMS reproduction: sockets, cores, SMT
//! threads, the cache hierarchy and NUMA domains, plus the affinity-domain
//! expression language of the LIKWID tools (`S0:0-3`, `N:0-7`, `M1:0,2`,
//! `C0:0-9`).
//!
//! LIKWID's core abstraction for portable measurement is "measure these
//! events on these hardware threads, mapped through this topology". The HPM
//! simulator (`lms-hpm`) is parameterized by a [`Topology`]; per-socket
//! (uncore) counters like memory bandwidth or RAPL energy attach to the
//! socket domains defined here.
//!
//! ```
//! use lms_topology::{Topology, CpuSet};
//!
//! let topo = Topology::preset_dual_socket_10c();
//! assert_eq!(topo.num_hw_threads(), 40);
//! let set = CpuSet::parse("S1:0-3", &topo).unwrap(); // first 4 threads of socket 1
//! assert_eq!(set.len(), 4);
//! assert!(set.iter().all(|t| topo.hw_thread(t).unwrap().socket == 1));
//! ```

pub mod cpuset;
pub mod model;

pub use cpuset::CpuSet;
pub use model::{Cache, CacheKind, HwThread, Topology};
