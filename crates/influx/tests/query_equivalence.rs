//! Equivalence suite for the query-engine v2 fast paths.
//!
//! The seed executor decoded every sealed block on every query. V2 adds
//! two fast paths — block-summary pruning and parallel column scans —
//! that must be *invisible*: over any layout of head, sealed and
//! straddling/overlapping blocks, every tuning combination must produce
//! exactly the rows the full-decode serial path produces. And V1 segment
//! files (no summary footer) must keep opening and answering the same
//! queries after an upgrade.

use lms_influx::{Influx, QueryResult, QueryTuning, StorageConfig};
use lms_util::{Clock, Timestamp};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("lms-influx-equiv-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &std::path::Path) -> Influx {
    Influx::open(Clock::simulated(Timestamp::from_secs(1000)), 4, StorageConfig::new(dir))
        .unwrap()
}

/// Loads `batches` into a fresh database: every batch but the last is
/// flushed into sealed blocks (its own segment generation, so batches
/// with overlapping time ranges produce overlapping blocks); the last
/// stays in the mutable head.
fn load(ix: &Influx, batches: &[Vec<(u8, i64, i32)>]) {
    for (i, batch) in batches.iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        let body: String = batch
            .iter()
            .map(|&(s, ts, v)| format!("m,hostname=g{s} v={v} {ts}\n"))
            .collect();
        ix.write_lines("lms", &body, Default::default()).unwrap();
        if i + 1 < batches.len() {
            ix.flush_storage().unwrap();
        }
    }
}

/// Runs `q` under all four tuning combinations and asserts the three
/// fast-path variants match the full-decode serial baseline exactly.
fn assert_equivalent(ix: &Influx, q: &str) -> QueryResult {
    let db = ix.database("lms").expect("lms exists");
    let baseline = {
        db.set_query_tuning(QueryTuning { use_summaries: false, parallel_scan: false });
        ix.query("lms", q).unwrap()
    };
    for (summaries, parallel) in [(true, false), (false, true), (true, true)] {
        db.set_query_tuning(QueryTuning { use_summaries: summaries, parallel_scan: parallel });
        let got = ix.query("lms", q).unwrap();
        assert_eq!(
            got, baseline,
            "query {q:?} diverged under summaries={summaries} parallel={parallel}"
        );
    }
    db.set_query_tuning(QueryTuning::default());
    baseline
}

/// A batch layout: 1–3 sealed batches plus a head batch, each 0–40
/// points over 3 series in a ~2 µs window. Integer-valued floats make
/// float equality exact, so results must be byte-identical; small
/// timestamp ranges force duplicate timestamps (LWW across generations)
/// and overlapping sealed blocks.
fn layouts() -> impl Strategy<Value = Vec<Vec<(u8, i64, i32)>>> {
    let point = (0u8..3, 0i64..2000, -100i32..100);
    proptest::collection::vec(proptest::collection::vec(point, 0..40), 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn fast_paths_match_full_decode(
        batches in layouts(),
        bounds in (0i64..2000, 1i64..500),
        window in 1i64..400,
    ) {
        let dir = tmp_dir("prop");
        let ix = open(&dir);
        load(&ix, &batches);
        let (lo, span) = bounds;
        let hi = lo + span;
        let queries = [
            "SELECT v FROM m".to_string(),
            "SELECT mean(v), sum(v), min(v), max(v), count(v) FROM m".to_string(),
            format!("SELECT mean(v), count(v) FROM m WHERE time >= {lo} AND time < {hi}"),
            format!("SELECT sum(v), max(v) FROM m GROUP BY time({window}ns)"),
            format!(
                "SELECT mean(v) FROM m WHERE time >= {lo} AND time < {hi} \
                 GROUP BY time({window}ns), \"hostname\""
            ),
            format!("SELECT first(v), last(v), stddev(v) FROM m GROUP BY time({window}ns)"),
        ];
        for q in &queries {
            assert_equivalent(&ix, q);
        }
        drop(ix);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn parallel_scan_crosses_the_fanout_threshold_identically() {
    // The proptest layouts stay far below the 64k-sealed-point fan-out
    // threshold, so they pin the *flag*, not the threaded path. This
    // layout crosses it: 3 series × 40k sealed points, plus a head tail
    // and an overlapping overwrite batch.
    let dir = tmp_dir("parallel");
    let ix = open(&dir);
    let mut batch = String::with_capacity(1 << 22);
    for i in 0..120_000i64 {
        batch.push_str(&format!("m,hostname=g{} v={} {}\n", i % 3, (i * 7) % 1000, i * 1000));
    }
    ix.write_lines("lms", &batch, Default::default()).unwrap();
    ix.flush_storage().unwrap();
    // Overwrites over a slice of the sealed range, sealed as a second
    // overlapping generation, plus a live head tail.
    let mut overwrite = String::new();
    for i in 40_000..44_000i64 {
        overwrite.push_str(&format!("m,hostname=g{} v=-5 {}\n", i % 3, i * 1000));
    }
    ix.write_lines("lms", &overwrite, Default::default()).unwrap();
    ix.flush_storage().unwrap();
    ix.write_lines("lms", "m,hostname=g0 v=7 119999500\nm,hostname=g1 v=9 120000500", Default::default())
        .unwrap();
    for q in [
        "SELECT mean(v), sum(v), min(v), max(v), count(v) FROM m",
        "SELECT sum(v), count(v) FROM m GROUP BY time(3600000000000ns)",
        "SELECT mean(v) FROM m WHERE time >= 30000000000 AND time < 90000000000 GROUP BY \"hostname\"",
    ] {
        assert_equivalent(&ix, q);
    }
    drop(ix);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_segments_without_summaries_answer_identically() {
    // Upgrade path: a data directory written before the summary footer
    // existed (V1 segments) must open and answer every query the same —
    // summaries are recomputed from the decoded blocks at load.
    let dir = tmp_dir("v1-compat");
    let queries = [
        "SELECT v FROM m",
        "SELECT mean(v), sum(v), min(v), max(v), count(v) FROM m",
        "SELECT sum(v) FROM m GROUP BY time(200ns)",
        "SELECT mean(v) FROM m WHERE time >= 100 AND time < 700 GROUP BY \"hostname\"",
    ];
    let before: Vec<QueryResult> = {
        let ix = open(&dir);
        let body: String = (0..300i64)
            .map(|i| format!("m,hostname=g{} v={} {}\n", i % 3, i % 17, i * 3))
            .collect();
        ix.write_lines("lms", &body, Default::default()).unwrap();
        ix.flush_storage().unwrap();
        queries.iter().map(|q| assert_equivalent(&ix, q)).collect()
    };
    // Rewrite every segment file in the V1 format (no summary footer).
    let mut rewritten = 0;
    for entry in std::fs::read_dir(dir.join("lms")).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.starts_with("seg-") && name.ends_with(".tsm") {
            let entries = lms_influx::tsm::segment::read_segment(&path).unwrap();
            lms_influx::tsm::segment::write_segment_v1(&path, &entries).unwrap();
            rewritten += 1;
        }
    }
    assert!(rewritten > 0, "expected at least one segment file to downgrade");
    let ix = open(&dir);
    for (q, expect) in queries.iter().zip(before) {
        let got = assert_equivalent(&ix, q);
        assert_eq!(got, expect, "query {q} diverged after V1 downgrade");
    }
    drop(ix);
    let _ = std::fs::remove_dir_all(&dir);
}
