//! Equivalence suite for the downsampling tiers.
//!
//! The rollup pipeline must be *invisible* to query semantics: for any
//! layout of head, sealed and rollup blocks, a tier-stitched aggregate
//! (coarse windows where the rollup covers the range, raw decode at the
//! edges) must equal the full-raw-decode answer exactly. Decomposable
//! aggregates (count/sum/min/max/first/last, mean and stddev derived
//! from them) make that bit-exact when the inputs are integer-valued
//! floats — no epsilon comparisons here.

use lms_influx::{Influx, RollupPolicy, StorageConfig};
use lms_util::{Clock, Timestamp};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

const SEC: i64 = 1_000_000_000;

fn tmp_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("lms-rollup-equiv-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &std::path::Path) -> Influx {
    Influx::open(Clock::simulated(Timestamp::from_secs(20_000)), 4, StorageConfig::new(dir))
        .unwrap()
}

/// Loads `batches`: every batch but the last is sealed (and rolled up —
/// `flush_storage` runs a rollup pass); the last stays in the mutable
/// head, past whatever the watermark reached, so queries must stitch
/// tier blocks to a raw tail.
fn load(ix: &Influx, batches: &[Vec<(u8, i64, i32)>]) {
    for (i, batch) in batches.iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        let body: String = batch
            .iter()
            .map(|&(s, sec, v)| format!("m,hostname=g{s} v={v} {}\n", sec * SEC))
            .collect();
        ix.write_lines("lms", &body, Default::default()).unwrap();
        if i + 1 < batches.len() {
            ix.flush_storage().unwrap();
        }
    }
}

/// Asserts the tier-stitched answer equals the raw-only answer exactly.
fn assert_tier_equivalent(ix: &Influx, q: &str) {
    ix.set_query_tiers(Some(vec![]));
    let raw = ix.query("lms", q).unwrap();
    ix.set_query_tiers(None);
    let tiered = ix.query("lms", q).unwrap();
    assert_eq!(tiered, raw, "query {q:?} diverged tier-stitched vs full raw decode");
}

/// 2–4 batches of 0–40 points over 3 series, timestamps on whole seconds
/// across ~3 hours: enough span for both 1m and 1h windows to fill, and
/// small enough ranges that duplicate timestamps (LWW) and overlapping
/// sealed generations occur.
fn layouts() -> impl Strategy<Value = Vec<Vec<(u8, i64, i32)>>> {
    let point = (0u8..3, 0i64..10_800, -100i32..100);
    proptest::collection::vec(proptest::collection::vec(point, 0..40), 2..5)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn tier_stitched_aggregates_match_raw_decode(
        batches in layouts(),
        bounds in (0i64..10_800, 1i64..7200),
        extra in proptest::collection::vec((0u8..3, 0i64..10_800, -100i32..100), 0..20),
    ) {
        let dir = tmp_dir("prop");
        let ix = open(&dir);
        load(&ix, &batches);
        ix.enable_rollups(RollupPolicy::default()).unwrap();
        // Raw points arriving after the watermark: the tier path must cap
        // at the watermark and serve this tail from the raw head.
        if !extra.is_empty() {
            let body: String = extra
                .iter()
                .map(|&(s, sec, v)| format!("m,hostname=g{s} v={v} {}\n", sec * SEC))
                .collect();
            ix.write_lines("lms", &body, Default::default()).unwrap();
        }
        let (lo, span) = bounds;
        let (lo, hi) = (lo * SEC, (lo + span) * SEC);
        let queries = [
            // Unwindowed, whole range: the coarsest tier serves the middle.
            "SELECT mean(v), sum(v), min(v), max(v), count(v) FROM m".to_string(),
            "SELECT first(v), last(v), stddev(v) FROM m".to_string(),
            // Bounded: tier windows align up/down inside the bounds, raw
            // decode covers the cut-off edges.
            format!("SELECT mean(v), count(v) FROM m WHERE time >= {lo} AND time < {hi}"),
            // Steps divisible by a tier window → served from that tier.
            "SELECT sum(v), max(v) FROM m GROUP BY time(60s)".to_string(),
            "SELECT mean(v), count(v) FROM m GROUP BY time(1h), \"hostname\"".to_string(),
            format!(
                "SELECT count(v) FROM m WHERE time >= {lo} AND time < {hi} \
                 GROUP BY time(10m), \"hostname\""
            ),
            // Step not divisible by any tier window → plain raw path.
            "SELECT mean(v) FROM m GROUP BY time(90s)".to_string(),
            format!("SELECT first(v), last(v) FROM m WHERE time >= {lo} AND time < {hi} GROUP BY time(5m)"),
        ];
        for q in &queries {
            assert_tier_equivalent(&ix, q);
        }
        drop(ix);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn tier_path_serves_from_tier_blocks_not_raw() {
    // Equivalence alone could pass with the tier path never engaging.
    // Poison one rollup row and confirm the tiered answer *diverges*
    // from raw — the stitched query really read the tier block.
    let dir = tmp_dir("poison");
    let ix = open(&dir);
    let body: String = (0..7200i64)
        .map(|i| format!("m,hostname=g{} v=1 {}\n", i % 3, i * SEC))
        .collect();
    ix.write_lines("lms", &body, Default::default()).unwrap();
    ix.flush_storage().unwrap();
    ix.enable_rollups(RollupPolicy::default()).unwrap();

    // Overwrite the sum stat of one mid-range 1m window (LWW on the
    // tier database, like any other write).
    ix.write_lines(
        "lms__rollup_1m",
        &format!("m,hostname=g0 v__sum=999999 {}\n", 1800 * SEC),
        Default::default(),
    )
    .unwrap();

    ix.set_query_tiers(Some(vec![]));
    let raw = ix.query("lms", "SELECT sum(v) FROM m").unwrap();
    ix.set_query_tiers(Some(vec![lms_influx::Tier::Minute]));
    let tiered = ix.query("lms", "SELECT sum(v) FROM m").unwrap();
    assert_ne!(tiered, raw, "tiered query never consulted the poisoned 1m block");
    drop(ix);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rollup_blocks_survive_crash_recovery() {
    // Rollup rows ride the same WAL as raw writes: a database that goes
    // down right after a rollup pass (no clean flush of the tier heads)
    // replays them on open and answers tiered queries identically.
    let dir = tmp_dir("recovery");
    let queries = [
        "SELECT mean(v), sum(v), count(v) FROM m",
        "SELECT min(v), max(v), first(v), last(v) FROM m GROUP BY time(60s), \"hostname\"",
        "SELECT stddev(v) FROM m GROUP BY time(1h)",
    ];
    let (before, tier_rows) = {
        let ix = open(&dir);
        let body: String = (0..7200i64)
            .map(|i| format!("m,hostname=g{} v={} {}\n", i % 3, (i * 7) % 100, i * SEC))
            .collect();
        ix.write_lines("lms", &body, Default::default()).unwrap();
        ix.flush_storage().unwrap();
        ix.enable_rollups(RollupPolicy::default()).unwrap();
        let rows = ix.point_count("lms__rollup_1m") + ix.point_count("lms__rollup_1h");
        assert!(rows > 0, "rollup pass produced no tier rows");
        let before: Vec<_> = queries.iter().map(|q| ix.query("lms", q).unwrap()).collect();
        (before, rows)
        // Dropped without a final flush: tier heads are only in the WAL.
    };
    let ix = open(&dir);
    ix.enable_rollups(RollupPolicy::default()).unwrap();
    assert_eq!(
        ix.point_count("lms__rollup_1m") + ix.point_count("lms__rollup_1h"),
        tier_rows,
        "tier rows lost or duplicated across restart"
    );
    for (q, expect) in queries.iter().zip(before) {
        assert_eq!(ix.query("lms", q).unwrap(), expect, "query {q} diverged after restart");
        assert_tier_equivalent(&ix, q);
    }
    drop(ix);
    let _ = std::fs::remove_dir_all(&dir);
}
