//! Series storage: per-field columns with a mutable head and sealed blocks.
//!
//! A *series* is the unit of storage: one measurement plus one complete tag
//! set. Values are stored columnar per field. Each [`Column`] is layered:
//!
//! * a **mutable head** — `(timestamp, value)` sorted ascending, unique,
//!   last-write-wins on duplicate timestamps (InfluxDB behaviour). Live
//!   collector appends in time order are O(1) amortized; out-of-order
//!   backfill pays a binary-search insert.
//! * zero or more **sealed blocks** — immutable compressed runs
//!   ([`lms_tsm::SealedBlock`]) produced when a flush drains the head, and
//!   re-installed from segment files after a restart.
//!
//! Reads merge the layers with last-write-wins: the head outranks every
//! block, and among blocks the higher seal generation wins. Overlapping
//! versions of a timestamp may therefore coexist until compaction rewrites
//! them — [`Column::len`] counts stored *versions*, while reads always see
//! exactly one value per timestamp. A retention `floor` clamps visibility
//! for blocks that straddle the retention cutoff: expired points inside a
//! still-live block are hidden immediately and physically dropped when the
//! block's file expires or is compacted.

use lms_lineproto::FieldValue;
use lms_tsm::SealedBlock;
use std::sync::Arc;

/// Time index over a column's sealed blocks: block positions sorted by
/// `min_ts` plus a running maximum of `max_ts`, so a range query finds its
/// overlapping blocks by binary search + a bounded backward walk instead of
/// testing every block of the column. Blocks arrive from flushes in time
/// order, so the walk almost always stops after one step past the range.
#[derive(Debug, Clone, Default)]
struct TimeIndex {
    /// Indices into `sealed`, sorted ascending by block `min_ts`.
    order: Vec<u32>,
    /// `prefix_max[i]` = max `max_ts` over `order[..=i]`.
    prefix_max: Vec<i64>,
}

impl TimeIndex {
    fn build(sealed: &[Arc<SealedBlock>]) -> TimeIndex {
        let mut order: Vec<u32> = (0..sealed.len() as u32).collect();
        order.sort_by_key(|&i| sealed[i as usize].min_ts);
        let mut prefix_max = Vec::with_capacity(order.len());
        let mut running = i64::MIN;
        for &i in &order {
            running = running.max(sealed[i as usize].max_ts);
            prefix_max.push(running);
        }
        TimeIndex { order, prefix_max }
    }

    /// Indices (into `sealed`) of blocks overlapping `[start, end)`, in
    /// ascending `min_ts` order.
    fn overlapping(&self, sealed: &[Arc<SealedBlock>], start: i64, end: i64) -> Vec<usize> {
        // Candidates: blocks with min_ts < end (a sorted prefix of `order`).
        let k = self.order.partition_point(|&i| sealed[i as usize].min_ts < end);
        let mut out = Vec::new();
        for j in (0..k).rev() {
            if self.prefix_max[j] < start {
                break; // nothing earlier can reach `start` either
            }
            if sealed[self.order[j] as usize].max_ts >= start {
                out.push(self.order[j] as usize);
            }
        }
        out.reverse();
        out
    }
}

/// Last-write-wins merge of `(timestamp, generation, value)` versions:
/// sorts by `(timestamp, generation)` and keeps the highest-generation
/// version of each timestamp, returning `(timestamp, value)` ascending.
///
/// This is the one LWW rule of the whole stack. [`Column::points_in`] uses
/// it to merge the mutable head (generation `u64::MAX`) with sealed block
/// generations, and the cluster scatter-gather read path uses it to merge
/// the same series fetched from several replicas (tagging each replica's
/// rows with its node index as the generation) — so replicated reads
/// resolve duplicates exactly like a single node resolves overlapping
/// blocks.
pub fn lww_dedup<V>(mut versions: Vec<(i64, u64, V)>) -> Vec<(i64, V)> {
    versions.sort_by_key(|&(t, g, _)| (t, g));
    let mut out: Vec<(i64, V)> = Vec::with_capacity(versions.len());
    for (t, _, v) in versions {
        match out.last_mut() {
            Some(last) if last.0 == t => last.1 = v,
            _ => out.push((t, v)),
        }
    }
    out
}

/// One field's column: mutable head plus sealed compressed history.
#[derive(Debug, Clone, Default)]
pub struct Column {
    /// `(timestamp ns, value)` sorted ascending by timestamp, unique.
    head: Vec<(i64, FieldValue)>,
    /// Immutable compressed runs, ascending seal generation.
    sealed: Vec<Arc<SealedBlock>>,
    /// Points below this timestamp are invisible (retention clamp for
    /// partially-expired blocks). `0` (the default) hides nothing that a
    /// fresh column could contain; negative timestamps predate any real
    /// scrape but are still representable, so the floor starts at `i64::MIN`
    /// semantically — we store the raw cutoff and only raise it.
    floor: Option<i64>,
    /// Binary-search index over `sealed`, rebuilt whenever it changes.
    index: TimeIndex,
}

/// The planned read of one column range: blocks whose pre-aggregated
/// summaries answer the query without decoding, plus the merged residual
/// points (head + decoded straddling blocks).
pub struct Scan<'a> {
    /// Fully-covered, unshadowed blocks — consume `block.summary()`
    /// instead of decoding. For windowed scans each block fits entirely
    /// inside one window.
    pub summarized: Vec<&'a SealedBlock>,
    /// Everything else, merged with last-write-wins. Timestamps covered by
    /// `summarized` blocks never appear here.
    pub residual: Points<'a>,
}

/// Iterator over the visible points of a column range.
///
/// The borrowed variant serves the common all-in-head case without
/// allocating; the merged variant materializes the last-write-wins merge of
/// head and overlapping sealed blocks.
pub enum Points<'a> {
    /// Fast path: every visible point lives in the mutable head.
    Head(std::slice::Iter<'a, (i64, FieldValue)>),
    /// Merge path: decoded blocks + head, deduplicated.
    Merged(std::vec::IntoIter<(i64, FieldValue)>),
}

impl Iterator for Points<'_> {
    type Item = (i64, FieldValue);

    fn next(&mut self) -> Option<(i64, FieldValue)> {
        match self {
            Points::Head(it) => it.next().cloned(),
            Points::Merged(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Points::Head(it) => it.size_hint(),
            Points::Merged(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for Points<'_> {}

impl Column {
    /// Inserts a point into the head, replacing any existing head value at
    /// the same timestamp. A sealed version of the timestamp may coexist;
    /// reads resolve to this newer value.
    pub fn insert(&mut self, ts: i64, value: FieldValue) {
        match self.head.last() {
            Some(&(last, _)) if last < ts => self.head.push((ts, value)),
            _ => match self.head.binary_search_by_key(&ts, |&(t, _)| t) {
                Ok(i) => self.head[i].1 = value,
                Err(i) => self.head.insert(i, (ts, value)),
            },
        }
    }

    /// Inserts a run of points sorted ascending by timestamp (duplicates
    /// allowed; later entries win, as do run entries over existing head
    /// values — the run is "newer"). Equivalent to per-point [`insert`]
    /// calls but with one splice-point search and one tail merge for the
    /// whole run, so a batched hot-series write is O(run + overlap) rather
    /// than O(run · log head).
    ///
    /// [`insert`]: Column::insert
    pub fn insert_many(&mut self, run: &[(i64, FieldValue)]) {
        debug_assert!(run.windows(2).all(|w| w[0].0 <= w[1].0), "run must be sorted");
        let Some(&(first, _)) = run.first() else { return };
        fn push_lww(head: &mut Vec<(i64, FieldValue)>, ts: i64, value: FieldValue) {
            match head.last_mut() {
                Some(last) if last.0 == ts => last.1 = value,
                _ => head.push((ts, value)),
            }
        }
        if self.head.last().is_none_or(|&(last, _)| last < first) {
            // Live-append fast path: the whole run lands after the head.
            self.head.reserve(run.len());
            for (ts, v) in run {
                push_lww(&mut self.head, *ts, v.clone());
            }
            return;
        }
        // Backfill: merge the run with the overlapping head tail. The
        // prefix below the run's first timestamp is untouched.
        let split = self.head.partition_point(|&(t, _)| t < first);
        let tail = self.head.split_off(split);
        self.head.reserve(tail.len() + run.len());
        let mut ti = tail.into_iter().peekable();
        let mut ri = run.iter().peekable();
        loop {
            match (ti.peek(), ri.peek()) {
                (Some(&(t, _)), Some(&&(r, _))) => {
                    if t < r {
                        let p = ti.next().unwrap();
                        push_lww(&mut self.head, p.0, p.1);
                    } else {
                        if t == r {
                            ti.next(); // run outranks the existing value
                        }
                        let p = ri.next().unwrap();
                        push_lww(&mut self.head, p.0, p.1.clone());
                    }
                }
                (Some(_), None) => {
                    let p = ti.next().unwrap();
                    push_lww(&mut self.head, p.0, p.1);
                }
                (None, Some(_)) => {
                    let p = ri.next().unwrap();
                    push_lww(&mut self.head, p.0, p.1.clone());
                }
                (None, None) => break,
            }
        }
    }

    /// The visible points in `[start, end)`, merged across head and sealed
    /// blocks with last-write-wins.
    pub fn points_in(&self, start: i64, end: i64) -> Points<'_> {
        self.scan(start, end, None, false).residual
    }

    /// Plans the read of `[start, end)`: overlapping blocks are found by
    /// binary search on the time index; with `use_summaries`, blocks that
    /// are fully covered by the range, unshadowed by the head or by any
    /// other overlapping block, and (for windowed scans) contained in a
    /// single `window`-aligned bucket are answered from their pre-aggregated
    /// summaries. The rest decodes and merges with the head under
    /// last-write-wins.
    ///
    /// Correctness of the split: a summarized block is unshadowed, so no
    /// newer version of any of its timestamps exists anywhere — the
    /// residual merge and the summary cover disjoint timestamp sets whose
    /// union is exactly the visible range.
    pub fn scan(&self, start: i64, end: i64, window: Option<i64>, use_summaries: bool) -> Scan<'_> {
        let start = match self.floor {
            Some(floor) => start.max(floor),
            None => start,
        };
        if start >= end {
            return Scan { summarized: Vec::new(), residual: Points::Merged(Vec::new().into_iter()) };
        }
        let lo = self.head.partition_point(|&(t, _)| t < start);
        let hi = self.head.partition_point(|&(t, _)| t < end);
        let overlapping = self.index.overlapping(&self.sealed, start, end);
        if overlapping.is_empty() {
            return Scan { summarized: Vec::new(), residual: Points::Head(self.head[lo..hi].iter()) };
        }
        let head = &self.head[lo..hi];
        let mut summarized: Vec<&SealedBlock> = Vec::new();
        let mut decode: Vec<&Arc<SealedBlock>> = Vec::new();
        // Running max of max_ts over the blocks before `pos` — `overlapping`
        // is min_ts-ascending, so an earlier block intersects b's span iff
        // this maximum reaches b.min_ts, and a later block intersects iff
        // the *next* one starts at or before b.max_ts.
        let mut prev_max = i64::MIN;
        for (pos, &i) in overlapping.iter().enumerate() {
            let b = &self.sealed[i];
            let ok = use_summaries
                && b.summary().is_some()
                // Fully covered by the (floor-clamped) range.
                && b.min_ts >= start
                && b.max_ts < end
                // Inside one window, when windowed.
                && window.is_none_or(|w| b.min_ts.div_euclid(w) == b.max_ts.div_euclid(w))
                // No head point shadows (or extends into) the block's span.
                && {
                    let h_lo = head.partition_point(|&(t, _)| t < b.min_ts);
                    head.get(h_lo).is_none_or(|&(t, _)| t > b.max_ts)
                }
                // No other overlapping block shares any of the span.
                && prev_max < b.min_ts
                && (pos + 1 == overlapping.len()
                    || self.sealed[overlapping[pos + 1]].min_ts > b.max_ts);
            prev_max = prev_max.max(b.max_ts);
            if ok {
                summarized.push(b);
            } else {
                decode.push(b);
            }
        }
        // Tag every version with its generation (head outranks all blocks),
        // sort by (ts, gen), keep the newest version per timestamp.
        let mut versions: Vec<(i64, u64, FieldValue)> = Vec::new();
        for b in decode {
            versions.extend(
                b.decode()
                    .into_iter()
                    .filter(|&(t, _)| t >= start && t < end)
                    .map(|(t, v)| (t, b.gen, v)),
            );
        }
        versions.extend(head.iter().map(|(t, v)| (*t, u64::MAX, v.clone())));
        Scan { summarized, residual: Points::Merged(lww_dedup(versions).into_iter()) }
    }

    /// Total stored points of sealed blocks overlapping `[start, end)`
    /// (an upper bound on decode work — found via the time index, cheap).
    pub fn sealed_points_in(&self, start: i64, end: i64) -> usize {
        let start = match self.floor {
            Some(floor) => start.max(floor),
            None => start,
        };
        if start >= end {
            return 0;
        }
        self.index
            .overlapping(&self.sealed, start, end)
            .into_iter()
            .map(|i| self.sealed[i].count as usize)
            .sum()
    }

    /// All visible points (merged).
    pub fn iter_all(&self) -> Points<'_> {
        self.points_in(i64::MIN, i64::MAX)
    }

    /// A lower bound on the first visible timestamp (exact when no sealed
    /// block straddles the retention floor).
    pub fn first_ts(&self) -> Option<i64> {
        let head = self.head.first().map(|&(t, _)| t);
        let sealed = self.sealed.iter().map(|b| b.min_ts).min();
        let raw = match (head, sealed) {
            (Some(h), Some(s)) => Some(h.min(s)),
            (a, b) => a.or(b),
        }?;
        Some(match self.floor {
            Some(floor) => raw.max(floor),
            None => raw,
        })
    }

    /// The last visible timestamp.
    pub fn last_ts(&self) -> Option<i64> {
        let head = self.head.last().map(|&(t, _)| t);
        let sealed = self.sealed.iter().map(|b| b.max_ts).max();
        match (head, sealed) {
            (Some(h), Some(s)) => Some(h.max(s)),
            (a, b) => a.or(b),
        }
    }

    /// Number of stored point *versions* (head + sealed). Overlapping
    /// writes count once per layer until compaction deduplicates them;
    /// reads always see one value per timestamp.
    pub fn len(&self) -> usize {
        self.head.len() + self.sealed.iter().map(|b| b.count as usize).sum::<usize>()
    }

    /// True when neither head nor sealed blocks hold any point.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty() && self.sealed.is_empty()
    }

    /// Drops head points with timestamps `< cutoff`, drops sealed blocks
    /// entirely below it, and raises the visibility floor so straddling
    /// blocks hide their expired prefix. Returns dropped version count.
    pub fn evict_before(&mut self, cutoff: i64) -> usize {
        let n = self.head.partition_point(|&(t, _)| t < cutoff);
        self.head.drain(..n);
        let mut dropped = n;
        let sealed_before = self.sealed.len();
        self.sealed.retain(|b| {
            if b.max_ts < cutoff {
                dropped += b.count as usize;
                false
            } else {
                true
            }
        });
        if self.sealed.len() != sealed_before {
            self.index = TimeIndex::build(&self.sealed);
        }
        if self.sealed.iter().any(|b| b.min_ts < cutoff) {
            self.floor = Some(self.floor.map_or(cutoff, |f| f.max(cutoff)));
        }
        dropped
    }

    /// Drains the mutable head for sealing (flush).
    pub fn take_head(&mut self) -> Vec<(i64, FieldValue)> {
        std::mem::take(&mut self.head)
    }

    /// The mutable head contents (bench/test introspection).
    pub fn head(&self) -> &[(i64, FieldValue)] {
        &self.head
    }

    /// Appends a sealed block (flush seal or recovery install). Blocks must
    /// arrive in ascending generation order.
    pub fn push_sealed(&mut self, block: Arc<SealedBlock>) {
        debug_assert!(self.sealed.last().is_none_or(|b| b.gen <= block.gen));
        self.sealed.push(block);
        self.index = TimeIndex::build(&self.sealed);
    }

    /// Replaces the sealed layer (compaction install).
    pub fn set_sealed(&mut self, blocks: Vec<Arc<SealedBlock>>) {
        self.sealed = blocks;
        self.index = TimeIndex::build(&self.sealed);
    }

    /// The sealed blocks, ascending generation.
    pub fn sealed(&self) -> &[Arc<SealedBlock>] {
        &self.sealed
    }

    /// The retention visibility floor, if one was established.
    pub fn floor(&self) -> Option<i64> {
        self.floor
    }

    /// Head point count (storage stats).
    pub fn head_len(&self) -> usize {
        self.head.len()
    }

    /// Sealed version count and compressed byte total (storage stats).
    pub fn sealed_sizes(&self) -> (usize, usize) {
        (
            self.sealed.iter().map(|b| b.count as usize).sum(),
            self.sealed.iter().map(|b| b.size_bytes()).sum(),
        )
    }
}

/// One series: measurement + tag set + field columns.
#[derive(Debug, Clone)]
pub struct Series {
    measurement: String,
    /// Sorted by key (canonical form, mirrors `Point::tags`).
    tags: Vec<(String, String)>,
    /// `(field name, column)`, insertion order.
    fields: Vec<(String, Column)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(measurement: &str, tags: &[(String, String)]) -> Self {
        Series { measurement: measurement.to_string(), tags: tags.to_vec(), fields: Vec::new() }
    }

    /// The measurement name.
    pub fn measurement(&self) -> &str {
        &self.measurement
    }

    /// The tag set, sorted by key.
    pub fn tags(&self) -> &[(String, String)] {
        &self.tags
    }

    /// Tag lookup.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.tags[i].1.as_str())
    }

    /// Inserts one field value.
    pub fn insert(&mut self, field: &str, ts: i64, value: FieldValue) {
        match self.fields.iter_mut().find(|(f, _)| f == field) {
            Some((_, col)) => col.insert(ts, value),
            None => {
                let mut col = Column::default();
                col.insert(ts, value);
                self.fields.push((field.to_string(), col));
            }
        }
    }

    /// The column of a field.
    pub fn field(&self, name: &str) -> Option<&Column> {
        self.fields.iter().find(|(f, _)| f == name).map(|(_, c)| c)
    }

    /// Mutable access to a field's column, creating it if missing
    /// (sealed-block install during recovery).
    pub fn field_mut_or_create(&mut self, name: &str) -> &mut Column {
        if let Some(i) = self.fields.iter().position(|(f, _)| f == name) {
            return &mut self.fields[i].1;
        }
        self.fields.push((name.to_string(), Column::default()));
        &mut self.fields.last_mut().unwrap().1
    }

    /// Iterates `(field name, column)` mutably (flush/compaction).
    pub fn fields_mut(&mut self) -> impl Iterator<Item = (&str, &mut Column)> {
        self.fields.iter_mut().map(|(f, c)| (f.as_str(), c))
    }

    /// All field names, insertion order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(f, _)| f.as_str())
    }

    /// Total stored point versions across fields (see [`Column::len`]).
    pub fn point_count(&self) -> usize {
        self.fields.iter().map(|(_, c)| c.len()).sum()
    }

    /// Evicts points older than `cutoff` in every field; drops emptied
    /// fields. Returns evicted version count.
    pub fn evict_before(&mut self, cutoff: i64) -> usize {
        let mut evicted = 0;
        for (_, col) in &mut self.fields {
            evicted += col.evict_before(cutoff);
        }
        self.fields.retain(|(_, c)| !c.is_empty());
        evicted
    }

    /// True when all fields were evicted.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> FieldValue {
        FieldValue::Float(v)
    }

    fn collect(points: Points<'_>) -> Vec<(i64, FieldValue)> {
        points.collect()
    }

    /// Seals `points` (must be sorted) into the column at generation `gen`.
    fn seal_into(c: &mut Column, gen: u64, points: &[(i64, FieldValue)]) {
        c.push_sealed(Arc::new(SealedBlock::seal(gen, points)));
    }

    #[test]
    fn in_order_appends() {
        let mut c = Column::default();
        for i in 0..100 {
            c.insert(i, f(i as f64));
        }
        assert_eq!(c.len(), 100);
        let pts = collect(c.points_in(10, 20));
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0].0, 10);
        assert!(matches!(c.points_in(10, 20), Points::Head(_)), "no blocks: borrowed fast path");
    }

    #[test]
    fn out_of_order_inserts_sort() {
        let mut c = Column::default();
        for ts in [50, 10, 30, 20, 40] {
            c.insert(ts, f(ts as f64));
        }
        let times: Vec<i64> = c.iter_all().map(|(t, _)| t).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn duplicate_timestamp_last_write_wins() {
        let mut c = Column::default();
        c.insert(5, f(1.0));
        c.insert(5, f(2.0));
        assert_eq!(c.len(), 1);
        assert_eq!(collect(c.iter_all()), vec![(5, f(2.0))]);
    }

    #[test]
    fn insert_many_append_fast_path_and_run_dups() {
        let mut c = Column::default();
        c.insert(1, f(1.0));
        // Run lands entirely after the head; in-run duplicate resolves to
        // the later value.
        c.insert_many(&[(2, f(2.0)), (3, f(3.0)), (3, f(33.0)), (4, f(4.0))]);
        assert_eq!(
            collect(c.iter_all()),
            vec![(1, f(1.0)), (2, f(2.0)), (3, f(33.0)), (4, f(4.0))]
        );
    }

    #[test]
    fn insert_many_backfill_merges_with_lww() {
        let mut c = Column::default();
        for ts in [10, 20, 30, 40] {
            c.insert(ts, f(ts as f64));
        }
        // Overlapping backfill: ts 20 collides (run wins), 15/35 interleave,
        // 50 extends.
        c.insert_many(&[(15, f(1.5)), (20, f(99.0)), (35, f(3.5)), (50, f(5.0))]);
        assert_eq!(
            collect(c.iter_all()),
            vec![
                (10, f(10.0)),
                (15, f(1.5)),
                (20, f(99.0)),
                (30, f(30.0)),
                (35, f(3.5)),
                (40, f(40.0)),
                (50, f(5.0)),
            ]
        );
    }

    #[test]
    fn insert_many_matches_per_point_inserts() {
        let runs: Vec<Vec<(i64, FieldValue)>> = vec![
            vec![(5, f(0.0)), (7, f(1.0))],
            vec![(1, f(2.0)), (5, f(3.0)), (9, f(4.0))],
            vec![(9, f(5.0)), (9, f(6.0)), (10, f(7.0))],
            vec![],
            vec![(0, f(8.0))],
        ];
        let mut batched = Column::default();
        let mut single = Column::default();
        for run in &runs {
            batched.insert_many(run);
            for (ts, v) in run {
                single.insert(*ts, v.clone());
            }
        }
        assert_eq!(collect(batched.iter_all()), collect(single.iter_all()));
        assert_eq!(batched.len(), single.len());
    }

    #[test]
    fn range_boundaries_are_half_open() {
        let mut c = Column::default();
        for ts in [10, 20, 30] {
            c.insert(ts, f(0.0));
        }
        assert_eq!(c.points_in(10, 30).len(), 2); // 10, 20; 30 excluded
        assert_eq!(c.points_in(i64::MIN, i64::MAX).len(), 3);
        assert_eq!(c.points_in(11, 12).len(), 0);
    }

    #[test]
    fn eviction() {
        let mut c = Column::default();
        for ts in 0..10 {
            c.insert(ts, f(0.0));
        }
        assert_eq!(c.evict_before(5), 5);
        assert_eq!(c.len(), 5);
        assert_eq!(collect(c.iter_all())[0].0, 5);
        assert_eq!(c.evict_before(0), 0);
    }

    #[test]
    fn merge_prefers_head_over_sealed() {
        let mut c = Column::default();
        seal_into(&mut c, 0, &[(10, f(1.0)), (20, f(2.0)), (30, f(3.0))]);
        c.insert(20, f(99.0)); // overwrite a sealed timestamp
        c.insert(40, f(4.0));
        let pts = collect(c.iter_all());
        assert_eq!(pts, vec![(10, f(1.0)), (20, f(99.0)), (30, f(3.0)), (40, f(4.0))]);
        assert_eq!(c.len(), 5, "len counts versions: 3 sealed + 2 head");
    }

    #[test]
    fn merge_prefers_newer_generation() {
        let mut c = Column::default();
        seal_into(&mut c, 1, &[(10, f(1.0)), (20, f(2.0))]);
        seal_into(&mut c, 2, &[(20, f(22.0)), (30, f(3.0))]);
        let pts = collect(c.iter_all());
        assert_eq!(pts, vec![(10, f(1.0)), (20, f(22.0)), (30, f(3.0))]);
    }

    #[test]
    fn range_skips_non_overlapping_blocks() {
        let mut c = Column::default();
        seal_into(&mut c, 0, &[(10, f(1.0)), (20, f(2.0))]);
        c.insert(100, f(5.0));
        // Query entirely after the block: fast path, no decode.
        assert!(matches!(c.points_in(50, 200), Points::Head(_)));
        assert_eq!(collect(c.points_in(50, 200)), vec![(100, f(5.0))]);
        // Query touching the block: merged.
        assert_eq!(c.points_in(15, 200).len(), 2);
    }

    #[test]
    fn eviction_drops_whole_blocks_and_floors_straddlers() {
        let mut c = Column::default();
        seal_into(&mut c, 0, &[(0, f(0.0)), (10, f(1.0))]);
        seal_into(&mut c, 1, &[(20, f(2.0)), (40, f(4.0))]);
        c.insert(50, f(5.0));
        // Cutoff 30: block 0 fully expired (dropped), block 1 straddles.
        let dropped = c.evict_before(30);
        assert_eq!(dropped, 2, "only the fully-expired block is dropped");
        assert_eq!(c.floor(), Some(30));
        let pts = collect(c.iter_all());
        assert_eq!(pts, vec![(40, f(4.0)), (50, f(5.0))], "floor hides ts 20");
        assert_eq!(c.first_ts(), Some(30), "first_ts clamps to the floor");
        assert_eq!(c.last_ts(), Some(50));
    }

    #[test]
    fn take_head_then_seal_round_trips() {
        let mut c = Column::default();
        for ts in 0..50 {
            c.insert(ts, f(ts as f64));
        }
        let head = c.take_head();
        assert_eq!(head.len(), 50);
        assert!(c.head().is_empty());
        seal_into(&mut c, 0, &head);
        assert_eq!(c.len(), 50);
        assert_eq!(c.points_in(10, 20).len(), 10);
        let (count, bytes) = c.sealed_sizes();
        assert_eq!(count, 50);
        assert!(bytes > 0);
    }

    #[test]
    fn scan_summarizes_fully_covered_unshadowed_blocks() {
        let mut c = Column::default();
        seal_into(&mut c, 0, &[(10, f(1.0)), (20, f(2.0))]);
        seal_into(&mut c, 1, &[(30, f(3.0)), (40, f(4.0))]);
        // Fully covered, disjoint, no head: both answered by summary.
        let scan = c.scan(0, 100, None, true);
        assert_eq!(scan.summarized.len(), 2);
        assert_eq!(scan.residual.count(), 0);
        // Partially covered: block 0 straddles the range start and decodes.
        let scan = c.scan(15, 100, None, true);
        assert_eq!(scan.summarized.len(), 1);
        assert_eq!(collect(scan.residual), vec![(20, f(2.0))]);
        // Summaries disabled: everything decodes.
        let scan = c.scan(0, 100, None, false);
        assert!(scan.summarized.is_empty());
        assert_eq!(scan.residual.count(), 4);
    }

    #[test]
    fn scan_head_shadowing_forces_decode() {
        let mut c = Column::default();
        seal_into(&mut c, 0, &[(10, f(1.0)), (20, f(2.0))]);
        c.insert(20, f(99.0)); // head overwrites a sealed timestamp
        let scan = c.scan(0, 100, None, true);
        assert!(scan.summarized.is_empty(), "shadowed block must decode");
        assert_eq!(collect(scan.residual), vec![(10, f(1.0)), (20, f(99.0))]);
        // A head point merely *between* block timestamps also blocks the
        // summary (count would be wrong otherwise).
        let mut c = Column::default();
        seal_into(&mut c, 0, &[(10, f(1.0)), (20, f(2.0))]);
        c.insert(15, f(1.5));
        let scan = c.scan(0, 100, None, true);
        assert!(scan.summarized.is_empty());
        assert_eq!(scan.residual.count(), 3);
    }

    #[test]
    fn scan_overlapping_blocks_force_decode() {
        let mut c = Column::default();
        seal_into(&mut c, 1, &[(10, f(1.0)), (30, f(3.0))]);
        seal_into(&mut c, 2, &[(20, f(22.0)), (25, f(2.5))]);
        let scan = c.scan(0, 100, None, true);
        assert!(scan.summarized.is_empty(), "mutually overlapping blocks decode");
        assert_eq!(
            collect(scan.residual),
            vec![(10, f(1.0)), (20, f(22.0)), (25, f(2.5)), (30, f(3.0))]
        );
        // A long early block shadowing a non-adjacent later one: only the
        // middle (disjoint) block may summarize.
        let mut c = Column::default();
        seal_into(&mut c, 1, &[(0, f(0.0)), (100, f(1.0))]);
        seal_into(&mut c, 2, &[(10, f(0.1)), (20, f(0.2))]);
        seal_into(&mut c, 3, &[(90, f(0.9)), (95, f(0.95))]);
        let scan = c.scan(0, 200, None, true);
        assert!(scan.summarized.is_empty(), "gen-1 span intersects both later blocks");
    }

    #[test]
    fn scan_windowed_requires_single_bucket() {
        let mut c = Column::default();
        seal_into(&mut c, 0, &[(10, f(1.0)), (19, f(2.0))]); // inside window [10, 20)
        seal_into(&mut c, 1, &[(25, f(3.0)), (35, f(4.0))]); // straddles 30
        let scan = c.scan(0, 100, Some(10), true);
        assert_eq!(scan.summarized.len(), 1);
        assert_eq!(scan.summarized[0].min_ts, 10);
        assert_eq!(scan.residual.count(), 2);
        // Unwindowed: both summarize.
        assert_eq!(c.scan(0, 100, None, true).summarized.len(), 2);
    }

    #[test]
    fn scan_respects_retention_floor() {
        let mut c = Column::default();
        seal_into(&mut c, 0, &[(0, f(0.0)), (10, f(1.0))]);
        seal_into(&mut c, 1, &[(20, f(2.0)), (40, f(4.0))]);
        c.evict_before(30); // block 0 dropped, block 1 straddles → floor 30
        let scan = c.scan(i64::MIN, i64::MAX, None, true);
        assert!(scan.summarized.is_empty(), "floor-clipped block must decode");
        assert_eq!(collect(scan.residual), vec![(40, f(4.0))]);
    }

    #[test]
    fn time_index_finds_overlaps_like_linear_scan() {
        let mut c = Column::default();
        // Deliberately interleaved spans, inserted in gen order.
        let spans: &[(i64, i64)] = &[(0, 50), (10, 20), (60, 70), (40, 65), (80, 90)];
        for (g, &(lo, hi)) in spans.iter().enumerate() {
            seal_into(&mut c, g as u64, &[(lo, f(lo as f64)), (hi, f(hi as f64))]);
        }
        for (start, end) in
            [(0, 100), (55, 62), (21, 39), (91, 100), (i64::MIN, i64::MAX), (70, 71), (50, 51)]
        {
            let by_index: Vec<u64> = c
                .index
                .overlapping(&c.sealed, start, end)
                .into_iter()
                .map(|i| c.sealed[i].gen)
                .collect();
            let mut linear: Vec<u64> =
                c.sealed.iter().filter(|b| b.overlaps(start, end)).map(|b| b.gen).collect();
            linear.sort_by_key(|&g| c.sealed.iter().position(|b| b.gen == g).unwrap());
            let mut by_index_sorted = by_index.clone();
            by_index_sorted.sort();
            let mut linear_sorted = linear.clone();
            linear_sorted.sort();
            assert_eq!(by_index_sorted, linear_sorted, "range [{start}, {end})");
        }
    }

    #[test]
    fn series_fields_and_tags() {
        let tags = vec![("hostname".to_string(), "h1".to_string())];
        let mut s = Series::new("cpu", &tags);
        s.insert("value", 1, f(0.5));
        s.insert("count", 1, FieldValue::Integer(3));
        s.insert("value", 2, f(0.7));
        assert_eq!(s.measurement(), "cpu");
        assert_eq!(s.tag("hostname"), Some("h1"));
        assert_eq!(s.tag("missing"), None);
        assert_eq!(s.field("value").unwrap().len(), 2);
        assert_eq!(s.field_names().collect::<Vec<_>>(), vec!["value", "count"]);
        assert_eq!(s.point_count(), 3);
    }

    #[test]
    fn series_eviction_drops_empty_fields() {
        let mut s = Series::new("m", &[]);
        s.insert("old", 1, f(0.0));
        s.insert("fresh", 100, f(0.0));
        assert_eq!(s.evict_before(50), 1);
        assert!(s.field("old").is_none());
        assert!(s.field("fresh").is_some());
        assert!(!s.is_empty());
        s.evict_before(200);
        assert!(s.is_empty());
    }
}
