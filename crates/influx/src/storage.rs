//! Series storage: per-field, time-sorted columns.
//!
//! A *series* is the unit of storage: one measurement plus one complete tag
//! set. Values are stored columnar per field, sorted by timestamp, with
//! last-write-wins semantics on duplicate timestamps (InfluxDB behaviour).
//! The common case — appends in time order from live collectors — is O(1)
//! amortized; out-of-order backfill pays a binary-search insert.

use lms_lineproto::FieldValue;

/// One field's time-sorted column.
#[derive(Debug, Clone, Default)]
pub struct Column {
    /// `(timestamp ns, value)` sorted ascending by timestamp, unique.
    points: Vec<(i64, FieldValue)>,
}

impl Column {
    /// Inserts a point, replacing any existing value at the same timestamp.
    pub fn insert(&mut self, ts: i64, value: FieldValue) {
        match self.points.last() {
            Some(&(last, _)) if last < ts => self.points.push((ts, value)),
            _ => match self.points.binary_search_by_key(&ts, |&(t, _)| t) {
                Ok(i) => self.points[i].1 = value,
                Err(i) => self.points.insert(i, (ts, value)),
            },
        }
    }

    /// All points in `[start, end)`.
    pub fn range(&self, start: i64, end: i64) -> &[(i64, FieldValue)] {
        let lo = self.points.partition_point(|&(t, _)| t < start);
        let hi = self.points.partition_point(|&(t, _)| t < end);
        &self.points[lo..hi]
    }

    /// All points.
    pub fn all(&self) -> &[(i64, FieldValue)] {
        &self.points
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point is stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Drops all points with timestamps `< cutoff`; returns how many.
    pub fn evict_before(&mut self, cutoff: i64) -> usize {
        let n = self.points.partition_point(|&(t, _)| t < cutoff);
        self.points.drain(..n);
        n
    }
}

/// One series: measurement + tag set + field columns.
#[derive(Debug, Clone)]
pub struct Series {
    measurement: String,
    /// Sorted by key (canonical form, mirrors `Point::tags`).
    tags: Vec<(String, String)>,
    /// `(field name, column)`, insertion order.
    fields: Vec<(String, Column)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(measurement: &str, tags: &[(String, String)]) -> Self {
        Series { measurement: measurement.to_string(), tags: tags.to_vec(), fields: Vec::new() }
    }

    /// The measurement name.
    pub fn measurement(&self) -> &str {
        &self.measurement
    }

    /// The tag set, sorted by key.
    pub fn tags(&self) -> &[(String, String)] {
        &self.tags
    }

    /// Tag lookup.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.tags[i].1.as_str())
    }

    /// Inserts one field value.
    pub fn insert(&mut self, field: &str, ts: i64, value: FieldValue) {
        match self.fields.iter_mut().find(|(f, _)| f == field) {
            Some((_, col)) => col.insert(ts, value),
            None => {
                let mut col = Column::default();
                col.insert(ts, value);
                self.fields.push((field.to_string(), col));
            }
        }
    }

    /// The column of a field.
    pub fn field(&self, name: &str) -> Option<&Column> {
        self.fields.iter().find(|(f, _)| f == name).map(|(_, c)| c)
    }

    /// All field names, insertion order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(f, _)| f.as_str())
    }

    /// Total stored points across fields.
    pub fn point_count(&self) -> usize {
        self.fields.iter().map(|(_, c)| c.len()).sum()
    }

    /// Evicts points older than `cutoff` in every field; drops emptied
    /// fields. Returns evicted point count.
    pub fn evict_before(&mut self, cutoff: i64) -> usize {
        let mut evicted = 0;
        for (_, col) in &mut self.fields {
            evicted += col.evict_before(cutoff);
        }
        self.fields.retain(|(_, c)| !c.is_empty());
        evicted
    }

    /// True when all fields were evicted.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> FieldValue {
        FieldValue::Float(v)
    }

    #[test]
    fn in_order_appends() {
        let mut c = Column::default();
        for i in 0..100 {
            c.insert(i, f(i as f64));
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.range(10, 20).len(), 10);
        assert_eq!(c.range(10, 20)[0].0, 10);
    }

    #[test]
    fn out_of_order_inserts_sort() {
        let mut c = Column::default();
        for ts in [50, 10, 30, 20, 40] {
            c.insert(ts, f(ts as f64));
        }
        let times: Vec<i64> = c.all().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn duplicate_timestamp_last_write_wins() {
        let mut c = Column::default();
        c.insert(5, f(1.0));
        c.insert(5, f(2.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.all()[0].1, f(2.0));
    }

    #[test]
    fn range_boundaries_are_half_open() {
        let mut c = Column::default();
        for ts in [10, 20, 30] {
            c.insert(ts, f(0.0));
        }
        assert_eq!(c.range(10, 30).len(), 2); // 10, 20; 30 excluded
        assert_eq!(c.range(i64::MIN, i64::MAX).len(), 3);
        assert!(c.range(11, 12).is_empty());
    }

    #[test]
    fn eviction() {
        let mut c = Column::default();
        for ts in 0..10 {
            c.insert(ts, f(0.0));
        }
        assert_eq!(c.evict_before(5), 5);
        assert_eq!(c.len(), 5);
        assert_eq!(c.all()[0].0, 5);
        assert_eq!(c.evict_before(0), 0);
    }

    #[test]
    fn series_fields_and_tags() {
        let tags = vec![("hostname".to_string(), "h1".to_string())];
        let mut s = Series::new("cpu", &tags);
        s.insert("value", 1, f(0.5));
        s.insert("count", 1, FieldValue::Integer(3));
        s.insert("value", 2, f(0.7));
        assert_eq!(s.measurement(), "cpu");
        assert_eq!(s.tag("hostname"), Some("h1"));
        assert_eq!(s.tag("missing"), None);
        assert_eq!(s.field("value").unwrap().len(), 2);
        assert_eq!(s.field_names().collect::<Vec<_>>(), vec!["value", "count"]);
        assert_eq!(s.point_count(), 3);
    }

    #[test]
    fn series_eviction_drops_empty_fields() {
        let mut s = Series::new("m", &[]);
        s.insert("old", 1, f(0.0));
        s.insert("fresh", 100, f(0.0));
        assert_eq!(s.evict_before(50), 1);
        assert!(s.field("old").is_none());
        assert!(s.field("fresh").is_some());
        assert!(!s.is_empty());
        s.evict_before(200);
        assert!(s.is_empty());
    }
}
