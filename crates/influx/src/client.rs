//! A typed client for the InfluxDB-compatible API.
//!
//! Used by the router's forwarder, the dashboard agent's data source and
//! the analysis layer — all of which are then equally happy to talk to a
//! real InfluxDB (the point of mimicking its API, per the paper).

use crate::exec::QueryResult;
use lms_http::HttpClient;
use lms_lineproto::Precision;
use lms_util::{Json, Result};
use std::net::ToSocketAddrs;

/// Client for one database server.
pub struct InfluxClient {
    http: HttpClient,
}

impl InfluxClient {
    /// Connects (lazily) to a server address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        Ok(InfluxClient { http: HttpClient::connect(addr)? })
    }

    /// Sets the per-request I/O timeout (connect/read/write). The
    /// forwarder uses a short timeout so a blackholed connection cannot
    /// pin a worker for the default 10 s.
    pub fn set_timeout(&mut self, t: std::time::Duration) {
        self.http.set_timeout(t);
    }

    /// Health check: `GET /ping`.
    pub fn ping(&mut self) -> Result<()> {
        self.http.get("/ping")?.into_result().map(drop)
    }

    /// Boolean health probe: true when the server answers `/ping` with a
    /// success status. Used by the spool drainer to confirm recovery
    /// before replaying a backlog.
    pub fn healthy(&mut self) -> bool {
        self.ping().is_ok()
    }

    /// Writes a line-protocol batch with nanosecond timestamps.
    pub fn write(&mut self, db: &str, batch: &str) -> Result<()> {
        self.write_with_precision(db, batch, Precision::Nanoseconds)
    }

    /// Writes a batch with explicit precision.
    pub fn write_with_precision(
        &mut self,
        db: &str,
        batch: &str,
        precision: Precision,
    ) -> Result<()> {
        let target = format!(
            "/write?db={}&precision={}",
            lms_http::url::percent_encode(db),
            precision.as_str()
        );
        self.http.post_text(&target, batch)?.into_result().map(drop)
    }

    /// Runs a query and parses the result.
    pub fn query(&mut self, db: &str, q: &str) -> Result<QueryResult> {
        let target = format!(
            "/query?db={}&q={}",
            lms_http::url::percent_encode(db),
            lms_http::url::percent_encode(q)
        );
        let resp = self.http.get(&target)?;
        // Error responses carry {"error": ...}; surface them as Remote
        // errors under their real HTTP status — cluster routers tell a
        // node's "no such database" (404, an empty answer) apart from a
        // malformed query (400) by exactly this status.
        let json = Json::parse(&resp.body_str())?;
        if let Some(err) = json.get("error").and_then(Json::as_str) {
            return Err(lms_util::Error::Remote {
                status: resp.status,
                message: err.to_string(),
            });
        }
        QueryResult::from_json(&json)
    }

    /// Runs a range query: a SELECT over the half-open `[start, end)` ns
    /// range, optionally bucketed to `step` ns windows (`/query_range`).
    pub fn query_range(
        &mut self,
        db: &str,
        q: &str,
        start: i64,
        end: i64,
        step: Option<i64>,
    ) -> Result<QueryResult> {
        let mut target = format!(
            "/query_range?db={}&q={}&start={start}&end={end}",
            lms_http::url::percent_encode(db),
            lms_http::url::percent_encode(q)
        );
        if let Some(step) = step {
            target.push_str(&format!("&step={step}"));
        }
        let resp = self.http.get(&target)?;
        let json = Json::parse(&resp.body_str())?;
        if let Some(err) = json.get("error").and_then(Json::as_str) {
            return Err(lms_util::Error::Remote {
                status: resp.status,
                message: err.to_string(),
            });
        }
        QueryResult::from_json(&json)
    }

    /// Lists the measurement names of a database (`/metrics`).
    pub fn metrics(&mut self, db: &str) -> Result<Vec<String>> {
        let target = format!("/metrics?db={}", lms_http::url::percent_encode(db));
        self.string_listing(&target, "metrics")
    }

    /// Lists the tag keys of one measurement (`/labels/{measurement}`).
    pub fn labels(&mut self, db: &str, measurement: &str) -> Result<Vec<String>> {
        let target = format!(
            "/labels/{}?db={}",
            lms_http::url::percent_encode(measurement),
            lms_http::url::percent_encode(db)
        );
        self.string_listing(&target, "labels")
    }

    fn string_listing(&mut self, target: &str, key: &str) -> Result<Vec<String>> {
        let resp = self.http.get(target)?;
        let json = Json::parse(&resp.body_str())?;
        if let Some(err) = json.get("error").and_then(Json::as_str) {
            return Err(lms_util::Error::Remote {
                status: resp.status,
                message: err.to_string(),
            });
        }
        let mut names = Vec::new();
        let Some(arr) = json.get(key) else {
            return Err(lms_util::Error::protocol(format!("missing `{key}` in listing")));
        };
        let mut i = 0;
        while let Some(item) = arr.idx(i) {
            if let Some(s) = item.as_str() {
                names.push(s.to_string());
            }
            i += 1;
        }
        Ok(names)
    }

    /// Fetches the anti-entropy range digests of one database
    /// (`/integrity`). The caller supplies the cluster ring geometry so the
    /// node groups series by the same owner sets the router places by.
    pub fn integrity(
        &mut self,
        db: &str,
        nodes: usize,
        replication: usize,
        seed: u64,
    ) -> Result<Vec<lms_util::digest::BucketDigest>> {
        let target = format!(
            "/integrity?db={}&nodes={nodes}&replication={replication}&seed={seed}",
            lms_http::url::percent_encode(db)
        );
        let resp = self.http.get(&target)?;
        let json = Json::parse(&resp.body_str())?;
        if let Some(err) = json.get("error").and_then(Json::as_str) {
            return Err(lms_util::Error::Remote {
                status: resp.status,
                message: err.to_string(),
            });
        }
        let digests = json
            .get("digests")
            .ok_or_else(|| lms_util::Error::protocol("missing `digests` in /integrity"))?;
        lms_util::digest::digests_from_json(digests)
    }

    /// Fetches the canonical line-protocol export of `[start, end)` ns
    /// (`/integrity/export`), for replay through the write path.
    pub fn integrity_export(&mut self, db: &str, start: i64, end: i64) -> Result<String> {
        let target = format!(
            "/integrity/export?db={}&start={start}&end={end}",
            lms_http::url::percent_encode(db)
        );
        let resp = self.http.get(&target)?;
        if resp.status >= 400 {
            let message = Json::parse(&resp.body_str())
                .ok()
                .and_then(|j| j.get("error").and_then(Json::as_str).map(str::to_string))
                .unwrap_or_else(|| format!("HTTP {}", resp.status));
            return Err(lms_util::Error::Remote { status: resp.status, message });
        }
        Ok(resp.body_str().into_owned())
    }

    /// Creates a database.
    pub fn create_database(&mut self, name: &str) -> Result<()> {
        let target = format!(
            "/query?q={}",
            lms_http::url::percent_encode(&format!("CREATE DATABASE {name}"))
        );
        self.http.post(&target, b"")?.into_result().map(drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Influx;
    use crate::server::InfluxServer;
    use lms_util::{Clock, Timestamp};

    fn start() -> (InfluxServer, InfluxClient) {
        let influx = Influx::new(Clock::simulated(Timestamp::from_secs(1000)));
        let server = InfluxServer::start("127.0.0.1:0", influx).unwrap();
        let client = InfluxClient::connect(server.addr()).unwrap();
        (server, client)
    }

    #[test]
    fn end_to_end_typed_api() {
        let (server, mut c) = start();
        c.ping().unwrap();
        assert!(c.healthy());
        c.write("lms", "cpu,hostname=h1 value=1 100\ncpu,hostname=h1 value=3 200").unwrap();
        let r = c.query("lms", "SELECT mean(value) FROM cpu").unwrap();
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(2.0));
        server.shutdown();
    }

    #[test]
    fn precision_and_create_database() {
        let (server, mut c) = start();
        c.create_database("udb").unwrap();
        c.write_with_precision("udb", "m v=5 42", Precision::Seconds).unwrap();
        let r = c.query("udb", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values[0][0].as_i64(), Some(42_000_000_000));
        server.shutdown();
    }

    #[test]
    fn range_query_and_listings() {
        let (server, mut c) = start();
        c.write(
            "lms",
            "cpu,hostname=h1 value=1 10000000000\ncpu,hostname=h1 value=2 70000000000",
        )
        .unwrap();
        let r = c
            .query_range("lms", "SELECT sum(value) FROM cpu", 0, 120_000_000_000, Some(60_000_000_000))
            .unwrap();
        assert_eq!(r.series[0].values.len(), 2);
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(1.0));
        assert_eq!(c.metrics("lms").unwrap(), vec!["cpu"]);
        assert_eq!(c.labels("lms", "cpu").unwrap(), vec!["hostname"]);
        let err = c.query_range("ghost", "SELECT v FROM m", 0, 10, None).unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
        server.shutdown();
    }

    #[test]
    fn healthy_is_false_when_nothing_listens() {
        let (server, mut c) = start();
        server.shutdown();
        c.set_timeout(std::time::Duration::from_millis(300));
        assert!(!c.healthy());
    }

    #[test]
    fn query_error_surfaces() {
        let (server, mut c) = start();
        let err = c.query("missing_db", "SELECT v FROM m").unwrap_err();
        assert!(err.to_string().contains("missing_db"), "{err}");
        server.shutdown();
    }

    #[test]
    fn special_characters_in_query_survive_encoding() {
        let (server, mut c) = start();
        c.write("lms", "cpu,hostname=node-01 value=7 1").unwrap();
        let r = c
            .query("lms", "SELECT mean(\"value\") FROM \"cpu\" WHERE \"hostname\" = 'node-01'")
            .unwrap();
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(7.0));
        server.shutdown();
    }
}
