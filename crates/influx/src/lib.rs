//! # lms-influx
//!
//! An embedded time-series database with an **InfluxDB-compatible HTTP
//! API** — the storage back-end of the LMS reproduction.
//!
//! The paper chooses InfluxDB because it "can handle floating-point data as
//! well as strings as input values representing metrics and events". LMS
//! uses a small slice of it: line-protocol writes, and range/aggregate
//! queries for dashboards and analysis. This crate implements that slice:
//!
//! - [`storage`] — series (measurement + tag set) holding per-field,
//!   time-sorted columns of typed values,
//! - [`db`] — databases with optional retention, and the [`Influx`] embedded
//!   handle (thread-safe, usable without any server),
//! - [`query`] — an InfluxQL-subset parser: `SELECT` with aggregations,
//!   time-range and tag predicates, `GROUP BY time(...)` and tags, `ORDER BY
//!   time DESC`, `LIMIT`, plus `SHOW MEASUREMENTS` / `SHOW TAG VALUES` /
//!   `SHOW FIELD KEYS` / `CREATE DATABASE`,
//! - [`exec`] — query execution and InfluxDB-shaped JSON results,
//! - [`server`] — `/ping`, `/write`, `/query` endpoints over `lms-http`,
//! - [`client`] — a typed client for the same API (used by the router,
//!   dashboard agent and analysis).
//!
//! ```
//! use lms_influx::Influx;
//! use lms_util::{Clock, Timestamp};
//!
//! let influx = Influx::new(Clock::simulated(Timestamp::from_secs(100)));
//! influx.write_lines("lms", "cpu,hostname=h1 value=0.5 99000000000", Default::default()).unwrap();
//! influx.write_lines("lms", "cpu,hostname=h1 value=0.7 100000000000", Default::default()).unwrap();
//!
//! let result = influx.query("lms", "SELECT mean(value) FROM cpu").unwrap();
//! let mean = result.series[0].values[0][1].as_f64().unwrap();
//! assert!((mean - 0.6).abs() < 1e-12);
//! ```

pub mod client;
pub mod db;
pub mod exec;
pub mod query;
pub mod server;
pub mod storage;

pub use client::InfluxClient;
pub use db::{
    Database, Influx, QueryTuning, RollupPolicy, StorageConfig, StorageStats, StorageWorker,
    WriteOptions,
};
pub use exec::{QueryResult, ResultSeries, TierCtx};
pub use query::Statement;
pub use storage::{lww_dedup, Scan};
pub use server::InfluxServer;

/// The persistent storage engine (re-exported for direct use in tests,
/// benches, and tooling).
pub use lms_tsm as tsm;

/// The downsampling tier vocabulary (re-exported so callers configuring
/// [`RollupPolicy`] or [`Influx::set_query_tiers`] need no extra dep).
pub use lms_rollup as rollup;
pub use lms_rollup::Tier;

/// Anything that can answer InfluxQL queries: the embedded [`Influx`]
/// handle (in-process stack) or an [`InfluxClient`] (remote database).
/// The analysis layer and the dashboard agent are generic over this, so
/// they work unchanged against a real InfluxDB.
pub trait QuerySource {
    /// Runs a query against a database.
    fn query_source(&mut self, db: &str, q: &str) -> lms_util::Result<QueryResult>;
}

impl QuerySource for Influx {
    fn query_source(&mut self, db: &str, q: &str) -> lms_util::Result<QueryResult> {
        self.query(db, q)
    }
}

impl QuerySource for InfluxClient {
    fn query_source(&mut self, db: &str, q: &str) -> lms_util::Result<QueryResult> {
        self.query(db, q)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lms_util::{Clock, Timestamp};
    use proptest::prelude::*;

    /// Random points on one series: (seconds offset, value).
    fn points_strategy() -> impl Strategy<Value = Vec<(i64, f64)>> {
        proptest::collection::vec((0i64..3600, -1000.0..1000.0f64), 1..60).prop_map(|mut v| {
            // Unique timestamps (duplicates overwrite; keep the invariant
            // statements simple).
            v.sort_by_key(|&(t, _)| t);
            v.dedup_by_key(|&mut (t, _)| t);
            v
        })
    }

    fn load(points: &[(i64, f64)]) -> Influx {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(10_000)));
        let mut batch = String::new();
        for &(t, v) in points {
            batch.push_str(&format!("m,hostname=h1 v={v} {}\n", t * 1_000_000_000));
        }
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        ix
    }

    proptest! {
        /// Windowed sums partition the total: Σ over GROUP BY time(w)
        /// buckets equals the un-windowed sum, for any window size.
        #[test]
        fn window_sums_preserve_totals(
            points in points_strategy(),
            window_s in 1i64..1200,
        ) {
            let ix = load(&points);
            let total = ix
                .query("lms", "SELECT sum(v) FROM m")
                .unwrap()
                .series[0].values[0][1].as_f64().unwrap();
            let windowed = ix
                .query(
                    "lms",
                    &format!(
                        "SELECT sum(v) FROM m WHERE time >= 0 AND time < 3600000000000 GROUP BY time({window_s}s)"
                    ),
                )
                .unwrap();
            let bucket_sum: f64 = windowed.series[0]
                .values
                .iter()
                .filter_map(|row| row[1].as_f64())
                .sum();
            let expect: f64 = points.iter().map(|&(_, v)| v).sum();
            prop_assert!((total - expect).abs() < 1e-6, "total {total} vs {expect}");
            prop_assert!((bucket_sum - expect).abs() < 1e-6, "buckets {bucket_sum} vs {expect}");
        }

        /// count() equals the number of stored points; the raw projection
        /// returns exactly the in-range points in ascending time order.
        #[test]
        fn raw_and_count_agree(points in points_strategy(), split_s in 1i64..3600) {
            let ix = load(&points);
            let split = split_s * 1_000_000_000;
            let before = ix
                .query("lms", &format!("SELECT v FROM m WHERE time < {split}"))
                .unwrap();
            let after = ix
                .query("lms", &format!("SELECT v FROM m WHERE time >= {split}"))
                .unwrap();
            let n_before: usize = before.series.iter().map(|s| s.values.len()).sum();
            let n_after: usize = after.series.iter().map(|s| s.values.len()).sum();
            prop_assert_eq!(n_before + n_after, points.len());
            if let Some(series) = before.series.first() {
                let times: Vec<i64> =
                    series.values.iter().map(|row| row[0].as_i64().unwrap()).collect();
                prop_assert!(times.windows(2).all(|w| w[0] < w[1]), "sorted: {times:?}");
                prop_assert!(times.iter().all(|&t| t < split));
            }
        }

        /// min ≤ mean ≤ max, and first/last match the range endpoints.
        #[test]
        fn aggregate_ordering(points in points_strategy()) {
            let ix = load(&points);
            let r = ix
                .query("lms", "SELECT min(v), mean(v), max(v), first(v), last(v) FROM m")
                .unwrap();
            let row = &r.series[0].values[0];
            let (min, mean, max) = (
                row[1].as_f64().unwrap(),
                row[2].as_f64().unwrap(),
                row[3].as_f64().unwrap(),
            );
            prop_assert!(min <= mean + 1e-9 && mean <= max + 1e-9, "{min} {mean} {max}");
            prop_assert_eq!(row[4].as_f64().unwrap(), points.first().unwrap().1);
            prop_assert_eq!(row[5].as_f64().unwrap(), points.last().unwrap().1);
        }
    }
}
