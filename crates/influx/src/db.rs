//! Databases and the embedded [`Influx`] handle.
//!
//! A [`Database`] owns the series of one logical database (the paper's
//! global database, plus optional per-user databases created by the
//! router's duplication feature). [`Influx`] bundles multiple databases
//! behind one thread-safe handle — the same object backs the embedded API
//! and the HTTP server.
//!
//! # Ingest concurrency
//!
//! Writers never take a storage-wide exclusive lock. The outer
//! `db name → Database` map is read-mostly (`RwLock` around an
//! [`Arc<Database>`] map: writes only when a database is created), and each
//! database partitions its series across [`DEFAULT_SHARDS`] lock-striped
//! shards selected by series-key hash. A batch write *stages* its parsed
//! points into per-shard append buffers (a brief mutex per touched shard)
//! and whichever writer wins a shard's `data` lock drains everything
//! staged there — N writers hammering one hot series never queue on a
//! series lock; they hand their points to the running drainer and return.
//! Read paths drain before reading, so every caller observes its own
//! completed writes.
//!
//! Lock order is `meta` → shard `data` → shard `pending` (ascending),
//! established in [`Database::create_and_write`] and
//! [`Database::enforce_retention`]; the
//! hot path takes a single shard lock and nothing else. Series are stored
//! as `Arc<Series>` so queries snapshot cheaply (clone the `Arc`s under a
//! shard read lock) while writers mutate in place through `Arc::make_mut`
//! — the copy-on-write clone only triggers when a query holds the same
//! series concurrently.

use crate::exec::{self, QueryResult};
use crate::query::{Condition, Statement, TimeValue};
use crate::storage::Series;
use lms_lineproto::{parse_batch, FieldValue, ParsedLine, Point, Precision};
use lms_rollup::{align_down, align_up, is_rollup_db, rollup_db_name, Tier, WindowAcc, TIERS};
use lms_tsm::{BlockEntry, Recovered, ScrubOutcome, Scrubber, SealedBlock, TsmConfig, TsmEngine};
use lms_util::digest::{bucket_of, owner_mask, point_hash, BucketDigest};
use lms_util::ring::HashRing;
use lms_util::{
    hash::fx_hash, Clock, Error, FxHashMap, FxHashSet, Result, Supervisor, SupervisorConfig,
    WorkerReport,
};
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::Entry;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default number of lock-striped series shards per database.
pub const DEFAULT_SHARDS: usize = 16;

/// Staged points a shard accumulates before a writer bothers draining it.
///
/// Applying a staged run costs O(run + overlap), where `overlap` is how far
/// back into the sorted column the run's oldest timestamp reaches. Hot
/// series written by concurrent batchers interleave timestamps, so *every*
/// run overlaps the recent tail — draining after each 200-line batch pays
/// that tail splice hundreds of times. Draining only once a shard holds a
/// few thousand points pays it once per big combined run instead, bounding
/// write amplification to O(1) splices per `DRAIN_BATCH_POINTS` points.
/// Reads are unaffected: every read path drains all shards first, so the
/// threshold trades only a bounded slice of staging memory (on the order
/// of a megabyte per backlogged shard), never visibility.
const DRAIN_BATCH_POINTS: usize = 8192;

/// Configuration of the persistent storage layer (one `lms-tsm` engine per
/// database, rooted at `data_dir/<db name>`). Absent entirely for the
/// memory-only mode that predates persistence.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Root directory; each database gets a subdirectory named after it.
    pub data_dir: PathBuf,
    /// Flush (seal heads to disk) once a database holds this many head
    /// points...
    pub flush_points: usize,
    /// ...or this much time has passed since the last flush, whichever
    /// comes first.
    pub flush_interval: Duration,
    /// Time-partition width of segment files (retention drops whole files).
    pub partition: Duration,
    /// Fsync the WAL on every write (durability over throughput).
    pub wal_fsync: bool,
    /// Compact once any partition accumulates this many segment files.
    pub compact_min_files: usize,
    /// WAL group-commit window: with `wal_fsync`, concurrent appends
    /// within this window share one fsync. Zero (together with a zero
    /// byte bound) restores the legacy one-fsync-per-append path.
    pub wal_group_commit: Duration,
    /// WAL group-commit size bound: commit early once this many staged
    /// bytes accumulate (`0` = no size bound).
    pub wal_group_commit_bytes: usize,
    /// Background integrity-scrub cadence: how often the storage worker
    /// re-verifies sealed segment CRCs. Zero disables scrubbing.
    pub scrub_interval: Duration,
    /// Byte budget per scrub pass; bounds the read-bandwidth the scrubber
    /// steals from queries. Zero disables scrubbing.
    pub scrub_rate_bytes: u64,
    /// WAL segment size: the active segment rotates (freezes) past this
    /// many bytes. Scrub verification is whole-file granular, so keep
    /// this at or below `scrub_rate_bytes` — a frozen WAL file larger
    /// than the pass budget makes every WAL-phase pass overshoot it.
    pub wal_segment_bytes: usize,
}

impl StorageConfig {
    /// Defaults: flush at 50k points or 10s, 2h partitions, fsync on
    /// rotation only, compact at 4 files, 2 ms / 1 MiB group commits,
    /// scrub 8 MiB per minute.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        StorageConfig {
            data_dir: data_dir.into(),
            flush_points: 50_000,
            flush_interval: Duration::from_secs(10),
            partition: Duration::from_secs(2 * 3600),
            wal_fsync: false,
            compact_min_files: 4,
            wal_group_commit: Duration::from_millis(2),
            wal_group_commit_bytes: 1024 * 1024,
            scrub_interval: Duration::from_secs(60),
            scrub_rate_bytes: 8 * 1024 * 1024,
            wal_segment_bytes: 4 * 1024 * 1024,
        }
    }

    fn tsm_config(&self, db: &str) -> TsmConfig {
        TsmConfig {
            partition_ns: self.partition.as_nanos().clamp(1, i64::MAX as u128) as i64,
            wal_fsync: self.wal_fsync,
            compact_min_files: self.compact_min_files.max(2),
            wal_group_commit_ms: self.wal_group_commit.as_millis().min(u64::MAX as u128) as u64,
            wal_group_commit_bytes: self.wal_group_commit_bytes,
            wal_segment_bytes: self.wal_segment_bytes.max(1),
            ..TsmConfig::new(self.data_dir.join(db))
        }
    }
}

/// Splits a sorted point run into contiguous sub-runs that neither
/// straddle a segment-file time partition (retention drops whole files)
/// nor an epoch-aligned block span (a `GROUP BY time(w)` window with `w` a
/// multiple of the span fully contains every interior block, so the
/// executor answers it from the block summary without decoding).
fn partition_runs<'a>(
    engine: &'a TsmEngine,
    points: &'a [(i64, FieldValue)],
) -> impl Iterator<Item = &'a [(i64, FieldValue)]> {
    points.chunk_by(move |a, b| {
        engine.partition_of(a.0) == engine.partition_of(b.0)
            && engine.span_of(a.0) == engine.span_of(b.0)
    })
}

/// A database name that is safe to use verbatim as a directory name (and
/// to round-trip back from one at startup). Other names fall back to
/// memory-only storage.
fn is_safe_db_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Aggregate storage gauges, served under `/stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StorageStats {
    /// Points in mutable heads (not yet sealed).
    pub head_points: u64,
    /// Point versions in sealed blocks.
    pub sealed_points: u64,
    /// Sealed block count across all columns.
    pub sealed_blocks: u64,
    /// Compressed bytes across sealed blocks.
    pub sealed_bytes: u64,
    /// Bytes in write-ahead logs.
    pub wal_bytes: u64,
    /// Segment files on disk.
    pub segment_files: u64,
    /// Bytes in segment files.
    pub segment_bytes: u64,
    /// Major compactions since open.
    pub compactions: u64,
    /// WAL records replayed at the last open.
    pub recovered_records: u64,
    /// True when any database's engine is in degraded read-only mode
    /// (`ENOSPC` on WAL append or segment write).
    pub degraded: bool,
    /// WAL record groups committed since open.
    pub group_commits: u64,
    /// WAL fsync calls since open.
    pub wal_fsyncs: u64,
    /// EWMA of points per committed WAL group.
    pub batched_points_per_commit: f64,
    /// Points currently staged in shard append buffers, not yet drained
    /// into series heads.
    pub shard_buffer_depth: u64,
    /// Bytes re-verified by the background integrity scrubber since open.
    pub scrubbed_bytes: u64,
    /// CRC-failed frames observed (at segment load or by the scrubber).
    pub corrupt_frames: u64,
    /// Segment files quarantined after failing verification.
    pub quarantined_segments: u64,
    /// Time ranges currently marked damaged and awaiting repair.
    pub damaged_ranges: u64,
}

impl StorageStats {
    /// Sealed compression ratio: in-memory representation bytes per
    /// compressed byte (`0` when nothing is sealed).
    pub fn compression_ratio(&self) -> f64 {
        if self.sealed_bytes == 0 {
            return 0.0;
        }
        let raw = self.sealed_points * std::mem::size_of::<(i64, FieldValue)>() as u64;
        raw as f64 / self.sealed_bytes as f64
    }

    fn add(&mut self, other: StorageStats) {
        self.head_points += other.head_points;
        self.sealed_points += other.sealed_points;
        self.sealed_blocks += other.sealed_blocks;
        self.sealed_bytes += other.sealed_bytes;
        self.wal_bytes += other.wal_bytes;
        self.segment_files += other.segment_files;
        self.segment_bytes += other.segment_bytes;
        self.compactions += other.compactions;
        self.recovered_records += other.recovered_records;
        self.degraded |= other.degraded;
        self.group_commits += other.group_commits;
        self.wal_fsyncs += other.wal_fsyncs;
        // An EWMA does not sum meaningfully; report the busiest database.
        self.batched_points_per_commit =
            self.batched_points_per_commit.max(other.batched_points_per_commit);
        self.shard_buffer_depth += other.shard_buffer_depth;
        self.scrubbed_bytes += other.scrubbed_bytes;
        self.corrupt_frames += other.corrupt_frames;
        self.quarantined_segments += other.quarantined_segments;
        self.damaged_ranges += other.damaged_ranges;
    }
}

/// Options for a write request.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    /// Precision of timestamps in the batch (default nanoseconds).
    pub precision: Precision,
}

/// Outcome of writing a batch: how many points landed, how many lines were
/// rejected (with the first error kept for reporting).
#[derive(Debug, Default)]
pub struct WriteOutcome {
    /// Accepted points.
    pub written: usize,
    /// Rejected lines.
    pub rejected: usize,
    /// First rejection, if any (line number, message).
    pub first_error: Option<(usize, String)>,
}

/// One lock stripe: a slice of the series keyed by canonical series key.
#[derive(Debug, Default)]
struct Shard {
    series: FxHashMap<String, Arc<Series>>,
}

/// One staged point: a field-name range into the arena, timestamp, value.
#[derive(Debug)]
struct PendingPoint {
    field: (u32, u32),
    ts: i64,
    value: FieldValue,
}

/// A staging buffer of parsed points bound for one shard. Series keys and
/// field names live in a single string arena (`text`), so staging a point
/// for a known series allocates nothing in steady state — buffers are
/// recycled with their capacity intact.
#[derive(Debug, Default)]
struct PendingBuf {
    /// Arena holding series keys and field names back to back.
    text: String,
    /// `((key range in text), (point range in points))`: one run per
    /// maximal stretch of consecutive same-series lines.
    runs: Vec<((u32, u32), (u32, u32))>,
    points: Vec<PendingPoint>,
}

impl PendingBuf {
    fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    fn point_count(&self) -> usize {
        self.points.len()
    }

    fn clear(&mut self) {
        self.text.clear();
        self.runs.clear();
        self.points.clear();
    }

    /// Stages one field point of `key`; consecutive pushes for the same
    /// series share one run (and one copy of the key).
    fn push(&mut self, key: &str, field: &str, ts: i64, value: FieldValue) {
        let same_key = self
            .runs
            .last()
            .is_some_and(|((ks, ke), _)| &self.text[*ks as usize..*ke as usize] == key);
        if !same_key {
            let ks = self.text.len() as u32;
            self.text.push_str(key);
            let ke = self.text.len() as u32;
            let ps = self.points.len() as u32;
            self.runs.push(((ks, ke), (ps, ps)));
        }
        let fs = self.text.len() as u32;
        self.text.push_str(field);
        let fe = self.text.len() as u32;
        self.points.push(PendingPoint { field: (fs, fe), ts, value });
        self.runs.last_mut().unwrap().1 .1 = self.points.len() as u32;
    }

    /// Moves every staged point from `other` into `self`, rebasing arena
    /// offsets; `other` is left cleared with its capacity intact.
    fn absorb(&mut self, other: &mut PendingBuf) {
        let text_base = self.text.len() as u32;
        let points_base = self.points.len() as u32;
        self.text.push_str(&other.text);
        self.points.extend(other.points.drain(..).map(|p| PendingPoint {
            field: (p.field.0 + text_base, p.field.1 + text_base),
            ts: p.ts,
            value: p.value,
        }));
        self.runs.extend(other.runs.drain(..).map(|((ks, ke), (ps, pe))| {
            ((ks + text_base, ke + text_base), (ps + points_base, pe + points_base))
        }));
        other.text.clear();
    }
}

/// A staged point whose series vanished between staging and drain (a
/// retention sweep GC'd it). Re-created under the `meta` lock.
struct StagedLeftover {
    key: String,
    field: String,
    ts: i64,
    value: FieldValue,
}

/// One lock stripe plus its append buffer for batched writes.
///
/// Writers stage parsed points into `pending` under a brief mutex and then
/// *try* to drain: whoever wins the shard's `data` write lock applies every
/// staged point (its own and any concurrent writer's) in one pass, so N hot
/// writers never queue on the series map — they hand off to the current
/// drainer and return. Points left pending when no drainer is running are
/// folded in by the next drain, and every read path drains first, so reads
/// always observe their own completed writes.
#[derive(Debug, Default)]
struct ShardSlot {
    data: RwLock<Shard>,
    pending: Mutex<PendingBuf>,
    /// Exact staged-point count (only mutated under `pending`); lock-free
    /// loads serve as fast-path skip hints and the depth gauge.
    pending_points: AtomicUsize,
}

thread_local! {
    /// Per-thread scratch for [`Database::write_parsed_batch`]: key buffers
    /// and per-shard staging areas reused across batches, so the steady
    /// state of the hot write path performs zero allocations.
    static INGEST_SCRATCH: std::cell::RefCell<IngestScratch> =
        std::cell::RefCell::new(IngestScratch::default());
}

#[derive(Default)]
struct IngestScratch {
    key_buf: String,
    prev_key: String,
    stages: Vec<PendingBuf>,
    touched: Vec<usize>,
}

/// Cross-shard metadata, guarded by its own lock (taken *before* any shard
/// lock — see the module docs for the lock order).
#[derive(Debug, Default)]
struct Meta {
    /// measurement → series keys in first-write order. Raw query results
    /// key rows by `(timestamp, series index)`, so preserving this order
    /// keeps results byte-identical to the single-lock engine.
    measurements: FxHashMap<String, Vec<String>>,
    retention: Option<Duration>,
}

/// Executor tuning knobs, per database. Both default on; tests and the
/// equivalence suite flip them to force the full-decode reference path
/// (`cargo test` shares one process, so these are runtime switches rather
/// than compile-time features).
#[derive(Debug, Clone, Copy)]
pub struct QueryTuning {
    /// Answer aggregates over fully-covered sealed blocks from their
    /// pre-computed summaries instead of decoding.
    pub use_summaries: bool,
    /// Scan the columns of a large group on a small worker pool.
    pub parallel_scan: bool,
}

impl Default for QueryTuning {
    fn default() -> Self {
        QueryTuning { use_summaries: true, parallel_scan: true }
    }
}

/// One logical database with lock-striped series storage and an optional
/// persistent engine beneath it.
#[derive(Debug)]
pub struct Database {
    /// The stripes; length is a power of two so shard selection is a mask.
    shards: Box<[ShardSlot]>,
    meta: RwLock<Meta>,
    /// Persistence, when configured. The in-memory layer is always the
    /// source of truth for reads; the engine makes it durable.
    engine: Option<Arc<TsmEngine>>,
    /// Blocks sealed in memory whose segment write failed: retried by the
    /// next flush so the on-disk state catches up (the WAL still covers
    /// them in the meantime).
    unflushed: Mutex<Vec<BlockEntry>>,
    /// [`QueryTuning::use_summaries`].
    use_summaries: AtomicBool,
    /// [`QueryTuning::parallel_scan`].
    parallel_scan: AtomicBool,
    /// True when this database feeds rollup tiers: flushes then record the
    /// time ranges they sealed in [`Self::rollup_dirty`] so the next rollup
    /// pass recomputes exactly the touched windows.
    rollup_tracked: AtomicBool,
    /// Closed `[min_ts, max_ts]` ranges sealed since the last rollup pass.
    rollup_dirty: Mutex<Vec<(i64, i64)>>,
    /// Rollup watermark: every raw point with `ts < watermark` has been
    /// incorporated into the rollup tiers (`i64::MIN` = no rollups yet).
    /// Recovered from the 1m tier database at startup.
    rollup_watermark: AtomicI64,
    /// Ceiling on retention cutoffs: [`Self::enforce_retention`] never
    /// evicts at or past this timestamp (`i64::MAX` = unclamped). Set from
    /// the rollup watermark so raw data outlives its un-rolled tail and the
    /// tier window it straddles.
    retention_clamp: AtomicI64,
    /// High-water mark of applied retention cutoffs: raw points below this
    /// may already be gone, so rollup recomputation must never touch
    /// windows starting under it (a late backfill would otherwise replace
    /// an exact tier row with a partial recompute).
    raw_drop_cutoff: AtomicI64,
    /// Incremental CRC-scrub cursor over this database's segment files.
    scrubber: Mutex<Scrubber>,
}

impl Default for Database {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl Database {
    /// An empty database with no retention limit and the default shard
    /// count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty database with `shards` lock stripes (rounded up to a power
    /// of two; `1` reproduces the old single-lock write path).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Database {
            shards: (0..n).map(|_| ShardSlot::default()).collect(),
            meta: RwLock::new(Meta::default()),
            engine: None,
            unflushed: Mutex::new(Vec::new()),
            use_summaries: AtomicBool::new(true),
            parallel_scan: AtomicBool::new(true),
            rollup_tracked: AtomicBool::new(false),
            rollup_dirty: Mutex::new(Vec::new()),
            rollup_watermark: AtomicI64::new(i64::MIN),
            retention_clamp: AtomicI64::new(i64::MAX),
            raw_drop_cutoff: AtomicI64::new(i64::MIN),
            scrubber: Mutex::new(Scrubber::new()),
        }
    }

    /// The executor tuning knobs currently in effect.
    pub fn query_tuning(&self) -> QueryTuning {
        QueryTuning {
            use_summaries: self.use_summaries.load(Ordering::Relaxed),
            parallel_scan: self.parallel_scan.load(Ordering::Relaxed),
        }
    }

    /// Replaces the executor tuning knobs (takes effect on the next query).
    pub fn set_query_tuning(&self, tuning: QueryTuning) {
        self.use_summaries.store(tuning.use_summaries, Ordering::Relaxed);
        self.parallel_scan.store(tuning.parallel_scan, Ordering::Relaxed);
    }

    /// Opens (or creates) a persistent database: sealed blocks are loaded
    /// from segment files and acknowledged-but-unflushed batches are
    /// replayed from the WAL, so the result serves the same queries as the
    /// pre-restart instance.
    pub fn open_persistent(shards: usize, cfg: TsmConfig) -> Result<Database> {
        let (engine, recovered) = TsmEngine::open(cfg)?;
        let mut db = Database::with_shards(shards);
        db.engine = Some(Arc::new(engine));
        db.install_recovered(recovered);
        Ok(db)
    }

    /// The persistent engine, when this database has one.
    pub fn engine(&self) -> Option<&Arc<TsmEngine>> {
        self.engine.as_ref()
    }

    /// Installs recovered state: sealed blocks first (ascending generation,
    /// which re-creates series in their pre-crash first-write order), then
    /// the WAL replay on top (its newer values win over sealed duplicates
    /// because the head outranks every block).
    fn install_recovered(&self, recovered: Recovered) {
        for entry in recovered.blocks {
            let mut meta = self.meta.write();
            let mut shard = self.shard_of(&entry.series_key).data.write();
            let series = match shard.series.entry(entry.series_key.clone()) {
                Entry::Occupied(slot) => Arc::make_mut(slot.into_mut()),
                Entry::Vacant(slot) => {
                    meta.measurements
                        .entry(entry.measurement.clone())
                        .or_default()
                        .push(entry.series_key.clone());
                    Arc::make_mut(
                        slot.insert(Arc::new(Series::new(&entry.measurement, &entry.tags))),
                    )
                }
            };
            series.field_mut_or_create(&entry.field).push_sealed(Arc::new(entry.block));
        }
        let mut key_buf = String::with_capacity(64);
        for record in &recovered.wal_records {
            // WAL batches are normalized at append time: every line carries
            // an explicit nanosecond timestamp, so replay is deterministic.
            for line in &parse_batch(&record.batch).lines {
                let ts = line.timestamp.unwrap_or(0);
                self.write_parsed(line, ts, &mut key_buf);
            }
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, key: &str) -> usize {
        (fx_hash(key.as_bytes()) as usize) & (self.shards.len() - 1)
    }

    fn shard_of(&self, key: &str) -> &ShardSlot {
        &self.shards[self.shard_index(key)]
    }

    /// Sets the retention window (points older than `now - retention` are
    /// dropped by [`enforce_retention`](Self::enforce_retention)).
    pub fn set_retention(&self, retention: Option<Duration>) {
        self.meta.write().retention = retention;
    }

    /// Marks this database as a rollup source: flushes record the sealed
    /// time ranges so rollup passes can recompute the touched windows.
    pub fn set_rollup_tracked(&self, tracked: bool) {
        self.rollup_tracked.store(tracked, Ordering::Release);
    }

    /// The rollup watermark: every raw point with `ts` below it is covered
    /// by the rollup tiers. `None` before the first rollup pass.
    pub fn rollup_watermark(&self) -> Option<i64> {
        match self.rollup_watermark.load(Ordering::Acquire) {
            i64::MIN => None,
            wm => Some(wm),
        }
    }

    /// Installs a recovered or freshly advanced rollup watermark.
    pub fn set_rollup_watermark(&self, watermark: i64) {
        self.rollup_watermark.fetch_max(watermark, Ordering::AcqRel);
    }

    /// Clamps future retention cutoffs to at most `floor` ([`i64::MAX`] to
    /// unclamp): the rollup layer pins this to the last tier-complete
    /// boundary so raw eviction cannot outrun rollup coverage.
    pub fn set_retention_clamp(&self, floor: i64) {
        self.retention_clamp.store(floor, Ordering::Release);
    }

    /// The highest retention cutoff ever applied to this database
    /// (`i64::MIN` before the first eviction).
    pub fn raw_drop_cutoff(&self) -> i64 {
        self.raw_drop_cutoff.load(Ordering::Acquire)
    }

    /// Fast path: the series exists — one shard write lock, zero
    /// allocations. Returns `false` when the series is missing.
    fn try_write_fields<'f>(
        &self,
        key: &str,
        ts: i64,
        fields: impl Iterator<Item = (&'f str, &'f FieldValue)>,
    ) -> bool {
        let mut shard = self.shard_of(key).data.write();
        let Some(series) = shard.series.get_mut(key) else { return false };
        let series = Arc::make_mut(series);
        for (field, value) in fields {
            series.insert(field, ts, value.clone());
        }
        true
    }

    /// Slow path: the series may need creating. Lock order is `meta` →
    /// shard, and the presence check is re-run under both locks because
    /// another writer can create the series between a failed fast path and
    /// here. The series map and the measurements index are each updated in
    /// a single entry-API pass.
    fn create_and_write<'f>(
        &self,
        key: &str,
        measurement: &str,
        tags: &[(String, String)],
        ts: i64,
        fields: impl Iterator<Item = (&'f str, &'f FieldValue)>,
    ) {
        let mut meta = self.meta.write();
        let mut shard = self.shard_of(key).data.write();
        let series = match shard.series.entry(key.to_string()) {
            Entry::Occupied(slot) => Arc::make_mut(slot.into_mut()),
            Entry::Vacant(slot) => {
                meta.measurements
                    .entry(measurement.to_string())
                    .or_default()
                    .push(key.to_string());
                Arc::make_mut(slot.insert(Arc::new(Series::new(measurement, tags))))
            }
        };
        for (field, value) in fields {
            series.insert(field, ts, value.clone());
        }
    }

    /// Writes one already-parsed point.
    pub fn write_point(&self, point: &lms_lineproto::Point, default_ts: i64) {
        let key = point.series_key();
        let ts = point.timestamp().unwrap_or(default_ts);
        let fields = || point.fields().iter().map(|(k, v)| (k.as_str(), v));
        if !self.try_write_fields(&key, ts, fields()) {
            self.create_and_write(&key, point.measurement(), point.tags(), ts, fields());
        }
    }

    /// Writes one parsed line without materializing an owned
    /// [`Point`](lms_lineproto::Point).
    ///
    /// `key_buf` is caller-provided scratch reused across a batch; for
    /// series the database has already seen, the write performs no
    /// allocation at all (the buffer is rewritten in place and field values
    /// land directly in the columns).
    pub fn write_parsed(&self, line: &ParsedLine<'_>, ts: i64, key_buf: &mut String) {
        key_buf.clear();
        line.series_key_into(key_buf);
        let fields = || line.fields.iter().map(|(k, v)| (k.as_ref(), v));
        if !self.try_write_fields(key_buf, ts, fields()) {
            let tags = line.canonical_tags();
            self.create_and_write(key_buf, line.measurement.as_ref(), &tags, ts, fields());
        }
    }

    /// Writes a whole parsed batch through the per-shard append buffers:
    /// points are staged per shard (allocation-free in steady state, one
    /// brief mutex per touched shard) and drained into the series maps in
    /// `DRAIN_BATCH_POINTS`-sized gulps by whichever writer finds a shard
    /// both backlogged and free — concurrent writers to a hot series hand
    /// their points to the running drainer instead of queueing on its
    /// lock. Returns the number of points written.
    ///
    /// Visibility: a point may remain staged briefly after this returns,
    /// but every read path drains before reading, so callers always see
    /// their own completed writes.
    pub fn write_parsed_batch(
        &self,
        lines: &[ParsedLine<'_>],
        opts: WriteOptions,
        default_ts: i64,
    ) -> usize {
        if lines.is_empty() {
            return 0;
        }
        INGEST_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            if scratch.stages.len() < self.shards.len() {
                scratch.stages.resize_with(self.shards.len(), PendingBuf::default);
            }
            scratch.prev_key.clear();
            let mut prev_idx = usize::MAX;
            let mut written = 0usize;
            for line in lines {
                let ts =
                    line.timestamp.map(|t| opts.precision.to_nanos(t)).unwrap_or(default_ts);
                scratch.key_buf.clear();
                line.series_key_into(&mut scratch.key_buf);
                // Hot-series batches repeat one key: skip the rehash and
                // existence check for consecutive identical keys.
                let idx = if prev_idx != usize::MAX && scratch.key_buf == scratch.prev_key {
                    prev_idx
                } else {
                    let idx = self.shard_index(&scratch.key_buf);
                    self.ensure_series(idx, &scratch.key_buf, line);
                    std::mem::swap(&mut scratch.prev_key, &mut scratch.key_buf);
                    prev_idx = idx;
                    idx
                };
                let stage = &mut scratch.stages[idx];
                if stage.is_empty() {
                    scratch.touched.push(idx);
                }
                for (field, value) in &line.fields {
                    stage.push(&scratch.prev_key, field.as_ref(), ts, value.clone());
                }
                written += 1;
            }
            for &idx in &scratch.touched {
                let slot = &self.shards[idx];
                {
                    let mut pending = slot.pending.lock();
                    slot.pending_points
                        .fetch_add(scratch.stages[idx].point_count(), Ordering::Release);
                    pending.absorb(&mut scratch.stages[idx]);
                }
                // Drain only once the shard's backlog is worth a splice
                // (see DRAIN_BATCH_POINTS) and the shard is free; otherwise
                // the current lock holder or the next reader picks this up.
                if slot.pending_points.load(Ordering::Acquire) >= DRAIN_BATCH_POINTS {
                    if let Some(mut shard) = slot.data.try_write() {
                        let leftovers = Self::drain_locked(slot, &mut shard);
                        drop(shard);
                        if !leftovers.is_empty() {
                            let mut meta = self.meta.write();
                            self.install_leftovers(&mut meta, idx, leftovers);
                        }
                    }
                }
            }
            scratch.touched.clear();
            written
        })
    }

    /// Makes sure the series behind `key` exists (so the drain path almost
    /// never sees a missing series, and `series_count` is exact without a
    /// drain). Lock order `meta` → shard.
    fn ensure_series(&self, idx: usize, key: &str, line: &ParsedLine<'_>) {
        if self.shards[idx].data.read().series.contains_key(key) {
            return;
        }
        let tags = line.canonical_tags();
        let mut meta = self.meta.write();
        let mut shard = self.shards[idx].data.write();
        if let Entry::Vacant(slot) = shard.series.entry(key.to_string()) {
            meta.measurements
                .entry(line.measurement.to_string())
                .or_default()
                .push(key.to_string());
            slot.insert(Arc::new(Series::new(line.measurement.as_ref(), &tags)));
        }
    }

    /// Drains every staged point of one shard into its series map, holding
    /// the shard's `data` write lock (passed in). Loops until the pending
    /// buffer is observed empty, so points staged *while* this drainer was
    /// applying a previous swap are folded in before the lock is released.
    fn drain_locked(slot: &ShardSlot, shard: &mut Shard) -> Vec<StagedLeftover> {
        let mut leftovers = Vec::new();
        let mut work = PendingBuf::default();
        loop {
            {
                let mut pending = slot.pending.lock();
                if pending.is_empty() {
                    // Hand the warm (larger) buffer back for the next batch.
                    if pending.text.capacity() < work.text.capacity() {
                        std::mem::swap(&mut *pending, &mut work);
                    }
                    break;
                }
                slot.pending_points.fetch_sub(pending.point_count(), Ordering::Release);
                std::mem::swap(&mut *pending, &mut work);
            }
            Self::apply_pending(shard, &work, &mut leftovers);
            work.clear();
        }
        leftovers
    }

    /// Applies one swapped-out staging buffer to the shard: consecutive
    /// same-series runs share a single map lookup and copy-on-write clone.
    fn apply_pending(shard: &mut Shard, buf: &PendingBuf, leftovers: &mut Vec<StagedLeftover>) {
        let text = buf.text.as_str();
        let key_of =
            |r: &((u32, u32), (u32, u32))| &text[r.0 .0 as usize..r.0 .1 as usize];
        let mut i = 0;
        while i < buf.runs.len() {
            let key = key_of(&buf.runs[i]);
            let mut j = i + 1;
            while j < buf.runs.len() && key_of(&buf.runs[j]) == key {
                j += 1;
            }
            match shard.series.get_mut(key) {
                Some(series) => Self::apply_runs(Arc::make_mut(series), buf, i, j),
                None => {
                    // Retention GC'd the series after staging: carry the
                    // points out; the caller re-creates it under `meta`.
                    for r in &buf.runs[i..j] {
                        for p in &buf.points[r.1 .0 as usize..r.1 .1 as usize] {
                            leftovers.push(StagedLeftover {
                                key: key.to_string(),
                                field: text[p.field.0 as usize..p.field.1 as usize]
                                    .to_string(),
                                ts: p.ts,
                                value: p.value.clone(),
                            });
                        }
                    }
                }
            }
            i = j;
        }
    }

    /// Applies runs `[i, j)` (all the same series) to one series: points
    /// are grouped per field, sorted by timestamp (stable, so staging
    /// order breaks ties — last write wins), and merged into the column
    /// in one pass.
    fn apply_runs(series: &mut Series, buf: &PendingBuf, i: usize, j: usize) {
        let text = buf.text.as_str();
        let mut per_field: Vec<(&str, Vec<(i64, FieldValue)>)> = Vec::new();
        for r in &buf.runs[i..j] {
            for p in &buf.points[r.1 .0 as usize..r.1 .1 as usize] {
                let field = &text[p.field.0 as usize..p.field.1 as usize];
                match per_field.iter_mut().find(|(f, _)| *f == field) {
                    Some((_, v)) => v.push((p.ts, p.value.clone())),
                    None => per_field.push((field, vec![(p.ts, p.value.clone())])),
                }
            }
        }
        for (field, mut run) in per_field {
            run.sort_by_key(|&(t, _)| t);
            series.field_mut_or_create(field).insert_many(&run);
        }
    }

    /// Re-creates series that were GC'd while their points sat staged. The
    /// series key is by construction a valid line-protocol series prefix,
    /// so it round-trips through the parser to recover measurement and
    /// canonical tags. Caller holds `meta` (lock order `meta` → shard).
    fn install_leftovers(
        &self,
        meta: &mut Meta,
        idx: usize,
        leftovers: Vec<StagedLeftover>,
    ) {
        let mut shard = self.shards[idx].data.write();
        for l in leftovers {
            match shard.series.entry(l.key) {
                Entry::Occupied(mut slot) => {
                    Arc::make_mut(slot.get_mut()).insert(&l.field, l.ts, l.value);
                }
                Entry::Vacant(slot) => {
                    let probe = format!("{} x=0", slot.key());
                    let Ok(line) = lms_lineproto::parse_line(&probe) else { continue };
                    let tags = line.canonical_tags();
                    meta.measurements
                        .entry(line.measurement.to_string())
                        .or_default()
                        .push(slot.key().clone());
                    let mut series = Series::new(line.measurement.as_ref(), &tags);
                    series.insert(&l.field, l.ts, l.value);
                    slot.insert(Arc::new(series));
                }
            }
        }
    }

    /// Drains one shard's staged points if any (read-path entry point).
    fn drain_shard(&self, idx: usize) {
        let slot = &self.shards[idx];
        if slot.pending_points.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut shard = slot.data.write();
        let leftovers = Self::drain_locked(slot, &mut shard);
        drop(shard);
        if !leftovers.is_empty() {
            let mut meta = self.meta.write();
            self.install_leftovers(&mut meta, idx, leftovers);
        }
    }

    /// Drains every shard's staged points: called by read paths before
    /// they take `meta`, so reads observe all completed writes. Must not
    /// be called with `meta` or any shard lock held (drain may need
    /// `meta` → shard for leftovers).
    fn drain_all_pending(&self) {
        for idx in 0..self.shards.len() {
            self.drain_shard(idx);
        }
    }

    /// Snapshots all series of a measurement, in first-write order.
    ///
    /// The returned `Arc`s are consistent point-in-time views: a writer
    /// updating the same series afterwards copies it (`Arc::make_mut`)
    /// instead of mutating the snapshot.
    pub fn series_of(&self, measurement: &str) -> Vec<Arc<Series>> {
        // Drain before locking meta so the snapshot includes every staged
        // point (and because draining may itself need the meta lock).
        self.drain_all_pending();
        let meta = self.meta.read();
        let Some(keys) = meta.measurements.get(measurement) else {
            return Vec::new();
        };
        keys.iter()
            .filter_map(|k| self.shard_of(k).data.read().series.get(k).cloned())
            .collect()
    }

    /// All measurement names, sorted.
    pub fn measurement_names(&self) -> Vec<String> {
        let meta = self.meta.read();
        let mut names: Vec<String> = meta.measurements.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Sorted, deduplicated tag keys across all series of a measurement
    /// (the label set of a metric, in Prometheus terms). Empty when the
    /// measurement is unknown.
    pub fn tag_keys(&self, measurement: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .series_of(measurement)
            .iter()
            .flat_map(|s| s.tags().iter().map(|(k, _)| k.clone()))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Total series count. Exact without draining: series are registered
    /// eagerly at write time, before their points are staged.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(|s| s.data.read().series.len()).sum()
    }

    /// Total stored points.
    pub fn point_count(&self) -> usize {
        self.drain_all_pending();
        self.shards
            .iter()
            .map(|s| s.data.read().series.values().map(|s| s.point_count()).sum::<usize>())
            .sum()
    }

    /// Points currently in mutable heads (the flush trigger gauge).
    pub fn head_point_count(&self) -> usize {
        self.drain_all_pending();
        self.shards
            .iter()
            .map(|s| {
                s.data
                    .read()
                    .series
                    .values()
                    .map(|series| {
                        series
                            .field_names()
                            .filter_map(|f| series.field(f))
                            .map(|c| c.head_len())
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            })
            .sum()
    }

    /// Series keys in flush order: measurements sorted by name, keys in
    /// first-write order within each. Sealing in a deterministic order
    /// keeps generation numbers aligned with first-write order, so recovery
    /// (which installs blocks by ascending generation) rebuilds the
    /// measurement index in the same order queries saw before the restart.
    fn keys_in_flush_order(&self) -> Vec<String> {
        let meta = self.meta.read();
        let mut names: Vec<&String> = meta.measurements.keys().collect();
        names.sort_unstable();
        names.iter().flat_map(|m| meta.measurements[*m].iter().cloned()).collect()
    }

    /// Flushes every mutable head to disk: seals heads into compressed
    /// blocks, writes them to segment files, then checkpoints (deletes) the
    /// WAL segments they cover. Returns the number of blocks sealed.
    ///
    /// Crash/fault behaviour: the WAL is rotated before anything is
    /// sealed, so on any failure the log still covers every point; blocks
    /// already sealed in memory are kept in [`Self::unflushed`] and
    /// re-written by the next flush.
    pub fn flush_storage(&self) -> Result<usize> {
        let Some(engine) = &self.engine else { return Ok(0) };
        let mut session = engine.begin_flush()?;
        // Drain AFTER rotating the WAL: any point staged before its WAL
        // record landed in a now-frozen segment is applied (and sealed)
        // below, so checkpointing those segments loses nothing. Points
        // whose records land in the new active segment may be sealed *and*
        // replayed — replay is idempotent.
        self.drain_all_pending();
        let mut entries = std::mem::take(&mut *self.unflushed.lock());
        for key in self.keys_in_flush_order() {
            let mut shard = self.shard_of(&key).data.write();
            let Some(series) = shard.series.get_mut(&key) else { continue };
            let series = Arc::make_mut(series);
            let measurement = series.measurement().to_string();
            let tags = series.tags().to_vec();
            for (field, col) in series.fields_mut() {
                if col.head().is_empty() {
                    continue;
                }
                // Seal one block per time partition (the head is sorted, so
                // partitions are contiguous runs): segment files then hold
                // only one partition's data and retention can unlink them
                // whole.
                let head = col.take_head();
                for run in partition_runs(engine, &head) {
                    let block = Arc::new(SealedBlock::seal(engine.next_gen(), run));
                    col.push_sealed(block.clone());
                    entries.push(BlockEntry {
                        series_key: key.clone(),
                        measurement: measurement.clone(),
                        tags: tags.clone(),
                        field: field.to_string(),
                        block: (*block).clone(),
                    });
                }
            }
        }
        let sealed = entries.len();
        if let Err(e) = session.write(&entries) {
            *self.unflushed.lock() = entries;
            return Err(e);
        }
        session.commit()?;
        if self.rollup_tracked.load(Ordering::Acquire) && !entries.is_empty() {
            // Record what this flush sealed; the next rollup pass recomputes
            // every tier window these ranges touch (exact under backfill —
            // recomputation reads the full column, not just the new blocks).
            let mut dirty = self.rollup_dirty.lock();
            for e in &entries {
                dirty.push((e.block.min_ts, e.block.max_ts));
            }
        }
        Ok(sealed)
    }

    /// Claims the sealed-range backlog for a rollup pass. Call
    /// [`Self::restore_rollup_dirty`] if the pass fails so no range is lost.
    pub fn take_rollup_dirty(&self) -> Vec<(i64, i64)> {
        std::mem::take(&mut *self.rollup_dirty.lock())
    }

    /// Returns claimed sealed ranges after a failed rollup pass.
    pub fn restore_rollup_dirty(&self, ranges: Vec<(i64, i64)>) {
        self.rollup_dirty.lock().extend(ranges);
    }

    /// Major compaction: merges every column's sealed blocks into one
    /// (dropping overwritten versions and retention-floored points),
    /// rewrites all segment files, and deletes the old ones. Returns the
    /// number of blocks written.
    pub fn compact_storage(&self) -> Result<usize> {
        let Some(engine) = &self.engine else { return Ok(0) };
        let mut session = engine.begin_rewrite();
        let mut entries: Vec<BlockEntry> = Vec::new();
        // (series key, field, new sealed layer) to install after a durable
        // write; an empty layer means every sealed point had expired.
        let mut installs: Vec<(String, String, Vec<Arc<SealedBlock>>)> = Vec::new();
        for key in self.keys_in_flush_order() {
            let shard = self.shard_of(&key).data.read();
            let Some(series) = shard.series.get(&key) else { continue };
            let measurement = series.measurement().to_string();
            let tags = series.tags().to_vec();
            for field in series.field_names() {
                let Some(col) = series.field(field) else { continue };
                let blocks = col.sealed();
                if blocks.is_empty() {
                    continue;
                }
                let entry = |block: SealedBlock| BlockEntry {
                    series_key: key.clone(),
                    measurement: measurement.clone(),
                    tags: tags.clone(),
                    field: field.to_string(),
                    block,
                };
                let partition_pure = blocks.iter().all(|b| {
                    engine.partition_of(b.min_ts) == engine.partition_of(b.max_ts)
                });
                if blocks.len() == 1 && col.floor().is_none() && partition_pure {
                    // Already compact: carry the block over verbatim.
                    entries.push(entry((*blocks[0]).clone()));
                    continue;
                }
                // Merge all versions, newest generation wins, drop points
                // hidden by the retention floor.
                let floor = col.floor().unwrap_or(i64::MIN);
                let mut versions: Vec<(i64, u64, FieldValue)> = blocks
                    .iter()
                    .flat_map(|b| {
                        b.decode().into_iter().map(move |(t, v)| (t, b.gen, v))
                    })
                    .filter(|&(t, _, _)| t >= floor)
                    .collect();
                versions.sort_by_key(|&(t, g, _)| (t, g));
                let mut merged: Vec<(i64, FieldValue)> = Vec::with_capacity(versions.len());
                for (t, _, v) in versions {
                    match merged.last_mut() {
                        Some(last) if last.0 == t => last.1 = v,
                        _ => merged.push((t, v)),
                    }
                }
                if merged.is_empty() {
                    // Everything expired: drop the sealed layer entirely.
                    installs.push((key.clone(), field.to_string(), Vec::new()));
                    continue;
                }
                // One merged block per partition (same reasoning as flush);
                // they share the max source generation — they never overlap
                // each other, so relative order among them is irrelevant.
                let gen = blocks.iter().map(|b| b.gen).max().unwrap_or(0);
                let mut layer = Vec::new();
                for run in partition_runs(engine, &merged) {
                    let block = Arc::new(SealedBlock::seal(gen, run));
                    entries.push(entry((*block).clone()));
                    layer.push(block);
                }
                installs.push((key.clone(), field.to_string(), layer));
            }
        }
        let written = entries.len();
        session.write(&entries)?;
        // Install the merged blocks in memory before deleting old files:
        // if the deletes fail, disk merely holds redundant versions that
        // last-write-wins hides at the next open.
        for (key, field, layer) in installs {
            let mut shard = self.shard_of(&key).data.write();
            let Some(series) = shard.series.get_mut(&key) else { continue };
            let series = Arc::make_mut(series);
            series.field_mut_or_create(&field).set_sealed(layer);
        }
        session.commit()?;
        Ok(written)
    }

    /// Runs one budgeted pass of the background integrity scrubber:
    /// re-verifies sealed segment CRCs (and frozen WAL segments at the end
    /// of each full cycle), quarantines any file that fails, and replaces
    /// the quarantined partitions' in-memory sealed blocks with whatever
    /// the surviving files still hold — so reads stop serving data whose
    /// backing file is gone, and the damaged range is visible for repair.
    /// No-op without a persistent engine.
    pub fn scrub_storage(&self, budget_bytes: u64) -> Result<ScrubOutcome> {
        let Some(engine) = &self.engine else { return Ok(ScrubOutcome::default()) };
        let outcome = self.scrubber.lock().run(engine, budget_bytes)?;
        for report in &outcome.quarantined {
            let reloaded = engine.reload_partition(report.partition).unwrap_or_default();
            self.replace_partition_blocks(report.start_ns, report.end_ns, reloaded);
        }
        Ok(outcome)
    }

    /// Replaces every column's sealed blocks inside `[start_ns, end_ns)`
    /// with `reloaded` (the blocks re-read from the partition's surviving
    /// segment files after a quarantine). Blocks outside the range are
    /// untouched; flushes seal one block per partition, so a block's
    /// `min_ts` decides membership for the whole block.
    fn replace_partition_blocks(&self, start_ns: i64, end_ns: i64, reloaded: Vec<BlockEntry>) {
        let mut by_col: FxHashMap<(String, String), Vec<Arc<SealedBlock>>> = FxHashMap::default();
        for e in reloaded {
            by_col.entry((e.series_key, e.field)).or_default().push(Arc::new(e.block));
        }
        for idx in 0..self.shards.len() {
            let mut shard = self.shards[idx].data.write();
            for (key, series) in shard.series.iter_mut() {
                let series = Arc::make_mut(series);
                for (field, col) in series.fields_mut() {
                    let in_range =
                        |b: &Arc<SealedBlock>| b.min_ts >= start_ns && b.min_ts < end_ns;
                    let replacement = by_col.remove(&(key.clone(), field.to_string()));
                    if replacement.is_none() && !col.sealed().iter().any(in_range) {
                        continue;
                    }
                    let mut layer: Vec<Arc<SealedBlock>> =
                        col.sealed().iter().filter(|b| !in_range(b)).cloned().collect();
                    layer.extend(replacement.unwrap_or_default());
                    layer.sort_by_key(|b| b.gen);
                    col.set_sealed(layer);
                }
            }
        }
    }

    /// The stable bits of one field value for integrity hashing. Replicas
    /// compare point sets by XORed hashes, so this must be identical on
    /// every node and invariant under an export → write-back round trip.
    fn field_value_bits(v: &FieldValue) -> u64 {
        match v {
            FieldValue::Float(f) => f.to_bits(),
            FieldValue::Integer(i) => fx_hash(&(1u8, i)),
            FieldValue::Boolean(b) => fx_hash(&(2u8, b)),
            FieldValue::Text(s) => fx_hash(&(3u8, s.as_str())),
        }
    }

    /// Merkle-style range digests of this database's visible points, for
    /// the router's anti-entropy repair pass: per (hour bucket, owner set)
    /// a point count and an XOR of per-point hashes. `db_name` and the ring
    /// parameters must match the router's placement exactly — the owner
    /// set is derived from the same `fx_hash((db, series_key))` the write
    /// path routes by, so two replicas are only compared over series they
    /// both own.
    pub fn integrity_digests(
        &self,
        db_name: &str,
        ring: &HashRing,
        replication: usize,
    ) -> Vec<BucketDigest> {
        self.drain_all_pending();
        let mut groups: std::collections::BTreeMap<(i64, u64), (u64, u64)> = Default::default();
        for shard in self.shards.iter() {
            let shard = shard.data.read();
            for (key, series) in shard.series.iter() {
                let mask = owner_mask(ring, replication, fx_hash(&(db_name, key.as_str())));
                for field in series.field_names() {
                    let Some(col) = series.field(field) else { continue };
                    for (ts, v) in col.points_in(i64::MIN, i64::MAX) {
                        let slot = groups.entry((bucket_of(ts), mask)).or_insert((0, 0));
                        slot.0 += 1;
                        slot.1 ^= point_hash(key, field, ts, Self::field_value_bits(&v));
                    }
                }
            }
        }
        groups
            .into_iter()
            .map(|((bucket_start, owners), (count, hash))| BucketDigest {
                bucket_start,
                owners,
                count,
                hash,
            })
            .collect()
    }

    /// Exports every visible point in `[start_ns, end_ns)` as canonical
    /// line protocol (one field per line, explicit nanosecond timestamps).
    /// The repair pass replays this through the normal replicated write
    /// path; last-write-wins makes the replay idempotent.
    pub fn export_lines(&self, start_ns: i64, end_ns: i64) -> String {
        self.drain_all_pending();
        let mut out = String::new();
        for shard in self.shards.iter() {
            let shard = shard.data.read();
            for series in shard.series.values() {
                for field in series.field_names() {
                    let Some(col) = series.field(field) else { continue };
                    let mut point = Point::new(series.measurement());
                    for (k, v) in series.tags() {
                        point.add_tag(k.clone(), v.clone());
                    }
                    for (ts, v) in col.points_in(start_ns, end_ns) {
                        point.add_field_value(field, v);
                        point.set_timestamp(ts);
                        out.push_str(&point.to_line());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Storage gauges for this database (engine gauges plus a live sweep
    /// of the in-memory layer).
    pub fn storage_stats(&self) -> StorageStats {
        let mut stats = StorageStats {
            // Capture the buffer depth before draining (afterwards it is 0
            // by construction); the drain below completes the head sweep.
            shard_buffer_depth: self
                .shards
                .iter()
                .map(|s| s.pending_points.load(Ordering::Acquire) as u64)
                .sum(),
            ..StorageStats::default()
        };
        self.drain_all_pending();
        if let Some(engine) = &self.engine {
            let e = engine.stats();
            stats.wal_bytes = e.wal_bytes;
            stats.segment_files = e.segment_files;
            stats.segment_bytes = e.segment_bytes;
            stats.compactions = e.compactions;
            stats.recovered_records = e.recovered_records;
            stats.degraded = e.degraded;
            stats.group_commits = e.wal_group_commits;
            stats.wal_fsyncs = e.wal_fsyncs;
            stats.batched_points_per_commit = e.wal_points_per_commit;
            stats.scrubbed_bytes = e.scrubbed_bytes;
            stats.corrupt_frames = e.corrupt_frames;
            stats.quarantined_segments = e.quarantined_segments;
            stats.damaged_ranges = e.damaged_ranges;
        }
        for shard in self.shards.iter() {
            let shard = shard.data.read();
            for series in shard.series.values() {
                for field in series.field_names() {
                    let Some(col) = series.field(field) else { continue };
                    stats.head_points += col.head_len() as u64;
                    let (points, bytes) = col.sealed_sizes();
                    stats.sealed_points += points as u64;
                    stats.sealed_bytes += bytes as u64;
                    stats.sealed_blocks += col.sealed().len() as u64;
                }
            }
        }
        stats
    }

    /// Applies the retention policy relative to `now_ns`; returns evicted
    /// point count. Emptied series and measurements are garbage-collected.
    ///
    /// Holds the `meta` write lock across the sweep (lock order `meta` →
    /// shards ascending) so no series can be registered concurrently;
    /// writes to *existing* series proceed shard by shard.
    pub fn enforce_retention(&self, now_ns: i64) -> usize {
        let mut meta = self.meta.write();
        let Some(retention) = meta.retention else { return 0 };
        // The rollup layer clamps the cutoff to the last tier-complete
        // boundary: points past the clamp are either not yet rolled up or
        // sit in a tier window that would be recomputed partially if its
        // raw points vanished, so they must survive this sweep.
        let clamp = self.retention_clamp.load(Ordering::Acquire);
        let cutoff = now_ns
            .saturating_sub(retention.as_nanos().min(i64::MAX as u128) as i64)
            .min(clamp);
        if cutoff == i64::MIN {
            return 0; // clamped to "nothing rolled up yet": keep everything
        }
        let mut evicted = 0;
        let mut removed: FxHashSet<String> = FxHashSet::default();
        for idx in 0..self.shards.len() {
            let slot = &self.shards[idx];
            // Drain staged writes first (with the already-held meta for
            // leftover re-creation) so the sweep sees them — otherwise a
            // stale staged point could resurrect a series just evicted.
            if slot.pending_points.load(Ordering::Acquire) > 0 {
                let mut shard = slot.data.write();
                let leftovers = Self::drain_locked(slot, &mut shard);
                drop(shard);
                if !leftovers.is_empty() {
                    self.install_leftovers(&mut meta, idx, leftovers);
                }
            }
            let mut shard = slot.data.write();
            shard.series.retain(|key, series| {
                let series = Arc::make_mut(series);
                evicted += series.evict_before(cutoff);
                if series.is_empty() {
                    removed.insert(key.clone());
                    false
                } else {
                    true
                }
            });
            // Under churning tag sets (ephemeral pods, rotating batch job
            // ids) series are created and fully evicted continuously; give
            // the capacity back so the map stays bounded by the *live*
            // series count, not the historical peak.
            if shard.series.capacity() > 64 && shard.series.capacity() > 4 * shard.series.len()
            {
                shard.series.shrink_to_fit();
            }
        }
        if !removed.is_empty() {
            meta.measurements.retain(|_, keys| {
                keys.retain(|k| !removed.contains(k));
                !keys.is_empty()
            });
            for keys in meta.measurements.values_mut() {
                if keys.capacity() > 64 && keys.capacity() > 4 * keys.len() {
                    keys.shrink_to_fit();
                }
            }
            if meta.measurements.capacity() > 64
                && meta.measurements.capacity() > 4 * meta.measurements.len()
            {
                meta.measurements.shrink_to_fit();
            }
        }
        self.raw_drop_cutoff.fetch_max(cutoff, Ordering::AcqRel);
        if let Some(engine) = &self.engine {
            // Defense in depth: the engine refuses to unlink partitions
            // reaching past the rollup clamp even if a future caller passes
            // a miscomputed cutoff.
            engine.set_drop_floor(clamp);
            // Best-effort: whole expired segment files are unlinked without
            // scanning; a failed unlink retries next sweep.
            let _ = engine.drop_expired(cutoff);
        }
        evicted
    }
}

/// Tiered-retention policy: how long each resolution tier keeps data.
/// Raw retention applies to every base (non-rollup) database; the 1m/1h
/// retentions apply to the corresponding tier databases. `None` keeps a
/// tier forever.
#[derive(Debug, Clone, Default)]
pub struct RollupPolicy {
    /// Retention of raw points in base databases.
    pub retention_raw: Option<Duration>,
    /// Retention of the 1-minute rollup tier.
    pub retention_1m: Option<Duration>,
    /// Retention of the 1-hour rollup tier.
    pub retention_1h: Option<Duration>,
}

impl RollupPolicy {
    /// The retention of one tier database.
    fn tier_retention(&self, tier: Tier) -> Option<Duration> {
        match tier {
            Tier::Minute => self.retention_1m,
            Tier::Hour => self.retention_1h,
        }
    }
}

struct Inner {
    databases: FxHashMap<String, Arc<Database>>,
    /// Create databases on first write (convenience for a self-contained
    /// stack; real InfluxDB requires CREATE DATABASE).
    auto_create: bool,
    /// Stripe count for newly created databases.
    shard_count: usize,
    /// Persistence configuration; `None` keeps the pre-PR memory-only
    /// behaviour.
    storage: Option<StorageConfig>,
    /// Supervisor of the background storage worker, installed by
    /// [`Influx::spawn_storage_worker`]; drives `/health/ready`.
    supervisor: Option<Supervisor>,
    /// Downsampling policy; `None` disables the rollup pipeline entirely.
    rollup: Option<RollupPolicy>,
    /// Which tiers queries may read from: `None` = every available tier
    /// (the default); `Some(vec![])` forces raw-only. Tests and benches
    /// flip this to compare tier-served against raw-decoded answers.
    query_tiers: Option<Vec<Tier>>,
}

impl Inner {
    /// Builds a database, persistent when storage is configured and the
    /// name is directory-safe (other names stay memory-only — they cannot
    /// round-trip through a path).
    fn make_database(&self, name: &str) -> Result<Arc<Database>> {
        let db = match &self.storage {
            Some(cfg) if is_safe_db_name(name) => Arc::new(Database::open_persistent(
                self.shard_count,
                cfg.tsm_config(name),
            )?),
            _ => Arc::new(Database::with_shards(self.shard_count)),
        };
        if let Some(policy) = &self.rollup {
            match lms_rollup::base_db_of(name) {
                // A tier sibling created after enable_rollups (e.g. for a
                // per-user slice) inherits the per-tier retention.
                Some((_, tier)) => {
                    if policy.tier_retention(tier).is_some() {
                        db.set_retention(policy.tier_retention(tier));
                    }
                }
                None => {
                    db.set_rollup_tracked(true);
                    if policy.retention_raw.is_some() {
                        db.set_retention(policy.retention_raw);
                    }
                }
            }
        }
        Ok(db)
    }
}

/// Thread-safe embedded handle to the whole storage.
#[derive(Clone)]
pub struct Influx {
    inner: Arc<RwLock<Inner>>,
    clock: Clock,
    /// Fault injection: pending storage-worker panics (each tick consumes
    /// one); exercises the supervisor's restart path in tests.
    worker_panics: Arc<AtomicU64>,
    /// Rollup passes completed (the `/stats` gauge).
    rollup_passes: Arc<AtomicU64>,
    /// Tier rows written by rollup passes (the `/stats` gauge).
    rollup_windows: Arc<AtomicU64>,
}

impl Influx {
    /// Creates an empty storage with auto-create enabled and the default
    /// shard count.
    pub fn new(clock: Clock) -> Self {
        Self::with_shards(clock, DEFAULT_SHARDS)
    }

    /// Creates an empty storage whose databases use `shards` lock stripes.
    /// `with_shards(clock, 1)` reproduces the old single-lock write path
    /// (the benchmark baseline).
    pub fn with_shards(clock: Clock, shards: usize) -> Self {
        Influx {
            inner: Arc::new(RwLock::new(Inner {
                databases: FxHashMap::default(),
                auto_create: true,
                shard_count: shards.max(1).next_power_of_two(),
                storage: None,
                supervisor: None,
                rollup: None,
                query_tiers: None,
            })),
            clock,
            worker_panics: Arc::new(AtomicU64::new(0)),
            rollup_passes: Arc::new(AtomicU64::new(0)),
            rollup_windows: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Opens a *persistent* storage rooted at `storage.data_dir`: every
    /// database found on disk is recovered immediately (sealed segments +
    /// WAL replay), and databases created later persist under the same
    /// root. Queries served after a restart match the pre-restart state up
    /// to the last acknowledged write.
    pub fn open(clock: Clock, shards: usize, storage: StorageConfig) -> Result<Influx> {
        let ix = Influx::with_shards(clock, shards);
        std::fs::create_dir_all(&storage.data_dir)?;
        let dir = storage.data_dir.clone();
        ix.inner.write().storage = Some(storage);
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            if let Ok(name) = entry.file_name().into_string() {
                if is_safe_db_name(&name) {
                    names.push(name);
                }
            }
        }
        names.sort_unstable();
        for name in names {
            let mut inner = ix.inner.write();
            let db = inner.make_database(&name)?;
            inner.databases.insert(name, db);
        }
        Ok(ix)
    }

    /// Disables database auto-creation (writes to unknown databases then
    /// fail like real InfluxDB).
    pub fn set_auto_create(&self, enabled: bool) {
        self.inner.write().auto_create = enabled;
    }

    /// Creates a database (idempotent). If persistence is configured but
    /// the on-disk open fails, the database degrades to memory-only rather
    /// than failing creation.
    pub fn create_database(&self, name: &str) {
        let mut inner = self.inner.write();
        if inner.databases.contains_key(name) {
            return;
        }
        let db = inner
            .make_database(name)
            .unwrap_or_else(|_| Arc::new(Database::with_shards(inner.shard_count)));
        inner.databases.insert(name.to_string(), db);
    }

    /// Sets the retention window of a database (creating it if needed).
    pub fn set_retention(&self, db: &str, retention: Option<Duration>) {
        self.create_database(db);
        if let Some(found) = self.database(db) {
            found.set_retention(retention);
        }
    }

    /// Turns on the downsampling pipeline: every existing and future base
    /// database gets 1m/1h rollup tier siblings (`X__rollup_1m`,
    /// `X__rollup_1h` — ordinary databases with their own engine, WAL and
    /// retention), per-tier retention from `policy`, watermark recovery
    /// from disk, and an immediate catch-up rollup pass over everything
    /// already stored.
    pub fn enable_rollups(&self, policy: RollupPolicy) -> Result<()> {
        self.inner.write().rollup = Some(policy.clone());
        for name in self.database_names() {
            if let Some((_, tier)) = lms_rollup::base_db_of(&name) {
                if let Some(db) = self.database(&name) {
                    if policy.tier_retention(tier).is_some() {
                        db.set_retention(policy.tier_retention(tier));
                    }
                }
                continue;
            }
            let Some(db) = self.database(&name) else { continue };
            db.set_rollup_tracked(true);
            if policy.retention_raw.is_some() {
                db.set_retention(policy.retention_raw);
            }
            // Watermark recovery: the newest `__rollup_watermark` point in
            // the 1m tier database carries the pre-restart watermark as its
            // timestamp. Everything above it is re-rolled by the catch-up
            // pass below; recomputation is idempotent, so overshooting
            // after a crash merely rewrites identical rows.
            if let Some(tier_db) = self.database(&rollup_db_name(&name, Tier::Minute)) {
                if let Some(series) =
                    tier_db.series_of(lms_rollup::WATERMARK_MEASUREMENT).first()
                {
                    if let Some(ts) = series
                        .field(lms_rollup::WATERMARK_FIELD)
                        .and_then(|c| c.last_ts())
                    {
                        db.set_rollup_watermark(ts);
                    }
                }
            }
            self.rollup_pass(&name)?;
        }
        Ok(())
    }

    /// True when the downsampling pipeline is enabled.
    pub fn rollups_enabled(&self) -> bool {
        self.inner.read().rollup.is_some()
    }

    /// Restricts which rollup tiers queries may consult: `None` = every
    /// available tier (the default), `Some(vec![])` = raw only. Tests and
    /// benches flip this to compare tier-served against raw answers.
    pub fn set_query_tiers(&self, tiers: Option<Vec<Tier>>) {
        self.inner.write().query_tiers = tiers;
    }

    /// `(passes completed, tier rows written)` by the rollup pipeline.
    pub fn rollup_counters(&self) -> (u64, u64) {
        (
            self.rollup_passes.load(Ordering::Relaxed),
            self.rollup_windows.load(Ordering::Relaxed),
        )
    }

    /// Runs one rollup pass for base database `base`: recomputes every
    /// 1m/1h tier window touched by ranges sealed since the last pass
    /// (plus the catch-up range above the watermark), writes the tier rows
    /// through the normal write path of the sibling tier databases (their
    /// WAL makes rollups crash-recoverable like any other write), and
    /// advances the persisted watermark. Returns tier rows written.
    ///
    /// Windows are recomputed from the *full* in-memory column, not just
    /// the newly sealed blocks, so backfill and overwrites converge to the
    /// exact aggregate; agent-pre-aggregated rows landing in the same
    /// window are superseded by last-write-wins.
    pub fn rollup_pass(&self, base: &str) -> Result<u64> {
        let policy = self.inner.read().rollup.clone();
        let Some(policy) = policy else { return Ok(0) };
        if is_rollup_db(base) {
            return Ok(0);
        }
        let Some(db) = self.database(base) else { return Ok(0) };
        let dirty = db.take_rollup_dirty();
        match self.rollup_pass_inner(base, &db, &policy, &dirty) {
            Ok(rows) => {
                self.rollup_passes.fetch_add(1, Ordering::Relaxed);
                self.rollup_windows.fetch_add(rows, Ordering::Relaxed);
                Ok(rows)
            }
            Err(e) => {
                // Give the claimed ranges back so no sealed range is lost;
                // the next pass retries them.
                db.restore_rollup_dirty(dirty);
                Err(e)
            }
        }
    }

    fn rollup_pass_inner(
        &self,
        base: &str,
        db: &Database,
        policy: &RollupPolicy,
        dirty: &[(i64, i64)],
    ) -> Result<u64> {
        // Snapshot every series (drains staged writes) and the data extent.
        let measurements = db.measurement_names();
        let mut snapshots: Vec<Vec<Arc<Series>>> = Vec::with_capacity(measurements.len());
        let mut data_lo = i64::MAX;
        let mut data_hi = i64::MIN;
        for m in &measurements {
            let series = db.series_of(m);
            for s in &series {
                for col in s.field_names().filter_map(|f| s.field(f)) {
                    if let Some(t) = col.first_ts() {
                        data_lo = data_lo.min(t);
                    }
                    if let Some(t) = col.last_ts() {
                        data_hi = data_hi.max(t);
                    }
                }
            }
            snapshots.push(series);
        }
        let wm = db.rollup_watermark().unwrap_or(i64::MIN);
        let mut ranges: Vec<(i64, i64)> =
            dirty.iter().map(|&(lo, hi)| (lo, hi.saturating_add(1))).collect();
        if data_hi != i64::MIN {
            // Catch-up: everything between the watermark and the newest
            // point — covers crash-lost dirty ranges, first-enable
            // backlogs, and head points rolled ahead of their flush.
            let lo = if wm == i64::MIN { data_lo } else { wm };
            let hi = data_hi.saturating_add(1);
            if lo < hi {
                ranges.push((lo, hi));
            }
        }
        if ranges.is_empty() {
            return Ok(0);
        }
        let floor = db.raw_drop_cutoff();
        let mut rows_written = 0u64;
        for tier in TIERS {
            let w = tier.window_ns();
            // Align each range out to whole windows, then coalesce so no
            // window is recomputed (and emitted) twice in one pass.
            let mut aligned: Vec<(i64, i64)> =
                ranges.iter().map(|&(lo, hi)| (align_down(lo, w), align_up(hi, w))).collect();
            aligned.sort_unstable();
            let mut merged: Vec<(i64, i64)> = Vec::with_capacity(aligned.len());
            for (lo, hi) in aligned {
                match merged.last_mut() {
                    Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                    _ => merged.push((lo, hi)),
                }
            }
            let tier_name = rollup_db_name(base, tier);
            self.create_database(&tier_name);
            if policy.tier_retention(tier).is_some() {
                if let Some(t) = self.database(&tier_name) {
                    t.set_retention(policy.tier_retention(tier));
                }
            }
            for (m, series_list) in measurements.iter().zip(&snapshots) {
                for series in series_list {
                    // window start → (field, accumulator) rows.
                    let mut windows: std::collections::BTreeMap<i64, Vec<(String, WindowAcc)>> =
                        std::collections::BTreeMap::new();
                    let fields: Vec<String> =
                        series.field_names().map(str::to_string).collect();
                    for field in &fields {
                        let Some(col) = series.field(field) else { continue };
                        for &(lo, hi) in &merged {
                            let mut cur: Option<(i64, WindowAcc)> = None;
                            for (ts, value) in col.points_in(lo, hi) {
                                let ws = align_down(ts, w);
                                if ws < floor {
                                    // Raw below the drop cutoff is gone: a
                                    // recompute would be partial, so the
                                    // existing tier row stays authoritative.
                                    continue;
                                }
                                match &mut cur {
                                    Some((s, acc)) if *s == ws => acc.add(ts, &value),
                                    _ => {
                                        if let Some((s, acc)) = cur.take() {
                                            windows
                                                .entry(s)
                                                .or_default()
                                                .push((field.clone(), acc));
                                        }
                                        let mut acc = WindowAcc::default();
                                        acc.add(ts, &value);
                                        cur = Some((ws, acc));
                                    }
                                }
                            }
                            if let Some((s, acc)) = cur.take() {
                                windows.entry(s).or_default().push((field.clone(), acc));
                            }
                        }
                    }
                    let mut batch = String::new();
                    for (ws, accs) in windows {
                        if let Some(point) =
                            lms_rollup::rollup_fields(m, series.tags(), ws, &accs)
                        {
                            batch.push_str(&point.to_line());
                            batch.push('\n');
                            rows_written += 1;
                        }
                    }
                    if !batch.is_empty() {
                        self.write_lines(&tier_name, &batch, WriteOptions::default())?;
                    }
                }
            }
        }
        // Advance and persist the watermark (a point whose *timestamp* is
        // the watermark, in the 1m tier database — recovered at startup).
        let new_wm = data_hi.saturating_add(1).max(wm);
        if new_wm > wm && new_wm != i64::MIN {
            let tier_name = rollup_db_name(base, Tier::Minute);
            self.create_database(&tier_name);
            let line = format!(
                "{} {}=1i {new_wm}\n",
                lms_rollup::WATERMARK_MEASUREMENT,
                lms_rollup::WATERMARK_FIELD
            );
            self.write_lines(&tier_name, &line, WriteOptions::default())?;
            db.set_rollup_watermark(new_wm);
        }
        Ok(rows_written)
    }

    /// The tier read context for queries against `db_name`: the available
    /// tier databases (coarsest first) and the base watermark. `None` when
    /// rollups are off, the database is itself a tier, no tier has data,
    /// or the query-tier override excludes everything.
    fn tier_ctx(&self, db_name: &str) -> Option<exec::TierCtx> {
        let inner = self.inner.read();
        inner.rollup.as_ref()?;
        if is_rollup_db(db_name) {
            return None;
        }
        let db = inner.databases.get(db_name)?;
        let watermark = db.rollup_watermark()?;
        let allowed = inner.query_tiers.clone();
        let mut tiers = Vec::new();
        for tier in [Tier::Hour, Tier::Minute] {
            if allowed.as_ref().is_some_and(|a| !a.contains(&tier)) {
                continue;
            }
            if let Some(t) = inner.databases.get(&rollup_db_name(db_name, tier)) {
                tiers.push((tier.window_ns(), t.clone()));
            }
        }
        if tiers.is_empty() {
            return None;
        }
        Some(exec::TierCtx { tiers, watermark })
    }

    /// Names of all databases, sorted.
    pub fn database_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().databases.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The clock used for server-assigned timestamps.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Looks up a database handle (read lock only). Exposes the
    /// maintenance surface — storage engine, flush, stats — for tests
    /// and tooling.
    pub fn database(&self, db: &str) -> Option<Arc<Database>> {
        self.inner.read().databases.get(db).cloned()
    }

    /// Looks up a database, creating it when auto-create permits. Only the
    /// first write to a new database pays the outer write lock.
    fn database_or_create(&self, db: &str) -> Result<Arc<Database>> {
        if let Some(found) = self.database(db) {
            return Ok(found);
        }
        let mut inner = self.inner.write();
        if let Some(existing) = inner.databases.get(db) {
            return Ok(existing.clone());
        }
        if !inner.auto_create {
            return Err(Error::not_found(format!("database `{db}`")));
        }
        let created = inner.make_database(db)?;
        inner.databases.insert(db.to_string(), created.clone());
        Ok(created)
    }

    /// Writes a line-protocol batch. Malformed lines are counted and
    /// skipped, not fatal (the paper's stack must survive a misbehaving
    /// collector). Fails only when the database does not exist and
    /// auto-create is off.
    ///
    /// The whole batch is submitted through the per-shard append buffers
    /// ([`Database::write_parsed_batch`]): concurrent writers — even to
    /// one hot series — stage points and hand off to a single drainer per
    /// shard instead of serializing on series locks, and the WAL append
    /// joins a group commit shared with concurrent batches.
    pub fn write_lines(&self, db: &str, batch: &str, opts: WriteOptions) -> Result<WriteOutcome> {
        let parsed = parse_batch(batch);
        let default_ts = self.clock.now().nanos();
        let database = self.database_or_create(db)?;
        // Priority-aware degraded mode: with the disk full, bulk metric
        // writes are refused up front (transient — the router keeps them
        // spooled), but job annotation events stay admitted to the
        // in-memory layer so job context remains live. They skip the WAL,
        // which is the documented trade-off: events written while degraded
        // do not survive a restart, but they are never silently shed.
        let degraded = database.engine().is_some_and(|e| e.is_degraded());
        if degraded && !parsed.lines.iter().all(|l| l.measurement == "events") {
            return Err(Error::unavailable(
                "storage degraded (disk full): bulk writes refused, events only",
            ));
        }
        let mut outcome = WriteOutcome {
            written: 0,
            rejected: parsed.errors.len(),
            first_error: parsed
                .errors
                .first()
                .map(|(line, e)| (*line, e.to_string())),
        };
        outcome.written = database.write_parsed_batch(&parsed.lines, opts, default_ts);
        // Durability: the batch is applied in memory first, then logged.
        // The WAL batch is normalized — every line carries its resolved
        // nanosecond timestamp — so replay after a crash is deterministic
        // and idempotent (re-applying overwrites with identical values).
        if let Some(engine) = database.engine() {
            if !parsed.lines.is_empty() && !degraded {
                let mut wal_batch = String::with_capacity(batch.len() + 16);
                for line in &parsed.lines {
                    if line.timestamp.is_some()
                        && matches!(opts.precision, Precision::Nanoseconds)
                    {
                        wal_batch.push_str(line.raw);
                    } else {
                        let ts = line
                            .timestamp
                            .map(|t| opts.precision.to_nanos(t))
                            .unwrap_or(default_ts);
                        let mut point = line.to_point();
                        point.set_timestamp(ts);
                        wal_batch.push_str(&point.to_line());
                    }
                    wal_batch.push('\n');
                }
                engine.append_wal(&wal_batch, parsed.lines.len() as u64)?;
            }
        }
        Ok(outcome)
    }

    /// Runs a query statement string against a database.
    pub fn query(&self, db: &str, q: &str) -> Result<QueryResult> {
        let stmt = Statement::parse(q)?;
        match stmt {
            Statement::CreateDatabase(name) => {
                self.create_database(&name);
                Ok(QueryResult::empty())
            }
            Statement::ShowDatabases => Ok(QueryResult {
                series: vec![crate::exec::ResultSeries {
                    name: "databases".into(),
                    tags: Vec::new(),
                    columns: vec!["name".into()],
                    values: self
                        .database_names()
                        .into_iter()
                        .map(|n| vec![lms_util::Json::str(n)])
                        .collect(),
                }],
                partial: false,
            }),
            other => {
                let now = self.clock.now().nanos();
                let database = self
                    .database(db)
                    .ok_or_else(|| Error::not_found(format!("database `{db}`")))?;
                let tiers = self.tier_ctx(db);
                exec::execute_tiered(&other, &database, tiers.as_ref(), now)
            }
        }
    }

    /// Runs a SELECT over an explicit half-open time range `[start, end)`
    /// ns, optionally re-bucketed to `step` ns windows — the first-class
    /// range-query API behind `/query_range`.
    ///
    /// The bounds and step are *injected into the parsed statement* (extra
    /// `time >=` / `time <` conjuncts intersect with any bounds already in
    /// the query; `step` overrides `GROUP BY time(...)`), so the request
    /// goes through the exact same planner and executor as `/query` —
    /// including summary pruning and parallel scans.
    pub fn query_range(
        &self,
        db: &str,
        q: &str,
        start: i64,
        end: i64,
        step: Option<i64>,
    ) -> Result<QueryResult> {
        if start >= end {
            return Err(Error::protocol("query_range: start must be < end"));
        }
        let Statement::Select(mut sel) = Statement::parse(q)? else {
            return Err(Error::protocol("query_range: only SELECT statements are supported"));
        };
        sel.conditions.push(Condition::TimeGe(TimeValue::Abs(start)));
        sel.conditions.push(Condition::TimeLt(TimeValue::Abs(end)));
        if let Some(step) = step {
            if step <= 0 {
                return Err(Error::protocol("query_range: step must be positive"));
            }
            sel.group_time = Some(step);
        }
        let now = self.clock.now().nanos();
        let database = self
            .database(db)
            .ok_or_else(|| Error::not_found(format!("database `{db}`")))?;
        let tiers = self.tier_ctx(db);
        exec::execute_tiered(&Statement::Select(sel), &database, tiers.as_ref(), now)
    }

    /// Sorted measurement names of a database (the `/metrics` listing).
    pub fn measurements(&self, db: &str) -> Result<Vec<String>> {
        let database = self
            .database(db)
            .ok_or_else(|| Error::not_found(format!("database `{db}`")))?;
        Ok(database.measurement_names())
    }

    /// Sorted tag keys of one measurement (the `/labels/{m}` listing).
    pub fn tag_keys(&self, db: &str, measurement: &str) -> Result<Vec<String>> {
        let database = self
            .database(db)
            .ok_or_else(|| Error::not_found(format!("database `{db}`")))?;
        Ok(database.tag_keys(measurement))
    }

    /// Applies retention across all databases; returns evicted point count.
    /// With rollups enabled, raw eviction in each base database is clamped
    /// to the last 1h-window boundary below its rollup watermark, so raw
    /// points are never dropped before the coarsest tier has absorbed them
    /// (the tier-boundary straddle guarantee).
    pub fn enforce_retention(&self) -> usize {
        let now = self.clock.now().nanos();
        let rollup_on = self.inner.read().rollup.is_some();
        let databases: Vec<(String, Arc<Database>)> = self
            .inner
            .read()
            .databases
            .iter()
            .map(|(n, d)| (n.clone(), d.clone()))
            .collect();
        let mut evicted = 0;
        for (name, db) in databases {
            if rollup_on && !is_rollup_db(&name) {
                let clamp = match db.rollup_watermark() {
                    Some(wm) => align_down(wm, Tier::Hour.window_ns()),
                    None => i64::MIN,
                };
                db.set_retention_clamp(clamp);
            }
            evicted += db.enforce_retention(now);
        }
        evicted
    }

    /// Flushes every database's mutable heads to disk; returns total
    /// blocks sealed. No-op (0) without persistence. With rollups enabled,
    /// each base flush is followed by a rollup pass over the sealed
    /// ranges, keeping the tiers continuously current.
    pub fn flush_storage(&self) -> Result<usize> {
        let databases: Vec<(String, Arc<Database>)> = self
            .inner
            .read()
            .databases
            .iter()
            .map(|(n, d)| (n.clone(), d.clone()))
            .collect();
        let mut sealed = 0;
        for (name, db) in databases {
            sealed += db.flush_storage()?;
            self.rollup_pass(&name)?;
        }
        Ok(sealed)
    }

    /// Compacts every database whose engine wants it; returns blocks
    /// written.
    pub fn compact_storage(&self) -> Result<usize> {
        let databases: Vec<Arc<Database>> =
            self.inner.read().databases.values().cloned().collect();
        let mut written = 0;
        for db in databases {
            if db.engine().is_some_and(|e| e.needs_compaction()) {
                written += db.compact_storage()?;
            }
        }
        Ok(written)
    }

    /// Runs one budgeted integrity-scrub pass over every database;
    /// returns the aggregated outcome. Each database gets the full byte
    /// budget (the budget bounds per-pass I/O burst, not total work).
    pub fn scrub_storage(&self, budget_bytes: u64) -> Result<ScrubOutcome> {
        let databases: Vec<Arc<Database>> =
            self.inner.read().databases.values().cloned().collect();
        let mut total = ScrubOutcome::default();
        for db in databases {
            let outcome = db.scrub_storage(budget_bytes)?;
            total.scrubbed_bytes += outcome.scrubbed_bytes;
            total.files_verified += outcome.files_verified;
            total.corrupt_frames += outcome.corrupt_frames;
            total.quarantined.extend(outcome.quarantined);
            total.cycle_completed |= outcome.cycle_completed;
        }
        Ok(total)
    }

    /// Integrity digests of one database for the anti-entropy protocol
    /// (see [`Database::integrity_digests`]). The caller — normally the
    /// router's repair pass — supplies the cluster's ring geometry, which
    /// storage nodes do not otherwise know.
    pub fn integrity_digests(
        &self,
        db: &str,
        nodes: usize,
        replication: usize,
        seed: u64,
    ) -> Result<Vec<BucketDigest>> {
        let found = self
            .database(db)
            .ok_or_else(|| Error::not_found(format!("database {db:?} not found")))?;
        let ring = HashRing::new(nodes.max(1), seed);
        Ok(found.integrity_digests(db, &ring, replication.max(1)))
    }

    /// Canonical line-protocol export of one database's visible points in
    /// `[start_ns, end_ns)` (see [`Database::export_lines`]).
    pub fn integrity_export(&self, db: &str, start_ns: i64, end_ns: i64) -> Result<String> {
        let found = self
            .database(db)
            .ok_or_else(|| Error::not_found(format!("database {db:?} not found")))?;
        Ok(found.export_lines(start_ns, end_ns))
    }

    /// Aggregate storage gauges across all databases.
    pub fn storage_stats(&self) -> StorageStats {
        let databases: Vec<Arc<Database>> =
            self.inner.read().databases.values().cloned().collect();
        let mut stats = StorageStats::default();
        for db in databases {
            stats.add(db.storage_stats());
        }
        stats
    }

    /// Spawns the background flush/compaction worker under a supervisor.
    /// Returns `None` when persistence is not configured. The worker
    /// flushes when any database accumulates `flush_points` head points or
    /// every `flush_interval`, and compacts opportunistically after
    /// flushing; stopping it performs a final flush. A panicking worker is
    /// restarted with backoff; its health feeds [`Influx::workers_ready`].
    pub fn spawn_storage_worker(&self) -> Option<StorageWorker> {
        self.spawn_storage_worker_with(SupervisorConfig::default())
    }

    /// [`Influx::spawn_storage_worker`] with an explicit restart policy
    /// (tests shrink the backoff and budget).
    pub fn spawn_storage_worker_with(&self, sup_cfg: SupervisorConfig) -> Option<StorageWorker> {
        let cfg = self.inner.read().storage.clone()?;
        let supervisor = Supervisor::new(sup_cfg);
        let ix = self.clone();
        let panics = self.worker_panics.clone();
        let spawned = supervisor.spawn("storage", move |ctx| {
            let tick = Duration::from_millis(200).min(cfg.flush_interval);
            let mut last_flush = std::time::Instant::now();
            let mut last_scrub = std::time::Instant::now();
            let scrub_enabled = cfg.scrub_interval > Duration::ZERO && cfg.scrub_rate_bytes > 0;
            while !ctx.should_stop() {
                ctx.sleep(tick);
                if panics
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    panic!("injected storage worker panic");
                }
                let due = last_flush.elapsed() >= cfg.flush_interval;
                let databases: Vec<(String, Arc<Database>)> = ix
                    .inner
                    .read()
                    .databases
                    .iter()
                    .map(|(n, d)| (n.clone(), d.clone()))
                    .collect();
                for (name, db) in databases {
                    let Some(engine) = db.engine() else { continue };
                    // Degraded (disk full): flushing or compacting would
                    // just hit ENOSPC again — park until an operator
                    // clears the condition instead of retrying unbounded.
                    if engine.is_degraded() {
                        continue;
                    }
                    let heads = db.head_point_count();
                    if heads > 0
                        && (due || heads >= cfg.flush_points)
                        && db.flush_storage().is_ok()
                    {
                        // Downsample the freshly sealed ranges; an
                        // error leaves them claimed-back for retry.
                        let _ = ix.rollup_pass(&name);
                    }
                    if db.engine().is_some_and(|e| e.needs_compaction()) {
                        let _ = db.compact_storage();
                    }
                }
                if due {
                    last_flush = std::time::Instant::now();
                }
                // Budgeted background scrub: re-verify sealed-segment CRCs
                // and quarantine damage so the router's repair pass can
                // heal it from a healthy replica.
                if scrub_enabled && last_scrub.elapsed() >= cfg.scrub_interval {
                    let _ = ix.scrub_storage(cfg.scrub_rate_bytes);
                    last_scrub = std::time::Instant::now();
                }
            }
            let _ = ix.flush_storage();
        });
        if spawned.is_err() {
            return None;
        }
        self.inner.write().supervisor = Some(supervisor.clone());
        Some(StorageWorker { supervisor })
    }

    /// Readiness of the supervised background workers: `true` when no
    /// worker is mid-restart or permanently failed (also `true` before the
    /// worker is spawned, and in memory-only mode).
    pub fn workers_ready(&self) -> bool {
        self.inner.read().supervisor.as_ref().map(|s| s.is_ready()).unwrap_or(true)
    }

    /// Health reports of the supervised background workers.
    pub fn worker_reports(&self) -> Vec<WorkerReport> {
        self.inner.read().supervisor.as_ref().map(|s| s.reports()).unwrap_or_default()
    }

    /// True when any database's storage engine is degraded (disk full).
    pub fn storage_degraded(&self) -> bool {
        let databases: Vec<Arc<Database>> =
            self.inner.read().databases.values().cloned().collect();
        databases.iter().any(|d| d.engine().is_some_and(|e| e.is_degraded()))
    }

    /// Fault injection: make the storage worker panic on its next `n`
    /// ticks (each tick consumes one pending panic).
    pub fn inject_storage_worker_panics(&self, n: u64) {
        self.worker_panics.store(n, Ordering::SeqCst);
    }

    /// Point count in one database (0 when absent).
    pub fn point_count(&self, db: &str) -> usize {
        self.database(db).map(|d| d.point_count()).unwrap_or(0)
    }

    /// Series count in one database (0 when absent).
    pub fn series_count(&self, db: &str) -> usize {
        self.database(db).map(|d| d.series_count()).unwrap_or(0)
    }
}

/// Handle to the supervised background flush/compaction worker; stopping
/// (or dropping) it performs a final flush so a graceful shutdown loses
/// nothing even with WAL fsync disabled.
pub struct StorageWorker {
    supervisor: Supervisor,
}

impl StorageWorker {
    /// Signals the worker and waits for its final flush.
    pub fn stop(self) {
        self.supervisor.shutdown();
    }

    /// The supervisor behind the worker, for health inspection.
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }
}

impl Drop for StorageWorker {
    fn drop(&mut self) {
        self.supervisor.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_util::Timestamp;

    fn influx() -> Influx {
        Influx::new(Clock::simulated(Timestamp::from_secs(1000)))
    }

    #[test]
    fn write_and_count() {
        let ix = influx();
        let out = ix
            .write_lines("lms", "cpu,hostname=h1 value=1 1\ncpu,hostname=h2 value=2 2", Default::default())
            .unwrap();
        assert_eq!(out.written, 2);
        assert_eq!(out.rejected, 0);
        assert_eq!(ix.series_count("lms"), 2);
        assert_eq!(ix.point_count("lms"), 2);
    }

    #[test]
    fn malformed_lines_counted_not_fatal() {
        let ix = influx();
        let out = ix
            .write_lines("lms", "good v=1 1\nbad line here\ngood v=2 2", Default::default())
            .unwrap();
        assert_eq!(out.written, 2);
        assert_eq!(out.rejected, 1);
        let (line, msg) = out.first_error.unwrap();
        assert_eq!(line, 2);
        assert!(!msg.is_empty());
    }

    #[test]
    fn missing_timestamp_gets_server_time() {
        let ix = influx();
        ix.write_lines("lms", "cpu value=1", Default::default()).unwrap();
        let r = ix.query("lms", "SELECT value FROM cpu").unwrap();
        let ts = r.series[0].values[0][0].as_i64().unwrap();
        assert_eq!(ts, Timestamp::from_secs(1000).nanos());
    }

    #[test]
    fn precision_scaling_applies() {
        let ix = influx();
        ix.write_lines(
            "lms",
            "cpu value=1 1000",
            WriteOptions { precision: Precision::Seconds },
        )
        .unwrap();
        let r = ix.query("lms", "SELECT value FROM cpu").unwrap();
        assert_eq!(r.series[0].values[0][0].as_i64().unwrap(), 1_000_000_000_000);
    }

    #[test]
    fn auto_create_toggle() {
        let ix = influx();
        ix.set_auto_create(false);
        assert!(ix.write_lines("nope", "m v=1 1", Default::default()).is_err());
        ix.create_database("nope");
        assert!(ix.write_lines("nope", "m v=1 1", Default::default()).is_ok());
        assert_eq!(ix.database_names(), vec!["nope"]);
    }

    #[test]
    fn create_database_via_query() {
        let ix = influx();
        ix.set_auto_create(false);
        ix.query("", "CREATE DATABASE userdb").unwrap();
        assert!(ix.database_names().contains(&"userdb".to_string()));
    }

    #[test]
    fn show_databases() {
        let ix = influx();
        ix.create_database("lms");
        ix.create_database("user_alice");
        let r = ix.query("", "SHOW DATABASES").unwrap();
        let names: Vec<&str> =
            r.series[0].values.iter().map(|v| v[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["lms", "user_alice"]);
    }

    #[test]
    fn retention_evicts_old_points() {
        let ix = influx();
        ix.set_retention("lms", Some(Duration::from_secs(100)));
        // now = 1000s; points at 850s (stale) and 950s (fresh)
        ix.write_lines("lms", "m v=1 850000000000\nm v=2 950000000000", Default::default())
            .unwrap();
        assert_eq!(ix.point_count("lms"), 2);
        let evicted = ix.enforce_retention();
        assert_eq!(evicted, 1);
        assert_eq!(ix.point_count("lms"), 1);
    }

    #[test]
    fn retention_gc_removes_empty_series() {
        let ix = influx();
        ix.set_retention("lms", Some(Duration::from_secs(10)));
        ix.write_lines("lms", "old v=1 1", Default::default()).unwrap();
        ix.enforce_retention();
        assert_eq!(ix.series_count("lms"), 0);
        let r = ix.query("lms", "SHOW MEASUREMENTS").unwrap();
        assert!(r.series.is_empty() || r.series[0].values.is_empty());
    }

    #[test]
    fn retention_clamps_at_the_tier_boundary() {
        // Regression: with rollups on, raw eviction stops at the last
        // *complete* 1h window below the rollup watermark — a retention
        // cutoff straddling a tier window must not strand a partially
        // rolled hour. Aggressive raw retention (100s, now = 36000s)
        // would otherwise evict everything.
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(36_000)));
        let body: String = (0..7000i64)
            .map(|s| format!("m v={} {}\n", s % 10, s * 1_000_000_000))
            .collect();
        ix.write_lines("lms", &body, Default::default()).unwrap();
        ix.enable_rollups(RollupPolicy {
            retention_raw: Some(Duration::from_secs(100)),
            ..Default::default()
        })
        .unwrap();
        let evicted = ix.enforce_retention();
        // Watermark ≈ 7000s → clamp = align_down(7000s, 1h) = 3600s:
        // the first full hour goes, the straddled second hour stays.
        assert_eq!(evicted, 3600, "eviction must stop at the 1h tier boundary");
        assert_eq!(ix.point_count("lms"), 7000 - 3600);
        // The evicted hour is still fully answerable through the tiers.
        let r = ix.query("lms", "SELECT count(v) FROM m").unwrap();
        assert_eq!(r.series[0].values[0][1].as_i64().unwrap(), 7000);
    }

    #[test]
    fn unrolled_points_survive_retention() {
        // Rollups enabled but no pass has run yet (no watermark): raw
        // eviction must hold off entirely rather than drop points no
        // tier covers.
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(36_000)));
        ix.enable_rollups(RollupPolicy {
            retention_raw: Some(Duration::from_secs(100)),
            ..Default::default()
        })
        .unwrap();
        // Two stale points in hour 0, one fresh point past the hour mark
        // (so the post-pass clamp = align_down(watermark, 1h) = 3600s).
        ix.write_lines(
            "lms",
            "m v=1 1000000000\nm v=2 2000000000\nm v=3 7201000000000",
            Default::default(),
        )
        .unwrap();
        assert_eq!(ix.enforce_retention(), 0, "unrolled points must not be evicted");
        assert_eq!(ix.point_count("lms"), 3);
        // After a rollup pass covers them, eviction proceeds up to the clamp.
        ix.flush_storage().unwrap();
        assert_eq!(ix.enforce_retention(), 2);
        let r = ix.query("lms", "SELECT count(v) FROM m").unwrap();
        assert_eq!(r.series[0].values[0][1].as_i64().unwrap(), 3, "tier coverage lost");
    }

    #[test]
    fn per_user_slice_gets_tier_siblings() {
        // A base database created *after* enable_rollups (the per-user
        // materialized slice case) is tracked and rolled like any other.
        let ix = influx();
        ix.enable_rollups(RollupPolicy::default()).unwrap();
        let body: String = (0..180i64)
            .map(|s| format!("m v={} {}\n", s % 10, s * 1_000_000_000))
            .collect();
        ix.write_lines("user_dave", &body, Default::default()).unwrap();
        ix.flush_storage().unwrap();
        assert!(ix.point_count("user_dave__rollup_1m") > 0, "per-user 1m tier missing");
        ix.set_query_tiers(Some(vec![]));
        let raw = ix.query("user_dave", "SELECT mean(v), count(v) FROM m GROUP BY time(60s)").unwrap();
        ix.set_query_tiers(None);
        let tiered = ix.query("user_dave", "SELECT mean(v), count(v) FROM m GROUP BY time(60s)").unwrap();
        assert_eq!(tiered, raw);
    }

    #[test]
    fn duplicate_point_overwrites() {
        let ix = influx();
        ix.write_lines("lms", "m,host=a v=1 5\nm,host=a v=2 5", Default::default()).unwrap();
        assert_eq!(ix.point_count("lms"), 1);
        let r = ix.query("lms", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values[0][1].as_f64().unwrap(), 2.0);
    }

    #[test]
    fn shard_count_is_power_of_two() {
        assert_eq!(Database::with_shards(1).shard_count(), 1);
        assert_eq!(Database::with_shards(3).shard_count(), 4);
        assert_eq!(Database::with_shards(16).shard_count(), 16);
        assert_eq!(Database::new().shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    fn single_shard_engine_behaves_identically() {
        // shards=1 is the old single-lock layout; results must match the
        // sharded engine exactly.
        let batch = "cpu,hostname=h1 v=1 1\ncpu,hostname=h2 v=2 2\nmem,hostname=h1 v=3 3";
        let sharded = influx();
        let single = Influx::with_shards(Clock::simulated(Timestamp::from_secs(1000)), 1);
        sharded.write_lines("lms", batch, Default::default()).unwrap();
        single.write_lines("lms", batch, Default::default()).unwrap();
        for q in ["SELECT v FROM cpu", "SHOW MEASUREMENTS", "SELECT mean(v) FROM cpu"] {
            assert_eq!(
                sharded.query("lms", q).unwrap(),
                single.query("lms", q).unwrap(),
                "query {q} diverged between shard counts"
            );
        }
        assert_eq!(sharded.point_count("lms"), single.point_count("lms"));
    }

    #[test]
    fn write_parsed_matches_write_point() {
        // The allocation-free parsed-line path and the owned Point path
        // must store identical data, including duplicate tag/field keys.
        let lines = "m,b=2,a=1,a=9 v=1,v=2,w=3i 5\nm,a=9,b=2 v=7 5";
        let via_parsed = influx();
        via_parsed.write_lines("lms", lines, Default::default()).unwrap();

        let via_point = influx();
        {
            let db = via_point.database_or_create("lms").unwrap();
            for parsed in lms_lineproto::parse_batch(lines).lines {
                let point = parsed.to_point();
                db.write_point(&point, 0);
            }
        }
        for q in ["SELECT v, w FROM m", "SHOW FIELD KEYS FROM m"] {
            assert_eq!(
                via_parsed.query("lms", q).unwrap(),
                via_point.query("lms", q).unwrap(),
                "query {q} diverged between write paths"
            );
        }
        assert_eq!(via_parsed.series_count("lms"), 1);
        assert_eq!(via_point.series_count("lms"), 1);
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lms-influx-db-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn persistent(dir: &std::path::Path) -> Influx {
        Influx::open(
            Clock::simulated(Timestamp::from_secs(1000)),
            DEFAULT_SHARDS,
            StorageConfig::new(dir),
        )
        .unwrap()
    }

    #[test]
    fn restart_after_flush_serves_identical_queries() {
        let dir = tmp_dir("flush-restart");
        let queries = [
            "SELECT v FROM cpu",
            "SELECT mean(v), max(v) FROM cpu",
            "SHOW MEASUREMENTS",
            "SELECT v FROM cpu WHERE hostname = 'h2'",
        ];
        let before: Vec<QueryResult> = {
            let ix = persistent(&dir);
            ix.write_lines(
                "lms",
                "cpu,hostname=h1 v=1 1\ncpu,hostname=h2 v=2 2\nmem,hostname=h1 used=3i 3",
                Default::default(),
            )
            .unwrap();
            assert!(ix.flush_storage().unwrap() > 0);
            queries.iter().map(|q| ix.query("lms", q).unwrap()).collect()
        };
        let ix = persistent(&dir);
        for (q, expect) in queries.iter().zip(before) {
            assert_eq!(ix.query("lms", q).unwrap(), expect, "query {q} diverged after restart");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_without_flush_replays_wal() {
        let dir = tmp_dir("wal-restart");
        {
            let ix = persistent(&dir);
            ix.write_lines("lms", "cpu v=1 1\ncpu v=2 2", Default::default()).unwrap();
            // No flush: points only exist in memory + WAL.
        }
        let ix = persistent(&dir);
        assert_eq!(ix.point_count("lms"), 2);
        let r = ix.query("lms", "SELECT v FROM cpu").unwrap();
        assert_eq!(r.series[0].values.len(), 2);
        assert!(ix.storage_stats().recovered_records > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_preserves_server_assigned_timestamps() {
        // Lines without timestamps get server time at write; the WAL must
        // record the *resolved* timestamp, not re-stamp at replay.
        let dir = tmp_dir("normalize");
        let before = {
            let ix = persistent(&dir);
            ix.write_lines("lms", "cpu v=1", Default::default()).unwrap();
            ix.query("lms", "SELECT v FROM cpu").unwrap()
        };
        let ix = Influx::open(
            Clock::simulated(Timestamp::from_secs(9999)), // different "now"
            DEFAULT_SHARDS,
            StorageConfig::new(&dir),
        )
        .unwrap();
        assert_eq!(ix.query("lms", "SELECT v FROM cpu").unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_across_flush_boundary_resolves_last_write() {
        let dir = tmp_dir("lww");
        let ix = persistent(&dir);
        ix.write_lines("lms", "m v=1 5", Default::default()).unwrap();
        ix.flush_storage().unwrap();
        ix.write_lines("lms", "m v=2 5", Default::default()).unwrap();
        let r = ix.query("lms", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values[0][1].as_f64().unwrap(), 2.0, "head beats sealed");
        ix.flush_storage().unwrap();
        drop(ix);
        let ix = persistent(&dir);
        let r = ix.query("lms", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values.len(), 1);
        assert_eq!(
            r.series[0].values[0][1].as_f64().unwrap(),
            2.0,
            "newer generation beats older after restart"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Recursively finds segment files under `dir` whose name starts with
    /// `prefix`.
    fn find_segments(dir: &std::path::Path, prefix: &str) -> Vec<PathBuf> {
        let mut out = Vec::new();
        let mut stack = vec![dir.to_path_buf()];
        while let Some(d) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&d) else { continue };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(prefix) && n.ends_with(".tsm"))
                {
                    out.push(path);
                }
            }
        }
        out
    }

    #[test]
    fn scrub_quarantines_damage_and_replica_replay_heals_it() {
        let dir_a = tmp_dir("scrub-a");
        let dir_b = tmp_dir("scrub-b");
        let ix_a = persistent(&dir_a);
        let ix_b = persistent(&dir_b);
        // Two 2h partitions: ts 1s lands in partition 0, ts 8000s in
        // partition 1.
        let batch = "m,host=h1 v=1 1000000000\nm,host=h1 v=2 8000000000000";
        for ix in [&ix_a, &ix_b] {
            ix.write_lines("lms", batch, Default::default()).unwrap();
            ix.flush_storage().unwrap();
        }
        let digest = |ix: &Influx| ix.integrity_digests("lms", 2, 2, 7).unwrap();
        assert_eq!(digest(&ix_a), digest(&ix_b), "identical replicas must agree");

        // Corrupt partition 1's segment on node A (flip a payload bit).
        let seg = find_segments(&dir_a, "seg-1-").pop().expect("partition-1 segment");
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[16] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();

        let db_a = ix_a.database("lms").unwrap();
        let mut quarantined = 0;
        loop {
            let out = db_a.scrub_storage(u64::MAX).unwrap();
            quarantined += out.quarantined.len();
            if out.cycle_completed {
                break;
            }
        }
        assert_eq!(quarantined, 1);
        let stats = ix_a.storage_stats();
        assert_eq!(stats.quarantined_segments, 1);
        assert_eq!(stats.damaged_ranges, 1);
        assert!(stats.corrupt_frames >= 1);
        assert!(seg.with_extension("tsm.quarantine").exists() || !seg.exists());
        // Reads stop serving the damaged partition but keep the healthy one.
        let r = ix_a.query("lms", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values.len(), 1, "damaged partition must not be served");
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(1.0));
        assert_ne!(digest(&ix_a), digest(&ix_b), "loss must be visible in digests");

        // Anti-entropy in miniature: replay the healthy replica's export of
        // the damaged range through the normal write path.
        let damaged = db_a.engine().unwrap().damaged_ranges();
        assert_eq!(damaged.len(), 1);
        let lines = ix_b.integrity_export("lms", damaged[0].start_ns, damaged[0].end_ns).unwrap();
        assert!(lines.contains("v=2"), "{lines}");
        ix_a.write_lines("lms", &lines, Default::default()).unwrap();
        let r = ix_a.query("lms", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values.len(), 2, "repair must restore the lost point");
        assert_eq!(digest(&ix_a), digest(&ix_b), "replicas must reconverge after repair");
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn compaction_preserves_results_and_shrinks_files() {
        let dir = tmp_dir("compact");
        let ix = persistent(&dir);
        for round in 0..5 {
            let mut batch = String::new();
            for i in 0..20 {
                batch.push_str(&format!("m v={} {}\n", round * 100 + i, i));
            }
            ix.write_lines("lms", &batch, Default::default()).unwrap();
            ix.flush_storage().unwrap();
        }
        let before = ix.query("lms", "SELECT v FROM m").unwrap();
        let files_before = ix.storage_stats().segment_files;
        assert!(files_before >= 5);
        assert!(ix.compact_storage().unwrap() > 0);
        assert_eq!(ix.query("lms", "SELECT v FROM m").unwrap(), before);
        let stats = ix.storage_stats();
        assert!(stats.segment_files < files_before, "compaction merges files");
        assert_eq!(stats.compactions, 1);
        assert_eq!(
            stats.sealed_points, 20,
            "overwritten versions are dropped by compaction"
        );
        drop(ix);
        let ix = persistent(&dir);
        assert_eq!(ix.query("lms", "SELECT v FROM m").unwrap(), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_drops_expired_segment_files() {
        let dir = tmp_dir("segment-retention");
        let ix = Influx::open(
            Clock::simulated(Timestamp::from_secs(1000)),
            DEFAULT_SHARDS,
            StorageConfig {
                partition: Duration::from_secs(60),
                ..StorageConfig::new(&dir)
            },
        )
        .unwrap();
        ix.set_retention("lms", Some(Duration::from_secs(100)));
        // now = 1000s; one point far in the past, one fresh.
        ix.write_lines("lms", "m v=1 100000000000\nm v=2 950000000000", Default::default())
            .unwrap();
        ix.flush_storage().unwrap();
        assert_eq!(ix.storage_stats().segment_files, 2, "points land in distinct partitions");
        assert_eq!(ix.enforce_retention(), 1);
        let stats = ix.storage_stats();
        assert_eq!(stats.segment_files, 1, "expired partition file unlinked");
        assert_eq!(ix.point_count("lms"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_churn_keeps_shard_maps_bounded() {
        // Churning tag sets: every round writes 200 fresh series, then the
        // clock advances past retention and the sweep must fully remove
        // them — both the entries and (eventually) the map capacity.
        let clock = Clock::simulated(Timestamp::from_secs(1000));
        let ix = Influx::new(clock.clone());
        ix.set_retention("lms", Some(Duration::from_secs(10)));
        for round in 0..30 {
            let mut batch = String::new();
            let now = clock.now().nanos();
            for i in 0..200 {
                batch.push_str(&format!("jobs,job=r{round}x{i} v=1 {now}\n"));
            }
            ix.write_lines("lms", &batch, Default::default()).unwrap();
            clock.advance(Duration::from_secs(60));
            ix.enforce_retention();
            assert_eq!(ix.series_count("lms"), 0, "round {round}: all series expired");
        }
        // After 6000 series came and went, the shard maps must not retain
        // capacity proportional to the historical total.
        let db = ix.database("lms").unwrap();
        let capacity: usize =
            db.shards.iter().map(|s| s.data.read().series.capacity()).sum();
        assert!(
            capacity <= 2048,
            "shard map capacity {capacity} should be bounded, not ~6000"
        );
        assert_eq!(ix.point_count("lms"), 0);
        let _ = ix.query("lms", "SHOW MEASUREMENTS").unwrap();
    }

    #[test]
    fn flush_fault_injection_keeps_data_and_recovers() {
        let dir = tmp_dir("flush-fault");
        {
            let ix = persistent(&dir);
            ix.write_lines("lms", "m v=1 1\nm v=2 2", Default::default()).unwrap();
            let db = ix.database("lms").unwrap();
            db.engine().unwrap().inject_segment_write_failure(4);
            assert!(db.flush_storage().is_err(), "injected fault surfaces");
            // Reads still serve everything from memory.
            let r = ix.query("lms", "SELECT v FROM m").unwrap();
            assert_eq!(r.series[0].values.len(), 2);
            // Retry succeeds: the sealed-but-unwritten blocks are retried.
            assert!(db.flush_storage().unwrap() > 0);
        }
        let ix = persistent(&dir);
        assert_eq!(ix.point_count("lms"), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsafe_db_names_stay_memory_only() {
        let dir = tmp_dir("unsafe-name");
        let ix = persistent(&dir);
        ix.write_lines("weird/../name", "m v=1 1", Default::default()).unwrap();
        let db = ix.database("weird/../name").unwrap();
        assert!(db.engine().is_none(), "path-unsafe names must not touch the filesystem");
        assert!(!dir.join("weird").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn storage_worker_flushes_in_background() {
        let dir = tmp_dir("worker");
        let ix = Influx::open(
            Clock::simulated(Timestamp::from_secs(1000)),
            DEFAULT_SHARDS,
            StorageConfig {
                flush_points: 10,
                flush_interval: Duration::from_secs(3600), // only the point trigger
                ..StorageConfig::new(&dir)
            },
        )
        .unwrap();
        let worker = ix.spawn_storage_worker().expect("storage configured");
        let mut batch = String::new();
        for i in 0..50 {
            batch.push_str(&format!("m v={i} {i}\n"));
        }
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while ix.storage_stats().sealed_points == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
        }
        assert!(ix.storage_stats().sealed_points > 0, "worker flushed on point threshold");
        worker.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_to_one_database() {
        let ix = influx();
        ix.create_database("lms");
        std::thread::scope(|scope| {
            for w in 0..4 {
                let ix = ix.clone();
                scope.spawn(move || {
                    for batch in 0..10 {
                        let mut text = String::new();
                        for i in 0..25 {
                            let ts = (w * 1000 + batch * 25 + i) as i64;
                            text.push_str(&format!("m,writer=w{w} v={i} {ts}\n"));
                        }
                        ix.write_lines("lms", &text, Default::default()).unwrap();
                    }
                });
            }
        });
        assert_eq!(ix.point_count("lms"), 4 * 10 * 25);
        assert_eq!(ix.series_count("lms"), 4);
    }
}
