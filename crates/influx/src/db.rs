//! Databases and the embedded [`Influx`] handle.
//!
//! A [`Database`] owns the series of one logical database (the paper's
//! global database, plus optional per-user databases created by the
//! router's duplication feature). [`Influx`] bundles multiple databases
//! behind one thread-safe handle — the same object backs the embedded API
//! and the HTTP server.
//!
//! # Ingest concurrency
//!
//! Writers never take a storage-wide exclusive lock. The outer
//! `db name → Database` map is read-mostly (`RwLock` around an
//! [`Arc<Database>`] map: writes only when a database is created), and each
//! database partitions its series across [`DEFAULT_SHARDS`] lock-striped
//! shards selected by series-key hash. A batch write takes one short shard
//! write lock per line; batches touching different series proceed fully in
//! parallel.
//!
//! Lock order is `meta` → shard (ascending), established in
//! [`Database::create_and_write`] and [`Database::enforce_retention`]; the
//! hot path takes a single shard lock and nothing else. Series are stored
//! as `Arc<Series>` so queries snapshot cheaply (clone the `Arc`s under a
//! shard read lock) while writers mutate in place through `Arc::make_mut`
//! — the copy-on-write clone only triggers when a query holds the same
//! series concurrently.

use crate::exec::{self, QueryResult};
use crate::query::Statement;
use crate::storage::Series;
use lms_lineproto::{parse_batch, FieldValue, ParsedLine, Precision};
use lms_util::{hash::fx_hash, Clock, Error, FxHashMap, FxHashSet, Result};
use parking_lot::RwLock;
use std::collections::hash_map::Entry;
use std::sync::Arc;
use std::time::Duration;

/// Default number of lock-striped series shards per database.
pub const DEFAULT_SHARDS: usize = 16;

/// Options for a write request.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    /// Precision of timestamps in the batch (default nanoseconds).
    pub precision: Precision,
}

/// Outcome of writing a batch: how many points landed, how many lines were
/// rejected (with the first error kept for reporting).
#[derive(Debug, Default)]
pub struct WriteOutcome {
    /// Accepted points.
    pub written: usize,
    /// Rejected lines.
    pub rejected: usize,
    /// First rejection, if any (line number, message).
    pub first_error: Option<(usize, String)>,
}

/// One lock stripe: a slice of the series keyed by canonical series key.
#[derive(Debug, Default)]
struct Shard {
    series: FxHashMap<String, Arc<Series>>,
}

/// Cross-shard metadata, guarded by its own lock (taken *before* any shard
/// lock — see the module docs for the lock order).
#[derive(Debug, Default)]
struct Meta {
    /// measurement → series keys in first-write order. Raw query results
    /// key rows by `(timestamp, series index)`, so preserving this order
    /// keeps results byte-identical to the single-lock engine.
    measurements: FxHashMap<String, Vec<String>>,
    retention: Option<Duration>,
}

/// One logical database with lock-striped series storage.
#[derive(Debug)]
pub struct Database {
    /// The stripes; length is a power of two so shard selection is a mask.
    shards: Box<[RwLock<Shard>]>,
    meta: RwLock<Meta>,
}

impl Default for Database {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl Database {
    /// An empty database with no retention limit and the default shard
    /// count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty database with `shards` lock stripes (rounded up to a power
    /// of two; `1` reproduces the old single-lock write path).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Database {
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            meta: RwLock::new(Meta::default()),
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &str) -> &RwLock<Shard> {
        &self.shards[(fx_hash(key.as_bytes()) as usize) & (self.shards.len() - 1)]
    }

    /// Sets the retention window (points older than `now - retention` are
    /// dropped by [`enforce_retention`](Self::enforce_retention)).
    pub fn set_retention(&self, retention: Option<Duration>) {
        self.meta.write().retention = retention;
    }

    /// Fast path: the series exists — one shard write lock, zero
    /// allocations. Returns `false` when the series is missing.
    fn try_write_fields<'f>(
        &self,
        key: &str,
        ts: i64,
        fields: impl Iterator<Item = (&'f str, &'f FieldValue)>,
    ) -> bool {
        let mut shard = self.shard_of(key).write();
        let Some(series) = shard.series.get_mut(key) else { return false };
        let series = Arc::make_mut(series);
        for (field, value) in fields {
            series.insert(field, ts, value.clone());
        }
        true
    }

    /// Slow path: the series may need creating. Lock order is `meta` →
    /// shard, and the presence check is re-run under both locks because
    /// another writer can create the series between a failed fast path and
    /// here. The series map and the measurements index are each updated in
    /// a single entry-API pass.
    fn create_and_write<'f>(
        &self,
        key: &str,
        measurement: &str,
        tags: &[(String, String)],
        ts: i64,
        fields: impl Iterator<Item = (&'f str, &'f FieldValue)>,
    ) {
        let mut meta = self.meta.write();
        let mut shard = self.shard_of(key).write();
        let series = match shard.series.entry(key.to_string()) {
            Entry::Occupied(slot) => Arc::make_mut(slot.into_mut()),
            Entry::Vacant(slot) => {
                meta.measurements
                    .entry(measurement.to_string())
                    .or_default()
                    .push(key.to_string());
                Arc::make_mut(slot.insert(Arc::new(Series::new(measurement, tags))))
            }
        };
        for (field, value) in fields {
            series.insert(field, ts, value.clone());
        }
    }

    /// Writes one already-parsed point.
    pub fn write_point(&self, point: &lms_lineproto::Point, default_ts: i64) {
        let key = point.series_key();
        let ts = point.timestamp().unwrap_or(default_ts);
        let fields = || point.fields().iter().map(|(k, v)| (k.as_str(), v));
        if !self.try_write_fields(&key, ts, fields()) {
            self.create_and_write(&key, point.measurement(), point.tags(), ts, fields());
        }
    }

    /// Writes one parsed line without materializing an owned
    /// [`Point`](lms_lineproto::Point).
    ///
    /// `key_buf` is caller-provided scratch reused across a batch; for
    /// series the database has already seen, the write performs no
    /// allocation at all (the buffer is rewritten in place and field values
    /// land directly in the columns).
    pub fn write_parsed(&self, line: &ParsedLine<'_>, ts: i64, key_buf: &mut String) {
        key_buf.clear();
        line.series_key_into(key_buf);
        let fields = || line.fields.iter().map(|(k, v)| (k.as_ref(), v));
        if !self.try_write_fields(key_buf, ts, fields()) {
            let tags = line.canonical_tags();
            self.create_and_write(key_buf, line.measurement.as_ref(), &tags, ts, fields());
        }
    }

    /// Snapshots all series of a measurement, in first-write order.
    ///
    /// The returned `Arc`s are consistent point-in-time views: a writer
    /// updating the same series afterwards copies it (`Arc::make_mut`)
    /// instead of mutating the snapshot.
    pub fn series_of(&self, measurement: &str) -> Vec<Arc<Series>> {
        let meta = self.meta.read();
        let Some(keys) = meta.measurements.get(measurement) else {
            return Vec::new();
        };
        keys.iter().filter_map(|k| self.shard_of(k).read().series.get(k).cloned()).collect()
    }

    /// All measurement names, sorted.
    pub fn measurement_names(&self) -> Vec<String> {
        let meta = self.meta.read();
        let mut names: Vec<String> = meta.measurements.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Total series count.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().series.len()).sum()
    }

    /// Total stored points.
    pub fn point_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().series.values().map(|s| s.point_count()).sum::<usize>())
            .sum()
    }

    /// Applies the retention policy relative to `now_ns`; returns evicted
    /// point count. Emptied series and measurements are garbage-collected.
    ///
    /// Holds the `meta` write lock across the sweep (lock order `meta` →
    /// shards ascending) so no series can be registered concurrently;
    /// writes to *existing* series proceed shard by shard.
    pub fn enforce_retention(&self, now_ns: i64) -> usize {
        let mut meta = self.meta.write();
        let Some(retention) = meta.retention else { return 0 };
        let cutoff = now_ns.saturating_sub(retention.as_nanos().min(i64::MAX as u128) as i64);
        let mut evicted = 0;
        let mut removed: FxHashSet<String> = FxHashSet::default();
        for shard in self.shards.iter() {
            let mut shard = shard.write();
            shard.series.retain(|key, series| {
                let series = Arc::make_mut(series);
                evicted += series.evict_before(cutoff);
                if series.is_empty() {
                    removed.insert(key.clone());
                    false
                } else {
                    true
                }
            });
        }
        if !removed.is_empty() {
            meta.measurements.retain(|_, keys| {
                keys.retain(|k| !removed.contains(k));
                !keys.is_empty()
            });
        }
        evicted
    }
}

struct Inner {
    databases: FxHashMap<String, Arc<Database>>,
    /// Create databases on first write (convenience for a self-contained
    /// stack; real InfluxDB requires CREATE DATABASE).
    auto_create: bool,
    /// Stripe count for newly created databases.
    shard_count: usize,
}

/// Thread-safe embedded handle to the whole storage.
#[derive(Clone)]
pub struct Influx {
    inner: Arc<RwLock<Inner>>,
    clock: Clock,
}

impl Influx {
    /// Creates an empty storage with auto-create enabled and the default
    /// shard count.
    pub fn new(clock: Clock) -> Self {
        Self::with_shards(clock, DEFAULT_SHARDS)
    }

    /// Creates an empty storage whose databases use `shards` lock stripes.
    /// `with_shards(clock, 1)` reproduces the old single-lock write path
    /// (the benchmark baseline).
    pub fn with_shards(clock: Clock, shards: usize) -> Self {
        Influx {
            inner: Arc::new(RwLock::new(Inner {
                databases: FxHashMap::default(),
                auto_create: true,
                shard_count: shards.max(1).next_power_of_two(),
            })),
            clock,
        }
    }

    /// Disables database auto-creation (writes to unknown databases then
    /// fail like real InfluxDB).
    pub fn set_auto_create(&self, enabled: bool) {
        self.inner.write().auto_create = enabled;
    }

    /// Creates a database (idempotent).
    pub fn create_database(&self, name: &str) {
        let mut inner = self.inner.write();
        let shards = inner.shard_count;
        inner
            .databases
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Database::with_shards(shards)));
    }

    /// Sets the retention window of a database (creating it if needed).
    pub fn set_retention(&self, db: &str, retention: Option<Duration>) {
        let mut inner = self.inner.write();
        let shards = inner.shard_count;
        inner
            .databases
            .entry(db.to_string())
            .or_insert_with(|| Arc::new(Database::with_shards(shards)))
            .set_retention(retention);
    }

    /// Names of all databases, sorted.
    pub fn database_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().databases.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The clock used for server-assigned timestamps.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Looks up a database handle (read lock only).
    fn database(&self, db: &str) -> Option<Arc<Database>> {
        self.inner.read().databases.get(db).cloned()
    }

    /// Looks up a database, creating it when auto-create permits. Only the
    /// first write to a new database pays the outer write lock.
    fn database_or_create(&self, db: &str) -> Result<Arc<Database>> {
        if let Some(found) = self.database(db) {
            return Ok(found);
        }
        let mut inner = self.inner.write();
        if !inner.auto_create && !inner.databases.contains_key(db) {
            return Err(Error::not_found(format!("database `{db}`")));
        }
        let shards = inner.shard_count;
        Ok(inner
            .databases
            .entry(db.to_string())
            .or_insert_with(|| Arc::new(Database::with_shards(shards)))
            .clone())
    }

    /// Writes a line-protocol batch. Malformed lines are counted and
    /// skipped, not fatal (the paper's stack must survive a misbehaving
    /// collector). Fails only when the database does not exist and
    /// auto-create is off.
    ///
    /// Concurrent batches interleave at per-line granularity: each line
    /// takes one shard write lock, so writers to disjoint series never
    /// contend.
    pub fn write_lines(&self, db: &str, batch: &str, opts: WriteOptions) -> Result<WriteOutcome> {
        let parsed = parse_batch(batch);
        let default_ts = self.clock.now().nanos();
        let database = self.database_or_create(db)?;
        let mut outcome = WriteOutcome {
            written: 0,
            rejected: parsed.errors.len(),
            first_error: parsed
                .errors
                .first()
                .map(|(line, e)| (*line, e.to_string())),
        };
        let mut key_buf = String::with_capacity(64);
        for line in &parsed.lines {
            let ts = line.timestamp.map(|t| opts.precision.to_nanos(t)).unwrap_or(default_ts);
            database.write_parsed(line, ts, &mut key_buf);
            outcome.written += 1;
        }
        Ok(outcome)
    }

    /// Runs a query statement string against a database.
    pub fn query(&self, db: &str, q: &str) -> Result<QueryResult> {
        let stmt = Statement::parse(q)?;
        match stmt {
            Statement::CreateDatabase(name) => {
                self.create_database(&name);
                Ok(QueryResult::empty())
            }
            Statement::ShowDatabases => Ok(QueryResult {
                series: vec![crate::exec::ResultSeries {
                    name: "databases".into(),
                    tags: Vec::new(),
                    columns: vec!["name".into()],
                    values: self
                        .database_names()
                        .into_iter()
                        .map(|n| vec![lms_util::Json::str(n)])
                        .collect(),
                }],
            }),
            other => {
                let now = self.clock.now().nanos();
                let database = self
                    .database(db)
                    .ok_or_else(|| Error::not_found(format!("database `{db}`")))?;
                exec::execute(&other, &database, now)
            }
        }
    }

    /// Applies retention across all databases; returns evicted point count.
    pub fn enforce_retention(&self) -> usize {
        let now = self.clock.now().nanos();
        let databases: Vec<Arc<Database>> =
            self.inner.read().databases.values().cloned().collect();
        databases.iter().map(|d| d.enforce_retention(now)).sum()
    }

    /// Point count in one database (0 when absent).
    pub fn point_count(&self, db: &str) -> usize {
        self.database(db).map(|d| d.point_count()).unwrap_or(0)
    }

    /// Series count in one database (0 when absent).
    pub fn series_count(&self, db: &str) -> usize {
        self.database(db).map(|d| d.series_count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_util::Timestamp;

    fn influx() -> Influx {
        Influx::new(Clock::simulated(Timestamp::from_secs(1000)))
    }

    #[test]
    fn write_and_count() {
        let ix = influx();
        let out = ix
            .write_lines("lms", "cpu,hostname=h1 value=1 1\ncpu,hostname=h2 value=2 2", Default::default())
            .unwrap();
        assert_eq!(out.written, 2);
        assert_eq!(out.rejected, 0);
        assert_eq!(ix.series_count("lms"), 2);
        assert_eq!(ix.point_count("lms"), 2);
    }

    #[test]
    fn malformed_lines_counted_not_fatal() {
        let ix = influx();
        let out = ix
            .write_lines("lms", "good v=1 1\nbad line here\ngood v=2 2", Default::default())
            .unwrap();
        assert_eq!(out.written, 2);
        assert_eq!(out.rejected, 1);
        let (line, msg) = out.first_error.unwrap();
        assert_eq!(line, 2);
        assert!(!msg.is_empty());
    }

    #[test]
    fn missing_timestamp_gets_server_time() {
        let ix = influx();
        ix.write_lines("lms", "cpu value=1", Default::default()).unwrap();
        let r = ix.query("lms", "SELECT value FROM cpu").unwrap();
        let ts = r.series[0].values[0][0].as_i64().unwrap();
        assert_eq!(ts, Timestamp::from_secs(1000).nanos());
    }

    #[test]
    fn precision_scaling_applies() {
        let ix = influx();
        ix.write_lines(
            "lms",
            "cpu value=1 1000",
            WriteOptions { precision: Precision::Seconds },
        )
        .unwrap();
        let r = ix.query("lms", "SELECT value FROM cpu").unwrap();
        assert_eq!(r.series[0].values[0][0].as_i64().unwrap(), 1_000_000_000_000);
    }

    #[test]
    fn auto_create_toggle() {
        let ix = influx();
        ix.set_auto_create(false);
        assert!(ix.write_lines("nope", "m v=1 1", Default::default()).is_err());
        ix.create_database("nope");
        assert!(ix.write_lines("nope", "m v=1 1", Default::default()).is_ok());
        assert_eq!(ix.database_names(), vec!["nope"]);
    }

    #[test]
    fn create_database_via_query() {
        let ix = influx();
        ix.set_auto_create(false);
        ix.query("", "CREATE DATABASE userdb").unwrap();
        assert!(ix.database_names().contains(&"userdb".to_string()));
    }

    #[test]
    fn show_databases() {
        let ix = influx();
        ix.create_database("lms");
        ix.create_database("user_alice");
        let r = ix.query("", "SHOW DATABASES").unwrap();
        let names: Vec<&str> =
            r.series[0].values.iter().map(|v| v[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["lms", "user_alice"]);
    }

    #[test]
    fn retention_evicts_old_points() {
        let ix = influx();
        ix.set_retention("lms", Some(Duration::from_secs(100)));
        // now = 1000s; points at 850s (stale) and 950s (fresh)
        ix.write_lines("lms", "m v=1 850000000000\nm v=2 950000000000", Default::default())
            .unwrap();
        assert_eq!(ix.point_count("lms"), 2);
        let evicted = ix.enforce_retention();
        assert_eq!(evicted, 1);
        assert_eq!(ix.point_count("lms"), 1);
    }

    #[test]
    fn retention_gc_removes_empty_series() {
        let ix = influx();
        ix.set_retention("lms", Some(Duration::from_secs(10)));
        ix.write_lines("lms", "old v=1 1", Default::default()).unwrap();
        ix.enforce_retention();
        assert_eq!(ix.series_count("lms"), 0);
        let r = ix.query("lms", "SHOW MEASUREMENTS").unwrap();
        assert!(r.series.is_empty() || r.series[0].values.is_empty());
    }

    #[test]
    fn duplicate_point_overwrites() {
        let ix = influx();
        ix.write_lines("lms", "m,host=a v=1 5\nm,host=a v=2 5", Default::default()).unwrap();
        assert_eq!(ix.point_count("lms"), 1);
        let r = ix.query("lms", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values[0][1].as_f64().unwrap(), 2.0);
    }

    #[test]
    fn shard_count_is_power_of_two() {
        assert_eq!(Database::with_shards(1).shard_count(), 1);
        assert_eq!(Database::with_shards(3).shard_count(), 4);
        assert_eq!(Database::with_shards(16).shard_count(), 16);
        assert_eq!(Database::new().shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    fn single_shard_engine_behaves_identically() {
        // shards=1 is the old single-lock layout; results must match the
        // sharded engine exactly.
        let batch = "cpu,hostname=h1 v=1 1\ncpu,hostname=h2 v=2 2\nmem,hostname=h1 v=3 3";
        let sharded = influx();
        let single = Influx::with_shards(Clock::simulated(Timestamp::from_secs(1000)), 1);
        sharded.write_lines("lms", batch, Default::default()).unwrap();
        single.write_lines("lms", batch, Default::default()).unwrap();
        for q in ["SELECT v FROM cpu", "SHOW MEASUREMENTS", "SELECT mean(v) FROM cpu"] {
            assert_eq!(
                sharded.query("lms", q).unwrap(),
                single.query("lms", q).unwrap(),
                "query {q} diverged between shard counts"
            );
        }
        assert_eq!(sharded.point_count("lms"), single.point_count("lms"));
    }

    #[test]
    fn write_parsed_matches_write_point() {
        // The allocation-free parsed-line path and the owned Point path
        // must store identical data, including duplicate tag/field keys.
        let lines = "m,b=2,a=1,a=9 v=1,v=2,w=3i 5\nm,a=9,b=2 v=7 5";
        let via_parsed = influx();
        via_parsed.write_lines("lms", lines, Default::default()).unwrap();

        let via_point = influx();
        {
            let db = via_point.database_or_create("lms").unwrap();
            for parsed in lms_lineproto::parse_batch(lines).lines {
                let point = parsed.to_point();
                db.write_point(&point, 0);
            }
        }
        for q in ["SELECT v, w FROM m", "SHOW FIELD KEYS FROM m"] {
            assert_eq!(
                via_parsed.query("lms", q).unwrap(),
                via_point.query("lms", q).unwrap(),
                "query {q} diverged between write paths"
            );
        }
        assert_eq!(via_parsed.series_count("lms"), 1);
        assert_eq!(via_point.series_count("lms"), 1);
    }

    #[test]
    fn concurrent_writers_to_one_database() {
        let ix = influx();
        ix.create_database("lms");
        std::thread::scope(|scope| {
            for w in 0..4 {
                let ix = ix.clone();
                scope.spawn(move || {
                    for batch in 0..10 {
                        let mut text = String::new();
                        for i in 0..25 {
                            let ts = (w * 1000 + batch * 25 + i) as i64;
                            text.push_str(&format!("m,writer=w{w} v={i} {ts}\n"));
                        }
                        ix.write_lines("lms", &text, Default::default()).unwrap();
                    }
                });
            }
        });
        assert_eq!(ix.point_count("lms"), 4 * 10 * 25);
        assert_eq!(ix.series_count("lms"), 4);
    }
}
