//! Databases and the embedded [`Influx`] handle.
//!
//! A [`Database`] owns the series of one logical database (the paper's
//! global database, plus optional per-user databases created by the
//! router's duplication feature). [`Influx`] bundles multiple databases
//! behind one thread-safe handle — the same object backs the embedded API
//! and the HTTP server.

use crate::exec::{self, QueryResult};
use crate::query::Statement;
use crate::storage::Series;
use lms_lineproto::{parse_batch, Precision};
use lms_util::{Clock, Error, FxHashMap, Result};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// Options for a write request.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    /// Precision of timestamps in the batch (default nanoseconds).
    pub precision: Precision,
}

/// Outcome of writing a batch: how many points landed, how many lines were
/// rejected (with the first error kept for reporting).
#[derive(Debug, Default)]
pub struct WriteOutcome {
    /// Accepted points.
    pub written: usize,
    /// Rejected lines.
    pub rejected: usize,
    /// First rejection, if any (line number, message).
    pub first_error: Option<(usize, String)>,
}

/// One logical database.
#[derive(Debug, Default)]
pub struct Database {
    series: FxHashMap<String, Series>,
    /// measurement → series keys (for query fan-out).
    measurements: FxHashMap<String, Vec<String>>,
    retention: Option<Duration>,
}

impl Database {
    /// An empty database with no retention limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the retention window (points older than `now - retention` are
    /// dropped by [`enforce_retention`](Self::enforce_retention)).
    pub fn set_retention(&mut self, retention: Option<Duration>) {
        self.retention = retention;
    }

    /// Writes one already-parsed point.
    pub fn write_point(&mut self, point: &lms_lineproto::Point, default_ts: i64) {
        let key = point.series_key();
        let ts = point.timestamp().unwrap_or(default_ts);
        if !self.series.contains_key(&key) {
            self.measurements
                .entry(point.measurement().to_string())
                .or_default()
                .push(key.clone());
            self.series.insert(key.clone(), Series::new(point.measurement(), point.tags()));
        }
        let series = self.series.get_mut(&key).expect("just inserted");
        for (field, value) in point.fields() {
            series.insert(field, ts, value.clone());
        }
    }

    /// All series of a measurement.
    pub fn series_of(&self, measurement: &str) -> Vec<&Series> {
        self.measurements
            .get(measurement)
            .into_iter()
            .flatten()
            .filter_map(|k| self.series.get(k))
            .collect()
    }

    /// All measurement names, sorted.
    pub fn measurement_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.measurements.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Total series count.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total stored points.
    pub fn point_count(&self) -> usize {
        self.series.values().map(Series::point_count).sum()
    }

    /// Applies the retention policy relative to `now_ns`; returns evicted
    /// point count. Emptied series and measurements are garbage-collected.
    pub fn enforce_retention(&mut self, now_ns: i64) -> usize {
        let Some(retention) = self.retention else { return 0 };
        let cutoff = now_ns.saturating_sub(retention.as_nanos().min(i64::MAX as u128) as i64);
        let mut evicted = 0;
        self.series.retain(|_, s| {
            evicted += s.evict_before(cutoff);
            !s.is_empty()
        });
        let series = &self.series;
        self.measurements.retain(|_, keys| {
            keys.retain(|k| series.contains_key(k));
            !keys.is_empty()
        });
        evicted
    }
}

struct Inner {
    databases: FxHashMap<String, Database>,
    /// Create databases on first write (convenience for a self-contained
    /// stack; real InfluxDB requires CREATE DATABASE).
    auto_create: bool,
}

/// Thread-safe embedded handle to the whole storage.
#[derive(Clone)]
pub struct Influx {
    inner: Arc<RwLock<Inner>>,
    clock: Clock,
}

impl Influx {
    /// Creates an empty storage with auto-create enabled.
    pub fn new(clock: Clock) -> Self {
        Influx {
            inner: Arc::new(RwLock::new(Inner {
                databases: FxHashMap::default(),
                auto_create: true,
            })),
            clock,
        }
    }

    /// Disables database auto-creation (writes to unknown databases then
    /// fail like real InfluxDB).
    pub fn set_auto_create(&self, enabled: bool) {
        self.inner.write().auto_create = enabled;
    }

    /// Creates a database (idempotent).
    pub fn create_database(&self, name: &str) {
        self.inner.write().databases.entry(name.to_string()).or_default();
    }

    /// Sets the retention window of a database (creating it if needed).
    pub fn set_retention(&self, db: &str, retention: Option<Duration>) {
        let mut inner = self.inner.write();
        inner.databases.entry(db.to_string()).or_default().set_retention(retention);
    }

    /// Names of all databases, sorted.
    pub fn database_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().databases.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The clock used for server-assigned timestamps.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Writes a line-protocol batch. Malformed lines are counted and
    /// skipped, not fatal (the paper's stack must survive a misbehaving
    /// collector). Fails only when the database does not exist and
    /// auto-create is off.
    pub fn write_lines(&self, db: &str, batch: &str, opts: WriteOptions) -> Result<WriteOutcome> {
        let parsed = parse_batch(batch);
        let default_ts = self.clock.now().nanos();
        let mut inner = self.inner.write();
        if !inner.databases.contains_key(db) {
            if inner.auto_create {
                inner.databases.insert(db.to_string(), Database::default());
            } else {
                return Err(Error::not_found(format!("database `{db}`")));
            }
        }
        let database = inner.databases.get_mut(db).expect("ensured above");
        let mut outcome = WriteOutcome {
            written: 0,
            rejected: parsed.errors.len(),
            first_error: parsed
                .errors
                .first()
                .map(|(line, e)| (*line, e.to_string())),
        };
        for line in &parsed.lines {
            let mut point = line.to_point();
            let ts = point.timestamp().map(|t| opts.precision.to_nanos(t)).unwrap_or(default_ts);
            point.set_timestamp(ts);
            database.write_point(&point, default_ts);
            outcome.written += 1;
        }
        Ok(outcome)
    }

    /// Runs a query statement string against a database.
    pub fn query(&self, db: &str, q: &str) -> Result<QueryResult> {
        let stmt = Statement::parse(q)?;
        match stmt {
            Statement::CreateDatabase(name) => {
                self.create_database(&name);
                Ok(QueryResult::empty())
            }
            Statement::ShowDatabases => Ok(QueryResult {
                series: vec![crate::exec::ResultSeries {
                    name: "databases".into(),
                    tags: Vec::new(),
                    columns: vec!["name".into()],
                    values: self
                        .database_names()
                        .into_iter()
                        .map(|n| vec![lms_util::Json::str(n)])
                        .collect(),
                }],
            }),
            other => {
                let now = self.clock.now().nanos();
                let inner = self.inner.read();
                let database = inner
                    .databases
                    .get(db)
                    .ok_or_else(|| Error::not_found(format!("database `{db}`")))?;
                exec::execute(&other, database, now)
            }
        }
    }

    /// Applies retention across all databases; returns evicted point count.
    pub fn enforce_retention(&self) -> usize {
        let now = self.clock.now().nanos();
        let mut inner = self.inner.write();
        inner.databases.values_mut().map(|d| d.enforce_retention(now)).sum()
    }

    /// Point count in one database (0 when absent).
    pub fn point_count(&self, db: &str) -> usize {
        self.inner.read().databases.get(db).map(Database::point_count).unwrap_or(0)
    }

    /// Series count in one database (0 when absent).
    pub fn series_count(&self, db: &str) -> usize {
        self.inner.read().databases.get(db).map(Database::series_count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_util::Timestamp;

    fn influx() -> Influx {
        Influx::new(Clock::simulated(Timestamp::from_secs(1000)))
    }

    #[test]
    fn write_and_count() {
        let ix = influx();
        let out = ix
            .write_lines("lms", "cpu,hostname=h1 value=1 1\ncpu,hostname=h2 value=2 2", Default::default())
            .unwrap();
        assert_eq!(out.written, 2);
        assert_eq!(out.rejected, 0);
        assert_eq!(ix.series_count("lms"), 2);
        assert_eq!(ix.point_count("lms"), 2);
    }

    #[test]
    fn malformed_lines_counted_not_fatal() {
        let ix = influx();
        let out = ix
            .write_lines("lms", "good v=1 1\nbad line here\ngood v=2 2", Default::default())
            .unwrap();
        assert_eq!(out.written, 2);
        assert_eq!(out.rejected, 1);
        let (line, msg) = out.first_error.unwrap();
        assert_eq!(line, 2);
        assert!(!msg.is_empty());
    }

    #[test]
    fn missing_timestamp_gets_server_time() {
        let ix = influx();
        ix.write_lines("lms", "cpu value=1", Default::default()).unwrap();
        let r = ix.query("lms", "SELECT value FROM cpu").unwrap();
        let ts = r.series[0].values[0][0].as_i64().unwrap();
        assert_eq!(ts, Timestamp::from_secs(1000).nanos());
    }

    #[test]
    fn precision_scaling_applies() {
        let ix = influx();
        ix.write_lines(
            "lms",
            "cpu value=1 1000",
            WriteOptions { precision: Precision::Seconds },
        )
        .unwrap();
        let r = ix.query("lms", "SELECT value FROM cpu").unwrap();
        assert_eq!(r.series[0].values[0][0].as_i64().unwrap(), 1_000_000_000_000);
    }

    #[test]
    fn auto_create_toggle() {
        let ix = influx();
        ix.set_auto_create(false);
        assert!(ix.write_lines("nope", "m v=1 1", Default::default()).is_err());
        ix.create_database("nope");
        assert!(ix.write_lines("nope", "m v=1 1", Default::default()).is_ok());
        assert_eq!(ix.database_names(), vec!["nope"]);
    }

    #[test]
    fn create_database_via_query() {
        let ix = influx();
        ix.set_auto_create(false);
        ix.query("", "CREATE DATABASE userdb").unwrap();
        assert!(ix.database_names().contains(&"userdb".to_string()));
    }

    #[test]
    fn show_databases() {
        let ix = influx();
        ix.create_database("lms");
        ix.create_database("user_alice");
        let r = ix.query("", "SHOW DATABASES").unwrap();
        let names: Vec<&str> =
            r.series[0].values.iter().map(|v| v[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["lms", "user_alice"]);
    }

    #[test]
    fn retention_evicts_old_points() {
        let ix = influx();
        ix.set_retention("lms", Some(Duration::from_secs(100)));
        // now = 1000s; points at 850s (stale) and 950s (fresh)
        ix.write_lines("lms", "m v=1 850000000000\nm v=2 950000000000", Default::default())
            .unwrap();
        assert_eq!(ix.point_count("lms"), 2);
        let evicted = ix.enforce_retention();
        assert_eq!(evicted, 1);
        assert_eq!(ix.point_count("lms"), 1);
    }

    #[test]
    fn retention_gc_removes_empty_series() {
        let ix = influx();
        ix.set_retention("lms", Some(Duration::from_secs(10)));
        ix.write_lines("lms", "old v=1 1", Default::default()).unwrap();
        ix.enforce_retention();
        assert_eq!(ix.series_count("lms"), 0);
        let r = ix.query("lms", "SHOW MEASUREMENTS").unwrap();
        assert!(r.series.is_empty() || r.series[0].values.is_empty());
    }

    #[test]
    fn duplicate_point_overwrites() {
        let ix = influx();
        ix.write_lines("lms", "m,host=a v=1 5\nm,host=a v=2 5", Default::default()).unwrap();
        assert_eq!(ix.point_count("lms"), 1);
        let r = ix.query("lms", "SELECT v FROM m").unwrap();
        assert_eq!(r.series[0].values[0][1].as_f64().unwrap(), 2.0);
    }
}
