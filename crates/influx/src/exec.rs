//! Query execution over [`Database`] storage, with InfluxDB-shaped results.

use crate::db::{Database, QueryTuning};
use crate::query::{AggFunc, Condition, Fill, Projection, Select, Statement};
use crate::storage::{Column, Series};
use lms_lineproto::FieldValue;
use lms_rollup::{align_down, align_up, stat_field};
use lms_tsm::SealedBlock;
use lms_util::{Error, Json, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The rollup tier databases available to serve aggregate queries for one
/// base database, plus its watermark. Built by `Influx::tier_ctx`.
pub struct TierCtx {
    /// `(window_ns, tier database)`, coarsest tier first — the planner
    /// takes the first tier whose window divides the requested output
    /// window.
    pub tiers: Vec<(i64, Arc<Database>)>,
    /// Rollup watermark of the base database: every raw point with
    /// `ts < watermark` has been incorporated into every tier.
    pub watermark: i64,
}

/// One result series (matches InfluxDB's JSON `series` element).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSeries {
    /// Measurement (or meta-result name like `measurements`).
    pub name: String,
    /// Group-by tag values, sorted by key.
    pub tags: Vec<(String, String)>,
    /// Column names; first is always `time` for data queries.
    pub columns: Vec<String>,
    /// Row-major values.
    pub values: Vec<Vec<Json>>,
}

/// A full query result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Result series (one per group).
    pub series: Vec<ResultSeries>,
    /// True when the result is incomplete: a cluster scatter-gather read
    /// could not reach every replica, so series owned exclusively by the
    /// unreachable node(s) may be missing. Single-node results are never
    /// partial. Serialized as a top-level `"partial": true` (and the
    /// router adds an `X-Lms-Partial` header); omitted when false so the
    /// wire format stays InfluxDB-shaped in the common case.
    pub partial: bool,
}

impl QueryResult {
    /// An empty result.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Renders the InfluxDB `/query` response JSON.
    pub fn to_json(&self) -> Json {
        let series = self
            .series
            .iter()
            .map(|s| {
                let mut obj = vec![("name".to_string(), Json::str(&s.name))];
                if !s.tags.is_empty() {
                    obj.push((
                        "tags".to_string(),
                        Json::Obj(
                            s.tags
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::str(v)))
                                .collect(),
                        ),
                    ));
                }
                obj.push((
                    "columns".to_string(),
                    Json::arr(s.columns.iter().map(Json::str)),
                ));
                obj.push((
                    "values".to_string(),
                    Json::arr(s.values.iter().map(|row| Json::arr(row.iter().cloned()))),
                ));
                Json::Obj(obj)
            })
            .collect::<Vec<_>>();
        let mut top = vec![(
            "results".to_string(),
            Json::arr([Json::obj([
                ("statement_id", Json::from(0i64)),
                ("series", Json::Arr(series)),
            ])]),
        )];
        if self.partial {
            top.push(("partial".to_string(), Json::Bool(true)));
        }
        Json::Obj(top)
    }

    /// Parses the InfluxDB `/query` response JSON (client side). Also
    /// surfaces `{"error": "..."}` responses as errors.
    pub fn from_json(json: &Json) -> Result<QueryResult> {
        if let Some(err) = json.get("error").and_then(Json::as_str) {
            return Err(Error::Remote { status: 400, message: err.to_string() });
        }
        let mut out = QueryResult::empty();
        out.partial = json.get("partial").and_then(Json::as_bool).unwrap_or(false);
        let results = json
            .get("results")
            .and_then(Json::as_arr)
            .ok_or_else(|| Error::protocol("query response missing `results`"))?;
        for result in results {
            if let Some(err) = result.get("error").and_then(Json::as_str) {
                return Err(Error::Remote { status: 400, message: err.to_string() });
            }
            let Some(series) = result.get("series").and_then(Json::as_arr) else {
                continue;
            };
            for s in series {
                let name = s
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                let mut tags: Vec<(String, String)> = s
                    .get("tags")
                    .and_then(Json::as_obj)
                    .map(|o| {
                        o.iter()
                            .map(|(k, v)| {
                                (k.clone(), v.as_str().unwrap_or_default().to_string())
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                tags.sort();
                let columns = s
                    .get("columns")
                    .and_then(Json::as_arr)
                    .map(|a| {
                        a.iter().map(|c| c.as_str().unwrap_or_default().to_string()).collect()
                    })
                    .unwrap_or_default();
                let values = s
                    .get("values")
                    .and_then(Json::as_arr)
                    .map(|rows| {
                        rows.iter()
                            .map(|r| r.as_arr().map(<[Json]>::to_vec).unwrap_or_default())
                            .collect()
                    })
                    .unwrap_or_default();
                out.series.push(ResultSeries { name, tags, columns, values });
            }
        }
        Ok(out)
    }
}

fn json_of(v: &FieldValue) -> Json {
    match v {
        FieldValue::Float(f) => Json::Num(*f),
        FieldValue::Integer(i) => Json::Int(*i),
        FieldValue::Boolean(b) => Json::Bool(*b),
        FieldValue::Text(s) => Json::str(s.as_str()),
    }
}

/// Executes a statement against one database. `now_ns` anchors `now()`.
pub fn execute(stmt: &Statement, db: &Database, now_ns: i64) -> Result<QueryResult> {
    execute_tiered(stmt, db, None, now_ns)
}

/// [`execute`] with an optional rollup tier context: aggregate SELECTs
/// transparently resolve each time range to the coarsest tier that
/// satisfies the requested window and stitch raw edges around it.
pub fn execute_tiered(
    stmt: &Statement,
    db: &Database,
    tiers: Option<&TierCtx>,
    now_ns: i64,
) -> Result<QueryResult> {
    match stmt {
        Statement::Select(sel) => select(sel, db, tiers, now_ns),
        Statement::ShowMeasurements => {
            let values: Vec<Vec<Json>> =
                db.measurement_names().iter().map(|m| vec![Json::str(m.as_str())]).collect();
            Ok(QueryResult {
                series: vec![ResultSeries {
                    name: "measurements".into(),
                    tags: Vec::new(),
                    columns: vec!["name".into()],
                    values,
                }],
                partial: false,
            })
        }
        Statement::ShowTagValues { measurement, key } => {
            let mut values: Vec<String> = db
                .series_of(measurement)
                .iter()
                .filter_map(|s| s.tag(key))
                .map(str::to_string)
                .collect();
            values.sort_unstable();
            values.dedup();
            Ok(QueryResult {
                series: vec![ResultSeries {
                    name: measurement.clone(),
                    tags: Vec::new(),
                    columns: vec!["key".into(), "value".into()],
                    values: values
                        .into_iter()
                        .map(|v| vec![Json::str(key.as_str()), Json::str(v)])
                        .collect(),
                }],
                partial: false,
            })
        }
        Statement::ShowFieldKeys { measurement } => {
            let snapshot = db.series_of(measurement);
            let mut fields: Vec<&str> =
                snapshot.iter().flat_map(|s| s.field_names()).collect();
            fields.sort_unstable();
            fields.dedup();
            Ok(QueryResult {
                series: vec![ResultSeries {
                    name: measurement.clone(),
                    tags: Vec::new(),
                    columns: vec!["fieldKey".into()],
                    values: fields.into_iter().map(|f| vec![Json::str(f)]).collect(),
                }],
                partial: false,
            })
        }
        // Storage-level statements are handled by `Influx::query` before
        // execution reaches a single database.
        Statement::CreateDatabase(_) | Statement::ShowDatabases => Ok(QueryResult::empty()),
    }
}

/// The resolved time range `[start, end)` of a SELECT.
fn time_range(sel: &Select, now_ns: i64) -> (i64, i64) {
    let mut start = i64::MIN;
    let mut end = i64::MAX;
    for c in &sel.conditions {
        match c {
            Condition::TimeGe(v) => start = start.max(v.resolve(now_ns)),
            Condition::TimeGt(v) => start = start.max(v.resolve(now_ns).saturating_add(1)),
            Condition::TimeLe(v) => end = end.min(v.resolve(now_ns).saturating_add(1)),
            Condition::TimeLt(v) => end = end.min(v.resolve(now_ns)),
            _ => {}
        }
    }
    (start, end)
}

fn series_matches(series: &Series, sel: &Select) -> bool {
    sel.conditions.iter().all(|c| match c {
        Condition::TagEq(k, v) => series.tag(k) == Some(v.as_str()),
        Condition::TagNe(k, v) => series.tag(k) != Some(v.as_str()),
        _ => true,
    })
}

fn select(
    sel: &Select,
    db: &Database,
    tiers: Option<&TierCtx>,
    now_ns: i64,
) -> Result<QueryResult> {
    let (start, end) = time_range(sel, now_ns);
    if start >= end {
        return Ok(QueryResult::empty());
    }
    let tuning = db.query_tuning();
    // Snapshot fans out across the database's shards; the measurement
    // index fixes the series order, so results are identical regardless
    // of shard count.
    let snapshot = db.series_of(&sel.measurement);
    let matching: Vec<&Series> = snapshot
        .iter()
        .map(AsRef::as_ref)
        .filter(|s| series_matches(s, sel))
        .collect();

    let has_agg = sel.projections.iter().any(|p| matches!(p, Projection::Agg(..)));
    let all_agg = sel.projections.iter().all(|p| matches!(p, Projection::Agg(..)));

    // Tier eligibility: only decomposable aggregates can be answered from
    // rollups, and an output window must be a whole multiple of the tier
    // window. The first (coarsest) eligible tier wins.
    let tier_sel: Option<(i64, Arc<Database>)> = tiers.filter(|_| all_agg).and_then(|ctx| {
        ctx.tiers
            .iter()
            .find(|(w, _)| sel.group_time.is_none_or(|g| g % *w == 0))
            .cloned()
    });
    let tier_snapshot: Vec<Arc<Series>> = tier_sel
        .as_ref()
        .map(|(_, tdb)| tdb.series_of(&sel.measurement))
        .unwrap_or_default();
    // Tier series carry the same tag sets as their base series, so tag
    // predicates and GROUP BY keys apply unchanged.
    let tier_matching: Vec<&Series> = tier_snapshot
        .iter()
        .map(AsRef::as_ref)
        .filter(|s| series_matches(s, sel))
        .collect();

    // A series may survive only in the tiers (raw evicted by retention):
    // the query is still answerable, so emptiness requires both layers.
    if matching.is_empty() && tier_matching.is_empty() {
        return Ok(QueryResult::empty());
    }

    // Group series by the values of the GROUP BY tags; `GROUP BY *` pins
    // each full tag set to its own group (used by the router to keep
    // per-series identity when recombining cross-node partials). Base and
    // tier series land in the same group when their keys agree.
    let group_key = |s: &Series| -> Vec<(String, String)> {
        if sel.group_all {
            s.tags().to_vec()
        } else {
            sel.group_tags
                .iter()
                .map(|t| (t.clone(), s.tag(t).unwrap_or("").to_string()))
                .collect()
        }
    };
    // Raw and tier series of one tag-key group, in series order.
    type GroupPair<'a> = (Vec<&'a Series>, Vec<&'a Series>);
    let mut groups: BTreeMap<Vec<(String, String)>, GroupPair<'_>> = BTreeMap::new();
    for s in matching {
        groups.entry(group_key(s)).or_default().0.push(s);
    }
    for s in tier_matching {
        groups.entry(group_key(s)).or_default().1.push(s);
    }

    if has_agg && !all_agg {
        return Err(Error::invalid(
            "query: cannot mix aggregated and raw projections",
        ));
    }
    if sel.group_time.is_some() && !all_agg {
        return Err(Error::invalid("query: GROUP BY time requires aggregations"));
    }

    let grouped = !sel.group_tags.is_empty() || sel.group_all;
    let mut out = QueryResult::empty();
    for (tags, (group, tier_group)) in groups {
        let mut rs = if all_agg {
            let part = match &tier_sel {
                Some((w, _)) if !tier_group.is_empty() => Some(TierPart {
                    series: &tier_group,
                    window_ns: *w,
                    cap: tier_cap(&group, tiers.expect("tier_sel implies ctx").watermark),
                }),
                _ => None,
            };
            aggregate_group(sel, &group, part.as_ref(), start, end, now_ns, tuning)
        } else {
            raw_group(sel, &group, start, end)
        };
        if rs.values.is_empty() && grouped {
            continue; // groups emptied by the time range vanish
        }
        if sel.order_desc {
            rs.values.reverse();
        }
        if let Some(limit) = sel.limit {
            rs.values.truncate(limit);
        }
        rs.tags = tags;
        out.series.push(rs);
    }
    // A completely empty ungrouped result: drop the series entirely.
    out.series.retain(|s| !s.values.is_empty());
    Ok(out)
}

/// Raw projection: merge rows across the group's series by timestamp.
fn raw_group(sel: &Select, group: &[&Series], start: i64, end: i64) -> ResultSeries {
    let fields: Vec<&str> = sel
        .projections
        .iter()
        .map(|p| match p {
            Projection::Field(f) => f.as_str(),
            Projection::Agg(..) => unreachable!("checked by caller"),
        })
        .collect();
    // Rows keyed by (time, source series): fields of the same point merge
    // into one row; distinct series at the same instant stay distinct rows
    // (InfluxDB emits duplicate-timestamp rows too).
    let mut rows: BTreeMap<(i64, usize), Vec<Json>> = BTreeMap::new();
    for (si, series) in group.iter().enumerate() {
        for (fi, field) in fields.iter().enumerate() {
            let Some(col) = series.field(field) else { continue };
            for (ts, value) in col.points_in(start, end) {
                let row = rows
                    .entry((ts, si))
                    .or_insert_with(|| vec![Json::Null; fields.len()]);
                row[fi] = json_of(&value);
            }
        }
    }
    let mut columns = vec!["time".to_string()];
    columns.extend(fields.iter().map(|f| f.to_string()));
    ResultSeries {
        name: sel.measurement.clone(),
        tags: Vec::new(),
        columns,
        values: rows
            .into_iter()
            .map(|((ts, _), mut vals)| {
                let mut row = Vec::with_capacity(vals.len() + 1);
                row.push(Json::Int(ts));
                row.append(&mut vals);
                row
            })
            .collect(),
    }
}

/// A streaming aggregate accumulator: exactly the state one pass of the
/// original per-window executor built, so finalization is byte-for-byte
/// identical when fed the same values in the same order.
#[derive(Debug, Clone)]
struct Acc {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
    first: Option<(i64, FieldValue)>,
    last: Option<(i64, FieldValue)>,
}

impl Default for Acc {
    fn default() -> Self {
        Acc {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            first: None,
            last: None,
        }
    }
}

impl Acc {
    fn add_point(&mut self, ts: i64, value: &FieldValue) {
        self.count += 1;
        if self.first.as_ref().is_none_or(|f| ts < f.0) {
            self.first = Some((ts, value.clone()));
        }
        if self.last.as_ref().is_none_or(|l| ts >= l.0) {
            self.last = Some((ts, value.clone()));
        }
        if let Some(v) = value.as_f64() {
            self.sum += v;
            self.sum_sq += v * v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Consumes a block's pre-aggregated summary. Valid only for blocks the
    /// scan planner proved fully-covered and unshadowed — the block's
    /// points are then exactly the visible points of its time span.
    fn add_summary(&mut self, block: &SealedBlock) {
        let Some(s) = block.summary() else { return };
        self.count += block.count as u64;
        if self.first.as_ref().is_none_or(|f| block.min_ts < f.0) {
            self.first = Some((block.min_ts, s.first.clone()));
        }
        if self.last.as_ref().is_none_or(|l| block.max_ts >= l.0) {
            self.last = Some((block.max_ts, s.last.clone()));
        }
        if s.numeric {
            self.sum += s.sum;
            self.sum_sq += s.sum_sq;
            self.min = self.min.min(s.min);
            self.max = self.max.max(s.max);
        }
    }

    /// Folds a later column's accumulator into this one. `other` must come
    /// from a series later in group order: `first` keeps the earlier
    /// timestamp (first-seen wins ties), `last` the later (last-seen wins),
    /// matching the sequential executor's series iteration order.
    fn merge(&mut self, other: Acc) {
        self.count += other.count;
        if let Some((ts, v)) = other.first {
            if self.first.as_ref().is_none_or(|f| ts < f.0) {
                self.first = Some((ts, v));
            }
        }
        if let Some((ts, v)) = other.last {
            if self.last.as_ref().is_none_or(|l| ts >= l.0) {
                self.last = Some((ts, v));
            }
        }
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn finalize(&self, func: AggFunc) -> Json {
        if self.count == 0 {
            return Json::Null;
        }
        let numeric = self.min.is_finite();
        match func {
            AggFunc::Count => Json::Int(self.count as i64),
            AggFunc::First => {
                self.first.as_ref().map(|(_, v)| json_of(v)).unwrap_or(Json::Null)
            }
            AggFunc::Last => self.last.as_ref().map(|(_, v)| json_of(v)).unwrap_or(Json::Null),
            AggFunc::Mean if numeric => Json::Num(self.sum / self.count as f64),
            AggFunc::Sum if numeric => Json::Num(self.sum),
            AggFunc::Min if numeric => Json::Num(self.min),
            AggFunc::Max if numeric => Json::Num(self.max),
            AggFunc::Stddev if numeric => {
                let n = self.count as f64;
                let var = (self.sum_sq / n - (self.sum / n) * (self.sum / n)).max(0.0);
                Json::Num(var.sqrt())
            }
            _ => Json::Null, // numeric agg over non-numeric values
        }
    }
}

/// Accumulates one column's `[start, end)` scan into per-window buckets
/// (key = epoch-aligned window start; `0` when unwindowed). Summaries and
/// residual points interleave in timestamp order so first/last tie-breaking
/// matches a full sequential decode.
fn column_accs(
    col: &Column,
    start: i64,
    end: i64,
    window: Option<i64>,
    use_summaries: bool,
) -> BTreeMap<i64, Acc> {
    let scan = col.scan(start, end, window, use_summaries);
    let key = |ts: i64| match window {
        Some(w) => ts.div_euclid(w) * w,
        None => 0,
    };
    let mut accs: BTreeMap<i64, Acc> = BTreeMap::new();
    let mut blocks = scan.summarized.into_iter().peekable();
    for (ts, value) in scan.residual {
        while blocks.peek().is_some_and(|b| b.min_ts < ts) {
            let b = blocks.next().expect("peeked");
            accs.entry(key(b.min_ts)).or_default().add_summary(b);
        }
        accs.entry(key(ts)).or_default().add_point(ts, &value);
    }
    for b in blocks {
        accs.entry(key(b.min_ts)).or_default().add_summary(b);
    }
    accs
}

/// Sealed points in range that a scan may have to decode: the threshold
/// input for going parallel. Uses the block time index, not a decode.
fn decode_estimate(col: &Column, start: i64, end: i64) -> usize {
    col.sealed_points_in(start, end)
}

/// Minimum estimated sealed points in range before a group scan fans out
/// to threads: below this, spawn overhead beats the decode savings.
const PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Scans every `(field, series)` column of the group and merges the
/// per-column window accumulators in group order. Columns scan in parallel
/// across a small worker pool when enough sealed data overlaps the range;
/// the merge order is fixed by `(field, series)` index, so the result is
/// identical to the sequential path.
fn scan_group(
    group: &[&Series],
    fields: &[&str],
    start: i64,
    end: i64,
    window: Option<i64>,
    tuning: QueryTuning,
) -> Vec<BTreeMap<i64, Acc>> {
    let jobs: Vec<(usize, &Column)> = fields
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| {
            group.iter().filter_map(move |s| s.field(f)).map(move |c| (fi, c))
        })
        .collect();
    let mut merged: Vec<BTreeMap<i64, Acc>> = (0..fields.len()).map(|_| BTreeMap::new()).collect();
    let parallel = tuning.parallel_scan
        && jobs.len() > 1
        && jobs.iter().map(|&(_, c)| decode_estimate(c, start, end)).sum::<usize>()
            >= PARALLEL_THRESHOLD;
    let maps: Vec<(usize, BTreeMap<i64, Acc>)> = if parallel {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(jobs.len())
            .min(8);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, usize, BTreeMap<i64, Acc>)>();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let jobs = &jobs;
                scope.spawn(move || {
                    for (ji, &(fi, col)) in jobs.iter().enumerate().skip(w).step_by(workers) {
                        let accs = column_accs(col, start, end, window, tuning.use_summaries);
                        if tx.send((ji, fi, accs)).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        drop(tx);
        let mut out: Vec<(usize, usize, BTreeMap<i64, Acc>)> = rx.into_iter().collect();
        // Deterministic merge order regardless of thread scheduling.
        out.sort_by_key(|&(ji, _, _)| ji);
        out.into_iter().map(|(_, fi, accs)| (fi, accs)).collect()
    } else {
        jobs.iter()
            .map(|&(fi, col)| (fi, column_accs(col, start, end, window, tuning.use_summaries)))
            .collect()
    };
    for (fi, accs) in maps {
        for (w, acc) in accs {
            match merged[fi].get_mut(&w) {
                Some(m) => m.merge(acc),
                None => {
                    merged[fi].insert(w, acc);
                }
            }
        }
    }
    merged
}

/// The tier slice available to one group's aggregation: the group's tier
/// series, the tier window, and the cap below which the tier is
/// authoritative.
struct TierPart<'a> {
    series: &'a [&'a Series],
    window_ns: i64,
    /// Timestamps `< cap` may be served from the tier; `[cap, ...)` must
    /// come from raw. `min(watermark, earliest unflushed head point)` —
    /// head points may have arrived after the last rollup pass.
    cap: i64,
}

/// The tier-serve cap for one group: the base watermark, pulled down to
/// the earliest head (unflushed) point of any column in the group.
fn tier_cap(group: &[&Series], watermark: i64) -> i64 {
    let mut cap = watermark;
    for s in group {
        let fields: Vec<String> = s.field_names().map(str::to_string).collect();
        for f in &fields {
            if let Some(&(ts, _)) = s.field(f).and_then(|c| c.head().first()) {
                cap = cap.min(ts);
            }
        }
    }
    cap
}

/// Per-field window accumulators over `[start, end)`: raw-only, or — when
/// a tier slice covers a whole-window middle `[a, b)` of the range — raw
/// edge scans stitched around a fold of the tier's pre-aggregated rows.
/// The stitched result is exact for decomposable aggregates because the
/// tier rows carry complete per-window state (count/sum/sumsq/min/max and
/// first/last with their original timestamps) and the three sub-ranges
/// partition the visible timestamps.
#[allow(clippy::too_many_arguments)]
fn stitched_accs(
    group: &[&Series],
    tier: Option<&TierPart>,
    fields: &[&str],
    needed: &[Vec<&'static str>],
    start: i64,
    end: i64,
    window: Option<i64>,
    tuning: QueryTuning,
) -> Vec<BTreeMap<i64, Acc>> {
    if let Some(t) = tier {
        // An unbounded start needs no alignment: there is no raw left
        // edge below the first tier row.
        let a = if start == i64::MIN { start } else { align_up(start, t.window_ns) };
        let b = align_down(end.min(t.cap), t.window_ns);
        if a < b {
            let mut accs = scan_group(group, fields, start, a, window, tuning);
            let right = scan_group(group, fields, b, end, window, tuning);
            for (fi, m) in right.into_iter().enumerate() {
                for (w, acc) in m {
                    match accs[fi].get_mut(&w) {
                        Some(cur) => cur.merge(acc),
                        None => {
                            accs[fi].insert(w, acc);
                        }
                    }
                }
            }
            tier_fold(t.series, fields, needed, a, b, window, &mut accs);
            return accs;
        }
    }
    scan_group(group, fields, start, end, window, tuning)
}

/// The tier stat columns one aggregate function reads. `count` gates
/// window emptiness and `min` doubles as `finalize()`'s numeric flag, so
/// both ride along with every numeric aggregate.
fn tier_stats_for(func: AggFunc) -> &'static [&'static str] {
    match func {
        AggFunc::Count => &["count"],
        AggFunc::First => &["count", "first", "first_ts"],
        AggFunc::Last => &["count", "last", "last_ts"],
        AggFunc::Mean | AggFunc::Sum => &["count", "min", "sum"],
        AggFunc::Min => &["count", "min"],
        AggFunc::Max => &["count", "min", "max"],
        AggFunc::Stddev => &["count", "min", "sum", "sumsq"],
    }
}

/// Folds the tier rows with window starts in `[a, b)` into the per-field
/// accumulators. Each tier row's stat fields reconstruct the exact
/// accumulator state a raw decode of that window would have produced;
/// `first`/`last` use the stored original timestamps so cross-layer
/// tie-breaking matches a full raw scan. Only the stat columns in
/// `needed[fi]` are decoded — the rest cannot reach the finalized output
/// of the requested aggregates.
fn tier_fold(
    tier: &[&Series],
    fields: &[&str],
    needed: &[Vec<&'static str>],
    a: i64,
    b: i64,
    out_window: Option<i64>,
    accs: &mut [BTreeMap<i64, Acc>],
) {
    #[derive(Default)]
    struct Partial {
        count: i64,
        sum: Option<f64>,
        sum_sq: Option<f64>,
        min: Option<f64>,
        max: Option<f64>,
        first: Option<FieldValue>,
        first_ts: Option<i64>,
        last: Option<FieldValue>,
        last_ts: Option<i64>,
    }
    let key = |ts: i64| match out_window {
        Some(w) => ts.div_euclid(w) * w,
        None => 0,
    };
    for series in tier {
        for (fi, field) in fields.iter().enumerate() {
            let Some(count_col) = series.field(&stat_field(field, "count")) else { continue };
            // Every rollup row writes `count`, so its ordered scan is the
            // row spine; the other needed stat scans advance in lockstep
            // (their timestamp sets are subsets of the spine's), avoiding
            // a map lookup per decoded stat point.
            let mut others: Vec<(&str, _)> = Vec::new();
            for stat in lms_rollup::STATS {
                if stat == "count" || !needed[fi].contains(&stat) {
                    continue;
                }
                if let Some(col) = series.field(&stat_field(field, stat)) {
                    others.push((stat, col.points_in(a, b).peekable()));
                }
            }
            for (ts, value) in count_col.points_in(a, b) {
                let FieldValue::Integer(count) = value else { continue };
                if count <= 0 {
                    continue;
                }
                let mut p = Partial { count, ..Default::default() };
                for (stat, it) in others.iter_mut() {
                    while it.peek().is_some_and(|&(t, _)| t < ts) {
                        it.next();
                    }
                    if it.peek().is_none_or(|&(t, _)| t != ts) {
                        continue;
                    }
                    let (_, value) = it.next().expect("peeked above");
                    match (*stat, &value) {
                        ("sum", _) => p.sum = value.as_f64(),
                        ("sumsq", _) => p.sum_sq = value.as_f64(),
                        ("min", _) => p.min = value.as_f64(),
                        ("max", _) => p.max = value.as_f64(),
                        ("first", _) => p.first = Some(value),
                        ("first_ts", FieldValue::Integer(t)) => p.first_ts = Some(*t),
                        ("last", _) => p.last = Some(value),
                        ("last_ts", FieldValue::Integer(t)) => p.last_ts = Some(*t),
                        _ => {}
                    }
                }
                // Non-numeric windows carry no sum/min/max: the defaults
                // leave `min` infinite, which finalize() already treats
                // as "not numeric" (count/first/last still work).
                let acc = Acc {
                    count: p.count as u64,
                    sum: p.sum.unwrap_or(0.0),
                    sum_sq: p.sum_sq.unwrap_or(0.0),
                    min: p.min.unwrap_or(f64::INFINITY),
                    max: p.max.unwrap_or(f64::NEG_INFINITY),
                    first: p.first.map(|v| (p.first_ts.unwrap_or(ts), v)),
                    last: p.last.map(|v| (p.last_ts.unwrap_or(ts), v)),
                };
                match accs[fi].get_mut(&key(ts)) {
                    Some(cur) => cur.merge(acc),
                    None => {
                        accs[fi].insert(key(ts), acc);
                    }
                }
            }
        }
    }
}

/// Aggregated projection, optionally windowed by `GROUP BY time(w)`.
///
/// One planned scan per `(field, series)` column covers the whole query
/// range: summaries of fully-covered blocks feed their window's
/// accumulator without a decode, residual points stream into theirs, and
/// the per-window rows are emitted from the finished accumulators — where
/// the previous executor re-decoded every overlapping block once per
/// window per aggregate. With a tier slice, the whole-window middle of
/// the range is answered from rollup rows instead of raw decodes.
fn aggregate_group(
    sel: &Select,
    group: &[&Series],
    tier: Option<&TierPart>,
    start: i64,
    end: i64,
    now_ns: i64,
    tuning: QueryTuning,
) -> ResultSeries {
    struct AggSpec {
        func: AggFunc,
        field: String,
    }
    let specs: Vec<AggSpec> = sel
        .projections
        .iter()
        .map(|p| match p {
            Projection::Agg(func, field) => AggSpec { func: *func, field: field.clone() },
            Projection::Field(_) => unreachable!("checked by caller"),
        })
        .collect();

    let mut columns = vec!["time".to_string()];
    columns.extend(specs.iter().map(|s| s.func.column_name().to_string()));

    // Distinct aggregated fields share one accumulator per window.
    let mut fields: Vec<&str> = Vec::new();
    for spec in &specs {
        if !fields.contains(&spec.field.as_str()) {
            fields.push(&spec.field);
        }
    }
    let field_idx = |spec: &AggSpec| {
        fields.iter().position(|f| *f == spec.field).expect("collected above")
    };
    // Union of tier stat columns every aggregate on a field reads — the
    // tier fold skips the rest.
    let mut needed: Vec<Vec<&'static str>> = vec![Vec::new(); fields.len()];
    for spec in &specs {
        let fi = field_idx(spec);
        for stat in tier_stats_for(spec.func) {
            if !needed[fi].contains(stat) {
                needed[fi].push(stat);
            }
        }
    }

    let values = match sel.group_time {
        None => {
            let accs = stitched_accs(group, tier, &fields, &needed, start, end, None, tuning);
            let empty = Acc::default();
            let row_time = if start == i64::MIN { 0 } else { start };
            let mut row = vec![Json::Int(row_time)];
            let mut any = false;
            for spec in &specs {
                let acc = accs[field_idx(spec)].get(&0).unwrap_or(&empty);
                let agg = acc.finalize(spec.func);
                if !agg.is_null() {
                    any = true;
                }
                row.push(agg);
            }
            if any {
                vec![row]
            } else {
                Vec::new()
            }
        }
        Some(window) => {
            // Window boundaries are aligned to the epoch (InfluxDB default).
            // Unbounded ranges clamp to the data extent — including the
            // tier extent, since raw below the retention cutoff survives
            // only as rollup rows (a tier row at window start `t` covers
            // points up to `t + tier_w`).
            let range_start = if start == i64::MIN {
                let mut lo: Option<i64> = None;
                for s in group {
                    for sp in &specs {
                        if let Some(t) = s.field(&sp.field).and_then(|c| c.first_ts()) {
                            lo = Some(lo.map_or(t, |m| m.min(t)));
                        }
                    }
                }
                if let Some(t) = tier {
                    for s in t.series {
                        for sp in &specs {
                            if let Some(ts) = s
                                .field(&stat_field(&sp.field, "count"))
                                .and_then(|c| c.first_ts())
                            {
                                lo = Some(lo.map_or(ts, |m| m.min(ts)));
                            }
                        }
                    }
                }
                lo.unwrap_or(0)
            } else {
                start
            };
            let range_end = if end == i64::MAX {
                let mut hi: Option<i64> = None;
                for s in group {
                    for sp in &specs {
                        if let Some(t) = s.field(&sp.field).and_then(|c| c.last_ts()) {
                            let t = t.saturating_add(1);
                            hi = Some(hi.map_or(t, |m| m.max(t)));
                        }
                    }
                }
                if let Some(t) = tier {
                    for s in t.series {
                        for sp in &specs {
                            if let Some(ts) = s
                                .field(&stat_field(&sp.field, "count"))
                                .and_then(|c| c.last_ts())
                            {
                                let e = ts.saturating_add(t.window_ns);
                                hi = Some(hi.map_or(e, |m| m.max(e)));
                            }
                        }
                    }
                }
                hi.unwrap_or(0)
            } else {
                end.min(now_ns.saturating_add(1).max(start))
            };
            let first_w = range_start.div_euclid(window) * window;
            let accs = if first_w < range_end {
                // One scan covers every emitted window: the first window is
                // clamped to `start` below, and the last reaches at most
                // `end` — exactly the per-window `[lo, hi)` bounds of the
                // emission loop.
                let last_w = (range_end - 1).div_euclid(window) * window;
                let scan_lo = first_w.max(start);
                let scan_hi = last_w.saturating_add(window).min(end);
                stitched_accs(group, tier, &fields, &needed, scan_lo, scan_hi, Some(window), tuning)
            } else {
                Vec::new()
            };
            let empty = Acc::default();
            let mut rows = Vec::new();
            let mut w_start = first_w;
            while w_start < range_end {
                let w_end = w_start.saturating_add(window);
                let mut row = vec![Json::Int(w_start)];
                let mut any = false;
                for spec in &specs {
                    let acc = accs[field_idx(spec)].get(&w_start).unwrap_or(&empty);
                    let agg = acc.finalize(spec.func);
                    if !agg.is_null() {
                        any = true;
                    }
                    row.push(agg);
                }
                match (any, sel.fill) {
                    (true, _) => rows.push(row),
                    (false, Fill::Null) => rows.push(row),
                    (false, Fill::Zero) => {
                        let n = row.len();
                        let mut zero_row = vec![row[0].clone()];
                        zero_row.extend(std::iter::repeat_n(Json::Int(0), n - 1));
                        rows.push(zero_row);
                    }
                    (false, Fill::None) => {}
                }
                w_start = w_end;
            }
            rows
        }
    };

    ResultSeries { name: sel.measurement.clone(), tags: Vec::new(), columns, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Influx;
    use lms_util::{Clock, Timestamp};

    /// now = 1000s. Two hosts, 10 points each at 1s spacing starting t=900s.
    fn fixture() -> Influx {
        let ix = Influx::new(Clock::simulated(Timestamp::from_secs(1000)));
        let mut batch = String::new();
        for host in ["h1", "h2"] {
            for i in 0..10i64 {
                let ts = (900 + i) * 1_000_000_000;
                let v = if host == "h1" { i as f64 } else { 100.0 + i as f64 };
                batch.push_str(&format!("cpu,hostname={host} value={v},flag={}i {ts}\n", i % 2));
            }
        }
        batch.push_str("events,hostname=h1 text=\"job start\" 900000000000\n");
        ix.write_lines("lms", &batch, Default::default()).unwrap();
        ix
    }

    fn q(ix: &Influx, text: &str) -> QueryResult {
        ix.query("lms", text).unwrap()
    }

    #[test]
    fn raw_select_all_points() {
        let r = q(&fixture(), "SELECT value FROM cpu WHERE hostname = 'h1'");
        assert_eq!(r.series.len(), 1);
        let s = &r.series[0];
        assert_eq!(s.columns, vec!["time", "value"]);
        assert_eq!(s.values.len(), 10);
        assert_eq!(s.values[0][0].as_i64(), Some(900_000_000_000));
        assert_eq!(s.values[0][1].as_f64(), Some(0.0));
    }

    #[test]
    fn raw_select_multiple_fields_aligned() {
        let r = q(&fixture(), "SELECT value, flag FROM cpu WHERE hostname = 'h2' LIMIT 2");
        let s = &r.series[0];
        assert_eq!(s.columns, vec!["time", "value", "flag"]);
        assert_eq!(s.values.len(), 2);
        assert_eq!(s.values[0][1].as_f64(), Some(100.0));
        assert_eq!(s.values[0][2].as_i64(), Some(0));
    }

    #[test]
    fn time_range_filters() {
        let r = q(
            &fixture(),
            "SELECT value FROM cpu WHERE hostname = 'h1' AND time >= 905000000000 AND time < 908000000000",
        );
        assert_eq!(r.series[0].values.len(), 3);
    }

    #[test]
    fn relative_time_now_minus() {
        // now = 1000s; last point at 909s; window 95s back = from 905s.
        let r = q(
            &fixture(),
            "SELECT value FROM cpu WHERE hostname = 'h1' AND time >= now() - 95s",
        );
        assert_eq!(r.series[0].values.len(), 5); // 905..909
    }

    #[test]
    fn aggregate_whole_range() {
        let r = q(&fixture(), "SELECT mean(value), max(value), count(value) FROM cpu WHERE hostname = 'h1'");
        let row = &r.series[0].values[0];
        assert_eq!(r.series[0].columns, vec!["time", "mean", "max", "count"]);
        assert_eq!(row[1].as_f64(), Some(4.5));
        assert_eq!(row[2].as_f64(), Some(9.0));
        assert_eq!(row[3].as_i64(), Some(10));
    }

    #[test]
    fn aggregate_merges_series_without_group_by() {
        let r = q(&fixture(), "SELECT mean(value) FROM cpu");
        // (0..9 mean 4.5) and (100..109 mean 104.5) merged = 54.5
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(54.5));
    }

    #[test]
    fn group_by_tag_splits_series() {
        let r = q(&fixture(), "SELECT mean(value) FROM cpu GROUP BY hostname");
        assert_eq!(r.series.len(), 2);
        let by_tag: Vec<(&str, f64)> = r
            .series
            .iter()
            .map(|s| (s.tags[0].1.as_str(), s.values[0][1].as_f64().unwrap()))
            .collect();
        assert_eq!(by_tag, vec![("h1", 4.5), ("h2", 104.5)]);
    }

    #[test]
    fn group_by_time_windows() {
        let r = q(
            &fixture(),
            "SELECT sum(value) FROM cpu WHERE hostname = 'h1' AND time >= 900000000000 AND time < 910000000000 GROUP BY time(5s)",
        );
        let s = &r.series[0];
        assert_eq!(s.values.len(), 2);
        assert_eq!(s.values[0][0].as_i64(), Some(900_000_000_000));
        assert_eq!(s.values[0][1].as_f64(), Some(0.0 + 1.0 + 2.0 + 3.0 + 4.0));
        assert_eq!(s.values[1][1].as_f64(), Some(5.0 + 6.0 + 7.0 + 8.0 + 9.0));
    }

    #[test]
    fn group_by_time_and_tag() {
        let r = q(
            &fixture(),
            "SELECT mean(value) FROM cpu WHERE time >= 900000000000 AND time < 910000000000 GROUP BY time(5s), hostname",
        );
        assert_eq!(r.series.len(), 2);
        assert!(r.series.iter().all(|s| s.values.len() == 2));
    }

    #[test]
    fn fill_policies() {
        // Points only in the first 10s of a 20s range.
        let r = q(
            &fixture(),
            "SELECT mean(value) FROM cpu WHERE hostname = 'h1' AND time >= 900000000000 AND time < 920000000000 GROUP BY time(5s) FILL(none)",
        );
        assert_eq!(r.series[0].values.len(), 2);
        let r = q(
            &fixture(),
            "SELECT mean(value) FROM cpu WHERE hostname = 'h1' AND time >= 900000000000 AND time < 920000000000 GROUP BY time(5s) FILL(null)",
        );
        assert_eq!(r.series[0].values.len(), 4);
        assert!(r.series[0].values[3][1].is_null());
        let r = q(
            &fixture(),
            "SELECT mean(value) FROM cpu WHERE hostname = 'h1' AND time >= 900000000000 AND time < 920000000000 GROUP BY time(5s) FILL(0)",
        );
        assert_eq!(r.series[0].values[3][1].as_f64(), Some(0.0));
    }

    #[test]
    fn order_desc_and_limit() {
        let r = q(
            &fixture(),
            "SELECT value FROM cpu WHERE hostname = 'h1' ORDER BY time DESC LIMIT 3",
        );
        let times: Vec<i64> = r.series[0].values.iter().map(|v| v[0].as_i64().unwrap()).collect();
        assert_eq!(times, vec![909_000_000_000, 908_000_000_000, 907_000_000_000]);
    }

    #[test]
    fn first_and_last() {
        let r = q(&fixture(), "SELECT first(value), last(value) FROM cpu WHERE hostname = 'h1'");
        let row = &r.series[0].values[0];
        assert_eq!(row[1].as_f64(), Some(0.0));
        assert_eq!(row[2].as_f64(), Some(9.0));
    }

    #[test]
    fn stddev() {
        let r = q(&fixture(), "SELECT stddev(value) FROM cpu WHERE hostname = 'h1'");
        let sd = r.series[0].values[0][1].as_f64().unwrap();
        // population stddev of 0..9 = sqrt(8.25) ≈ 2.8723
        assert!((sd - 2.8722813232690143).abs() < 1e-9);
    }

    #[test]
    fn string_events_queryable() {
        let r = q(&fixture(), "SELECT text FROM events");
        assert_eq!(r.series[0].values[0][1].as_str(), Some("job start"));
        // count works on strings; mean yields null → empty result row.
        let r = q(&fixture(), "SELECT count(text) FROM events");
        assert_eq!(r.series[0].values[0][1].as_i64(), Some(1));
        let r = q(&fixture(), "SELECT mean(text) FROM events");
        assert!(r.series.is_empty());
    }

    #[test]
    fn tag_ne_condition() {
        let r = q(&fixture(), "SELECT mean(value) FROM cpu WHERE hostname != 'h2'");
        assert_eq!(r.series[0].values[0][1].as_f64(), Some(4.5));
    }

    #[test]
    fn unknown_measurement_is_empty_not_error() {
        let r = q(&fixture(), "SELECT value FROM nothing_here");
        assert!(r.series.is_empty());
    }

    #[test]
    fn empty_time_range_is_empty() {
        let r = q(&fixture(), "SELECT value FROM cpu WHERE time >= 200 AND time < 100");
        assert!(r.series.is_empty());
    }

    #[test]
    fn mixing_raw_and_agg_rejected() {
        let ix = fixture();
        assert!(ix.query("lms", "SELECT value, mean(value) FROM cpu").is_err());
        assert!(ix.query("lms", "SELECT value FROM cpu GROUP BY time(5s)").is_err());
    }

    #[test]
    fn show_meta_queries() {
        let ix = fixture();
        let r = q(&ix, "SHOW MEASUREMENTS");
        let names: Vec<&str> =
            r.series[0].values.iter().map(|v| v[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["cpu", "events"]);
        let r = q(&ix, "SHOW TAG VALUES FROM cpu WITH KEY = hostname");
        let hosts: Vec<&str> =
            r.series[0].values.iter().map(|v| v[1].as_str().unwrap()).collect();
        assert_eq!(hosts, vec!["h1", "h2"]);
        let r = q(&ix, "SHOW FIELD KEYS FROM cpu");
        let fields: Vec<&str> =
            r.series[0].values.iter().map(|v| v[0].as_str().unwrap()).collect();
        assert_eq!(fields, vec!["flag", "value"]);
    }

    #[test]
    fn json_round_trip() {
        let r = q(&fixture(), "SELECT mean(value) FROM cpu GROUP BY hostname");
        let json = r.to_json();
        let back = QueryResult::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_surfaces_errors() {
        let j = Json::parse(r#"{"error":"database not found"}"#).unwrap();
        assert!(QueryResult::from_json(&j).is_err());
        let j = Json::parse(r#"{"results":[{"statement_id":0,"error":"boom"}]}"#).unwrap();
        assert!(QueryResult::from_json(&j).is_err());
    }
}
