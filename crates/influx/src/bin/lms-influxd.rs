//! `lms-influxd` — the time-series database as a standalone daemon.
//!
//! ```text
//! lms-influxd [--listen 127.0.0.1:8086] [--db lms]... [--retention-hours N]
//! ```
//!
//! Serves the InfluxDB-compatible `/ping`, `/write` and `/query` endpoints
//! until interrupted. Any existing collector that can speak to InfluxDB
//! can point at it (the paper's integration premise).

use lms_influx::{Influx, InfluxServer};
use lms_util::{Clock, Error, Result};
use std::time::Duration;

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:8086".to_string();
    let mut databases: Vec<String> = Vec::new();
    let mut retention: Option<Duration> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => {
                listen = it.next().ok_or_else(|| Error::config("--listen needs an address"))?.clone()
            }
            "--db" => databases
                .push(it.next().ok_or_else(|| Error::config("--db needs a name"))?.clone()),
            "--retention-hours" => {
                let h: u64 = it
                    .next()
                    .ok_or_else(|| Error::config("--retention-hours needs a value"))?
                    .parse()
                    .map_err(|_| Error::config("bad --retention-hours"))?;
                retention = Some(Duration::from_secs(h * 3600));
            }
            "--help" | "-h" => {
                println!("usage: lms-influxd [--listen addr:port] [--db name]... [--retention-hours N]");
                return Ok(());
            }
            other => return Err(Error::config(format!("unknown argument `{other}`"))),
        }
    }

    let influx = Influx::new(Clock::system());
    if databases.is_empty() {
        databases.push("lms".to_string());
    }
    for db in &databases {
        influx.create_database(db);
        if retention.is_some() {
            influx.set_retention(db, retention);
        }
    }
    let server = InfluxServer::start(listen.as_str(), influx.clone())?;
    println!("lms-influxd listening on http://{}", server.addr());
    println!("databases: {:?}", influx.database_names());

    // Retention sweep loop; runs until killed.
    loop {
        std::thread::sleep(Duration::from_secs(60));
        if retention.is_some() {
            let evicted = influx.enforce_retention();
            if evicted > 0 {
                println!("retention: evicted {evicted} points");
            }
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("lms-influxd: {e}");
        std::process::exit(1);
    }
}
