//! `lms-influxd` — the time-series database as a standalone daemon.
//!
//! ```text
//! lms-influxd [--listen 127.0.0.1:8086] [--db lms]... [--retention-hours N]
//!             [--data-dir DIR] [--flush-points N] [--flush-interval-secs N]
//!             [--partition-hours N] [--compact-min-files N] [--wal-fsync]
//!             [--wal-group-commit-ms N] [--wal-group-commit-bytes N]
//!             [--scrub-interval-secs N] [--scrub-rate-bytes N]
//!             [--max-connections N] [--max-body-bytes N]
//! ```
//!
//! Serves the InfluxDB-compatible `/ping`, `/write`, `/query` and `/stats`
//! endpoints until interrupted. Any existing collector that can speak to
//! InfluxDB can point at it (the paper's integration premise).
//!
//! Without `--data-dir` the daemon is memory-only. With it, every write is
//! appended to a write-ahead log and periodically sealed into compressed
//! segment files; a restarted daemon replays both and serves the same
//! queries as before the restart.

use lms_http::ServerConfig;
use lms_influx::{Influx, InfluxServer, RollupPolicy, StorageConfig};
use lms_util::{Clock, Error, Result};
use std::time::Duration;

fn parse_num<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<T> {
    it.next()
        .ok_or_else(|| Error::config(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| Error::config(format!("bad {flag}")))
}

/// Parses a `--retention-*` duration value like `90d`, `6h`, `30m`
/// (the same literal grammar queries use).
fn parse_retention(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<Duration> {
    let raw = it.next().ok_or_else(|| Error::config(format!("{flag} needs a duration")))?;
    let ns = lms_influx::query::parse_duration_ns(raw)
        .map_err(|_| Error::config(format!("bad {flag} `{raw}`: expected e.g. 90d, 6h, 30m")))?;
    if ns <= 0 {
        return Err(Error::config(format!("{flag} must be positive")));
    }
    Ok(Duration::from_nanos(ns as u64))
}

fn run() -> Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:8086".to_string();
    let mut databases: Vec<String> = Vec::new();
    let mut retention: Option<Duration> = None;
    let mut rollup: Option<RollupPolicy> = None;
    let mut data_dir: Option<String> = None;
    let mut flush_points: Option<usize> = None;
    let mut flush_interval: Option<u64> = None;
    let mut partition_hours: Option<u64> = None;
    let mut compact_min_files: Option<usize> = None;
    let mut wal_fsync = false;
    let mut wal_group_commit_ms: Option<u64> = None;
    let mut wal_group_commit_bytes: Option<usize> = None;
    let mut scrub_interval_secs: Option<u64> = None;
    let mut scrub_rate_bytes: Option<u64> = None;
    let mut server_config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => {
                listen = it.next().ok_or_else(|| Error::config("--listen needs an address"))?.clone()
            }
            "--db" => databases
                .push(it.next().ok_or_else(|| Error::config("--db needs a name"))?.clone()),
            "--retention-hours" => {
                let h: u64 = parse_num(&mut it, "--retention-hours")?;
                retention = Some(Duration::from_secs(h * 3600));
            }
            // Tiered retention: any of these turns the downsampling
            // pipeline on (raw → 1m → 1h rollup databases).
            "--retention-raw" => {
                rollup.get_or_insert_with(RollupPolicy::default).retention_raw =
                    Some(parse_retention(&mut it, "--retention-raw")?);
            }
            "--retention-1m" => {
                rollup.get_or_insert_with(RollupPolicy::default).retention_1m =
                    Some(parse_retention(&mut it, "--retention-1m")?);
            }
            "--retention-1h" => {
                rollup.get_or_insert_with(RollupPolicy::default).retention_1h =
                    Some(parse_retention(&mut it, "--retention-1h")?);
            }
            "--data-dir" => {
                data_dir =
                    Some(it.next().ok_or_else(|| Error::config("--data-dir needs a path"))?.clone())
            }
            "--flush-points" => flush_points = Some(parse_num(&mut it, "--flush-points")?),
            "--flush-interval-secs" => {
                flush_interval = Some(parse_num(&mut it, "--flush-interval-secs")?)
            }
            "--partition-hours" => partition_hours = Some(parse_num(&mut it, "--partition-hours")?),
            "--compact-min-files" => {
                compact_min_files = Some(parse_num(&mut it, "--compact-min-files")?)
            }
            "--wal-fsync" => wal_fsync = true,
            "--wal-group-commit-ms" => {
                wal_group_commit_ms = Some(parse_num(&mut it, "--wal-group-commit-ms")?)
            }
            "--wal-group-commit-bytes" => {
                wal_group_commit_bytes = Some(parse_num(&mut it, "--wal-group-commit-bytes")?)
            }
            // Background CRC scrub cadence and byte budget (0 disables).
            "--scrub-interval-secs" => {
                scrub_interval_secs = Some(parse_num(&mut it, "--scrub-interval-secs")?)
            }
            "--scrub-rate-bytes" => {
                scrub_rate_bytes = Some(parse_num(&mut it, "--scrub-rate-bytes")?)
            }
            "--max-connections" => {
                server_config.max_connections = parse_num(&mut it, "--max-connections")?
            }
            "--max-body-bytes" => {
                server_config.max_body_bytes = parse_num(&mut it, "--max-body-bytes")?
            }
            "--help" | "-h" => {
                println!(
                    "usage: lms-influxd [--listen addr:port] [--db name]... [--retention-hours N]\n\
                     \x20                 [--retention-raw DUR] [--retention-1m DUR] [--retention-1h DUR]\n\
                     \x20                 [--data-dir DIR] [--flush-points N] [--flush-interval-secs N]\n\
                     \x20                 [--partition-hours N] [--compact-min-files N] [--wal-fsync]\n\
                     \x20                 [--wal-group-commit-ms N] [--wal-group-commit-bytes N]\n\
                     \x20                 [--scrub-interval-secs N] [--scrub-rate-bytes N]\n\
                     \x20                 [--max-connections N] [--max-body-bytes N]\n\
                     durations accept query-style literals: 90d, 6h, 30m, 45s"
                );
                return Ok(());
            }
            other => return Err(Error::config(format!("unknown argument `{other}`"))),
        }
    }

    let influx = match &data_dir {
        Some(dir) => {
            let mut cfg = StorageConfig::new(dir);
            if let Some(n) = flush_points {
                cfg.flush_points = n;
            }
            if let Some(s) = flush_interval {
                cfg.flush_interval = Duration::from_secs(s);
            }
            if let Some(h) = partition_hours {
                cfg.partition = Duration::from_secs(h * 3600);
            }
            if let Some(n) = compact_min_files {
                cfg.compact_min_files = n;
            }
            cfg.wal_fsync = wal_fsync;
            if let Some(ms) = wal_group_commit_ms {
                cfg.wal_group_commit = Duration::from_millis(ms);
            }
            if let Some(b) = wal_group_commit_bytes {
                cfg.wal_group_commit_bytes = b;
            }
            if let Some(s) = scrub_interval_secs {
                cfg.scrub_interval = Duration::from_secs(s);
            }
            if let Some(b) = scrub_rate_bytes {
                cfg.scrub_rate_bytes = b;
            }
            Influx::open(Clock::system(), 8, cfg)?
        }
        None => Influx::new(Clock::system()),
    };
    if databases.is_empty() {
        databases.push("lms".to_string());
    }
    for db in &databases {
        influx.create_database(db);
        if retention.is_some() {
            influx.set_retention(db, retention);
        }
    }
    if let Some(policy) = &rollup {
        influx.enable_rollups(policy.clone())?;
        println!("rollups: raw={:?} 1m={:?} 1h={:?}", policy.retention_raw, policy.retention_1m, policy.retention_1h);
    }
    // Held for the daemon's lifetime: flushes and compacts in the
    // background when persistence is enabled.
    let _worker = influx.spawn_storage_worker();
    let server = InfluxServer::start_with(listen.as_str(), server_config, influx.clone())?;
    println!("lms-influxd listening on http://{}", server.addr());
    println!("databases: {:?}", influx.database_names());
    if let Some(dir) = &data_dir {
        let s = influx.storage_stats();
        println!(
            "persistence: {dir} ({} segment files, {} WAL records replayed)",
            s.segment_files, s.recovered_records
        );
    }

    // Retention sweep loop; runs until killed. The storage worker (when
    // persistent) flushes and compacts on its own cadence.
    loop {
        std::thread::sleep(Duration::from_secs(60));
        if retention.is_some() || rollup.is_some() {
            let evicted = influx.enforce_retention();
            if evicted > 0 {
                println!("retention: evicted {evicted} points");
            }
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("lms-influxd: {e}");
        std::process::exit(1);
    }
}
