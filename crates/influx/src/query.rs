//! InfluxQL-subset parsing.
//!
//! The dashboards and analysis of LMS need exactly this much query language:
//!
//! ```text
//! SELECT mean("value"), max("value") FROM "cpu_load"
//!   WHERE "hostname" = 'h1' AND time >= now() - 10m AND time < now()
//!   GROUP BY time(30s), "hostname" FILL(none)
//!   ORDER BY time DESC LIMIT 500
//!
//! SELECT "value" FROM events
//! SHOW MEASUREMENTS
//! SHOW TAG VALUES FROM "cpu" WITH KEY = "hostname"
//! SHOW FIELD KEYS FROM "cpu"
//! CREATE DATABASE userdb
//! ```
//!
//! Identifiers may be bare or double-quoted; string literals are
//! single-quoted; time literals are nanosecond integers, duration literals
//! (`10m`, `30s`, ...) or `now() ± duration`; only `AND`-conjunctions are
//! supported (all LMS dashboards are AND-shaped).

use lms_util::{Error, Result};

/// Aggregation functions of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Arithmetic mean of numeric values.
    Mean,
    /// Sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of non-null values (works on strings too).
    Count,
    /// Earliest value in the window.
    First,
    /// Latest value in the window.
    Last,
    /// Population standard deviation.
    Stddev,
}

impl AggFunc {
    fn parse(name: &str) -> Option<Self> {
        Some(match name.to_ascii_lowercase().as_str() {
            "mean" => AggFunc::Mean,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "count" => AggFunc::Count,
            "first" => AggFunc::First,
            "last" => AggFunc::Last,
            "stddev" => AggFunc::Stddev,
            _ => return None,
        })
    }

    /// The result column name (InfluxDB convention: the function name).
    pub fn column_name(self) -> &'static str {
        match self {
            AggFunc::Mean => "mean",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::First => "first",
            AggFunc::Last => "last",
            AggFunc::Stddev => "stddev",
        }
    }
}

/// One projected column.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// A raw field.
    Field(String),
    /// `func(field)`.
    Agg(AggFunc, String),
}

/// A time bound: absolute nanoseconds or relative to `now()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeValue {
    /// Absolute ns since epoch.
    Abs(i64),
    /// `now() + offset` (offset may be negative).
    NowOffset(i64),
}

impl TimeValue {
    /// Resolves against the evaluation-time `now`.
    pub fn resolve(self, now_ns: i64) -> i64 {
        match self {
            TimeValue::Abs(v) => v,
            TimeValue::NowOffset(off) => now_ns.saturating_add(off),
        }
    }
}

/// One WHERE conjunct.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `time >= v` (inclusive lower bound).
    TimeGe(TimeValue),
    /// `time > v`.
    TimeGt(TimeValue),
    /// `time <= v`.
    TimeLe(TimeValue),
    /// `time < v` (exclusive upper bound).
    TimeLt(TimeValue),
    /// `tag = 'value'`.
    TagEq(String, String),
    /// `tag != 'value'`.
    TagNe(String, String),
}

/// Empty-window fill policy for `GROUP BY time(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fill {
    /// Skip empty windows (our default; keeps results compact).
    #[default]
    None,
    /// Emit `null` for empty windows (InfluxDB's default).
    Null,
    /// Emit `0`.
    Zero,
}

/// A parsed SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Projected columns, in order.
    pub projections: Vec<Projection>,
    /// Source measurement.
    pub measurement: String,
    /// AND-ed conditions.
    pub conditions: Vec<Condition>,
    /// `GROUP BY time(window)` in ns.
    pub group_time: Option<i64>,
    /// `GROUP BY <tags>`.
    pub group_tags: Vec<String>,
    /// `GROUP BY *`: group by the full tag set, one group per series.
    /// Used by the cluster router's partial-aggregate rewrite to keep
    /// per-series identity so replica copies deduplicate exactly.
    pub group_all: bool,
    /// Fill policy.
    pub fill: Fill,
    /// `ORDER BY time DESC`.
    pub order_desc: bool,
    /// `LIMIT n`.
    pub limit: Option<usize>,
}

fn render_ident(out: &mut String, ident: &str) {
    out.push('"');
    out.push_str(ident);
    out.push('"');
}

fn render_time(out: &mut String, v: &TimeValue) {
    match v {
        TimeValue::Abs(ns) => out.push_str(&ns.to_string()),
        TimeValue::NowOffset(0) => out.push_str("now()"),
        TimeValue::NowOffset(off) if *off < 0 => {
            out.push_str(&format!("now() - {}ns", off.unsigned_abs()))
        }
        TimeValue::NowOffset(off) => out.push_str(&format!("now() + {off}ns")),
    }
}

impl Select {
    /// Renders the statement back to parseable InfluxQL. The output
    /// round-trips: `Statement::parse(sel.render())` yields `sel` again
    /// (relative `now()` bounds stay relative). Used by the router to
    /// rewrite aggregate queries into per-node partial queries.
    pub fn render(&self) -> String {
        let mut out = String::from("SELECT ");
        for (i, p) in self.projections.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match p {
                Projection::Field(f) => render_ident(&mut out, f),
                Projection::Agg(func, f) => {
                    out.push_str(func.column_name());
                    out.push('(');
                    render_ident(&mut out, f);
                    out.push(')');
                }
            }
        }
        out.push_str(" FROM ");
        render_ident(&mut out, &self.measurement);
        for (i, c) in self.conditions.iter().enumerate() {
            out.push_str(if i == 0 { " WHERE " } else { " AND " });
            match c {
                Condition::TimeGe(v) => {
                    out.push_str("time >= ");
                    render_time(&mut out, v);
                }
                Condition::TimeGt(v) => {
                    out.push_str("time > ");
                    render_time(&mut out, v);
                }
                Condition::TimeLe(v) => {
                    out.push_str("time <= ");
                    render_time(&mut out, v);
                }
                Condition::TimeLt(v) => {
                    out.push_str("time < ");
                    render_time(&mut out, v);
                }
                Condition::TagEq(k, v) => {
                    render_ident(&mut out, k);
                    out.push_str(&format!(" = '{}'", v.replace('\'', "''")));
                }
                Condition::TagNe(k, v) => {
                    render_ident(&mut out, k);
                    out.push_str(&format!(" != '{}'", v.replace('\'', "''")));
                }
            }
        }
        let mut group_items: Vec<String> = Vec::new();
        if let Some(w) = self.group_time {
            group_items.push(format!("time({w}ns)"));
        }
        if self.group_all {
            group_items.push("*".to_string());
        }
        for t in &self.group_tags {
            group_items.push(format!("\"{t}\""));
        }
        if !group_items.is_empty() {
            out.push_str(" GROUP BY ");
            out.push_str(&group_items.join(", "));
        }
        match self.fill {
            Fill::None => {}
            Fill::Null => out.push_str(" FILL(null)"),
            Fill::Zero => out.push_str(" FILL(0)"),
        }
        if self.order_desc {
            out.push_str(" ORDER BY time DESC");
        }
        if let Some(n) = self.limit {
            out.push_str(&format!(" LIMIT {n}"));
        }
        out
    }
}

/// Any parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A SELECT query.
    Select(Select),
    /// `SHOW MEASUREMENTS`
    ShowMeasurements,
    /// `SHOW DATABASES`
    ShowDatabases,
    /// `SHOW TAG VALUES FROM m WITH KEY = k`
    ShowTagValues {
        /// Source measurement.
        measurement: String,
        /// Tag key to enumerate.
        key: String,
    },
    /// `SHOW FIELD KEYS FROM m`
    ShowFieldKeys {
        /// Source measurement.
        measurement: String,
    },
    /// `CREATE DATABASE name`
    CreateDatabase(String),
}

impl Statement {
    /// Parses one statement.
    pub fn parse(text: &str) -> Result<Statement> {
        let tokens = tokenize(text)?;
        let mut p = P { t: &tokens, i: 0 };
        let stmt = p.statement()?;
        if p.i != p.t.len() {
            return Err(Error::protocol(format!(
                "query: unexpected `{}` after statement",
                p.t[p.i].text()
            )));
        }
        Ok(stmt)
    }
}

/// Parses a duration literal body like `10m`, `30s`, `500ms`, `2h` into ns.
pub fn parse_duration_ns(s: &str) -> Result<i64> {
    let digits_end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if digits_end == 0 {
        return Err(Error::protocol(format!("bad duration `{s}`")));
    }
    let n: i64 = s[..digits_end].parse()?;
    let unit = &s[digits_end..];
    let mult: i64 = match unit {
        "ns" => 1,
        "u" | "µ" | "us" => 1_000,
        "ms" => 1_000_000,
        "s" => 1_000_000_000,
        "m" => 60 * 1_000_000_000,
        "h" => 3_600 * 1_000_000_000,
        "d" => 86_400 * 1_000_000_000,
        "w" => 7 * 86_400 * 1_000_000_000,
        other => return Err(Error::protocol(format!("bad duration unit `{other}`"))),
    };
    n.checked_mul(mult)
        .ok_or_else(|| Error::protocol(format!("duration `{s}` overflows")))
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Bare or double-quoted identifier (quoted flag kept for `time`).
    Ident(String, bool),
    /// Single-quoted string literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Duration literal (ns).
    Dur(i64),
    /// Punctuation / operator.
    Sym(&'static str),
}

impl Tok {
    fn text(&self) -> String {
        match self {
            Tok::Ident(s, _) => s.clone(),
            Tok::Str(s) => format!("'{s}'"),
            Tok::Int(i) => i.to_string(),
            Tok::Dur(d) => format!("{d}ns"),
            Tok::Sym(s) => s.to_string(),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<Tok>> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' | b';' => i += 1,
            b'(' => {
                out.push(Tok::Sym("("));
                i += 1;
            }
            b')' => {
                out.push(Tok::Sym(")"));
                i += 1;
            }
            b',' => {
                out.push(Tok::Sym(","));
                i += 1;
            }
            b'=' => {
                out.push(Tok::Sym("="));
                i += 1;
            }
            b'+' => {
                out.push(Tok::Sym("+"));
                i += 1;
            }
            b'-' => {
                out.push(Tok::Sym("-"));
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Sym("!="));
                i += 2;
            }
            b'<' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Sym("<="));
                i += 2;
            }
            b'>' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Sym(">="));
                i += 2;
            }
            b'<' if b.get(i + 1) == Some(&b'>') => {
                out.push(Tok::Sym("!="));
                i += 2;
            }
            b'<' => {
                out.push(Tok::Sym("<"));
                i += 1;
            }
            b'>' => {
                out.push(Tok::Sym(">"));
                i += 1;
            }
            b'\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    if j >= b.len() {
                        return Err(Error::protocol("query: unterminated string literal"));
                    }
                    if b[j] == b'\'' {
                        if b.get(j + 1) == Some(&b'\'') {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(b[j] as char);
                    j += 1;
                }
                out.push(Tok::Str(s));
                i = j + 1;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'"' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(Error::protocol("query: unterminated identifier quote"));
                }
                out.push(Tok::Ident(text[start..j].to_string(), true));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                // duration suffix?
                let suffix_start = i;
                while i < b.len() && (b[i].is_ascii_alphabetic() || b[i] == 0xC2) {
                    i += 1; // 0xC2 covers 'µ' first byte
                }
                if i > suffix_start {
                    let dur = parse_duration_ns(&text[start..i])?;
                    out.push(Tok::Dur(dur));
                } else {
                    out.push(Tok::Int(text[start..i].parse()?));
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                out.push(Tok::Ident(text[start..i].to_string(), false));
            }
            b'*' => {
                out.push(Tok::Sym("*"));
                i += 1;
            }
            other => {
                return Err(Error::protocol(format!(
                    "query: unexpected character `{}`",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

struct P<'a> {
    t: &'a [Tok],
    i: usize,
}

impl P<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.t.get(self.i)
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.t.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s, false)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.i += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(Error::protocol(format!(
                "query: expected `{kw}`, found `{}`",
                self.peek().map(Tok::text).unwrap_or_else(|| "end".into())
            )))
        }
    }

    fn sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(x)) if *x == s) {
            self.i += 1;
            return true;
        }
        false
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.sym(s) {
            Ok(())
        } else {
            Err(Error::protocol(format!(
                "query: expected `{s}`, found `{}`",
                self.peek().map(Tok::text).unwrap_or_else(|| "end".into())
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s, _)) => Ok(s.clone()),
            other => Err(Error::protocol(format!(
                "query: expected identifier, found `{}`",
                other.map(Tok::text).unwrap_or_else(|| "end".into())
            ))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.keyword("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.keyword("SHOW") {
            if self.keyword("MEASUREMENTS") {
                return Ok(Statement::ShowMeasurements);
            }
            if self.keyword("DATABASES") {
                return Ok(Statement::ShowDatabases);
            }
            if self.keyword("TAG") {
                self.expect_keyword("VALUES")?;
                self.expect_keyword("FROM")?;
                let measurement = self.ident()?;
                self.expect_keyword("WITH")?;
                self.expect_keyword("KEY")?;
                self.expect_sym("=")?;
                let key = self.ident()?;
                return Ok(Statement::ShowTagValues { measurement, key });
            }
            if self.keyword("FIELD") {
                self.expect_keyword("KEYS")?;
                self.expect_keyword("FROM")?;
                let measurement = self.ident()?;
                return Ok(Statement::ShowFieldKeys { measurement });
            }
            return Err(Error::protocol("query: unsupported SHOW statement"));
        }
        if self.keyword("CREATE") {
            self.expect_keyword("DATABASE")?;
            return Ok(Statement::CreateDatabase(self.ident()?));
        }
        Err(Error::protocol("query: expected SELECT, SHOW or CREATE"))
    }

    fn select(&mut self) -> Result<Select> {
        let mut projections = Vec::new();
        loop {
            projections.push(self.projection()?);
            if !self.sym(",") {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let measurement = self.ident()?;

        let mut conditions = Vec::new();
        if self.keyword("WHERE") {
            loop {
                conditions.push(self.condition()?);
                if !self.keyword("AND") {
                    break;
                }
            }
        }

        let mut group_time = None;
        let mut group_tags = Vec::new();
        let mut group_all = false;
        if self.keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                if self.sym("*") {
                    group_all = true;
                    if !self.sym(",") {
                        break;
                    }
                    continue;
                }
                if let Some(Tok::Ident(name, false)) = self.peek() {
                    if name.eq_ignore_ascii_case("time") && self.t.get(self.i + 1) == Some(&Tok::Sym("(")) {
                        self.i += 2;
                        let w = match self.next() {
                            Some(Tok::Dur(d)) => *d,
                            Some(Tok::Int(n)) => *n,
                            other => {
                                return Err(Error::protocol(format!(
                                    "query: expected window duration, found `{}`",
                                    other.map(Tok::text).unwrap_or_else(|| "end".into())
                                )))
                            }
                        };
                        if w <= 0 {
                            return Err(Error::protocol("query: window must be positive"));
                        }
                        self.expect_sym(")")?;
                        group_time = Some(w);
                        if !self.sym(",") {
                            break;
                        }
                        continue;
                    }
                }
                group_tags.push(self.ident()?);
                if !self.sym(",") {
                    break;
                }
            }
        }

        let mut fill = Fill::default();
        if self.keyword("FILL") {
            self.expect_sym("(")?;
            fill = match self.next() {
                Some(Tok::Ident(s, _)) if s.eq_ignore_ascii_case("none") => Fill::None,
                Some(Tok::Ident(s, _)) if s.eq_ignore_ascii_case("null") => Fill::Null,
                Some(Tok::Int(0)) => Fill::Zero,
                other => {
                    return Err(Error::protocol(format!(
                        "query: unsupported fill `{}`",
                        other.map(Tok::text).unwrap_or_else(|| "end".into())
                    )))
                }
            };
            self.expect_sym(")")?;
        }

        let mut order_desc = false;
        if self.keyword("ORDER") {
            self.expect_keyword("BY")?;
            let col = self.ident()?;
            if !col.eq_ignore_ascii_case("time") {
                return Err(Error::protocol("query: can only ORDER BY time"));
            }
            if self.keyword("DESC") {
                order_desc = true;
            } else {
                let _ = self.keyword("ASC");
            }
        }

        let mut limit = None;
        if self.keyword("LIMIT") {
            match self.next() {
                Some(Tok::Int(n)) if *n > 0 => limit = Some(*n as usize),
                other => {
                    return Err(Error::protocol(format!(
                        "query: bad LIMIT `{}`",
                        other.map(Tok::text).unwrap_or_else(|| "end".into())
                    )))
                }
            }
        }

        Ok(Select {
            projections,
            measurement,
            conditions,
            group_time,
            group_tags,
            group_all,
            fill,
            order_desc,
            limit,
        })
    }

    fn projection(&mut self) -> Result<Projection> {
        // func(field) or bare/quoted field
        if let Some(Tok::Ident(name, false)) = self.peek() {
            if let Some(func) = AggFunc::parse(name) {
                if self.t.get(self.i + 1) == Some(&Tok::Sym("(")) {
                    self.i += 2;
                    let field = self.ident()?;
                    self.expect_sym(")")?;
                    return Ok(Projection::Agg(func, field));
                }
            }
        }
        Ok(Projection::Field(self.ident()?))
    }

    fn condition(&mut self) -> Result<Condition> {
        let lhs = match self.next().cloned() {
            Some(Tok::Ident(s, quoted)) => (s, quoted),
            other => {
                return Err(Error::protocol(format!(
                    "query: expected condition, found `{}`",
                    other.map(|t| t.text()).unwrap_or_else(|| "end".into())
                )))
            }
        };
        let is_time = !lhs.1 && lhs.0.eq_ignore_ascii_case("time");
        if is_time {
            let op = match self.next() {
                Some(Tok::Sym(s @ (">=" | ">" | "<=" | "<" | "="))) => *s,
                other => {
                    return Err(Error::protocol(format!(
                        "query: bad time operator `{}`",
                        other.map(Tok::text).unwrap_or_else(|| "end".into())
                    )))
                }
            };
            let value = self.time_value()?;
            return match op {
                ">=" => Ok(Condition::TimeGe(value)),
                ">" => Ok(Condition::TimeGt(value)),
                "<=" => Ok(Condition::TimeLe(value)),
                "<" => Ok(Condition::TimeLt(value)),
                // Exact-instant matches are never what a dashboard wants;
                // keep the AST a pure range and reject `time =`.
                _ => Err(Error::protocol("query: use a range instead of `time =`")),
            };
        }
        // tag condition
        if self.sym("=") {
            let v = self.string_literal()?;
            Ok(Condition::TagEq(lhs.0, v))
        } else if self.sym("!=") {
            let v = self.string_literal()?;
            Ok(Condition::TagNe(lhs.0, v))
        } else {
            Err(Error::protocol(format!("query: bad condition on `{}`", lhs.0)))
        }
    }

    fn string_literal(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(s.clone()),
            other => Err(Error::protocol(format!(
                "query: expected 'string', found `{}`",
                other.map(Tok::text).unwrap_or_else(|| "end".into())
            ))),
        }
    }

    fn time_value(&mut self) -> Result<TimeValue> {
        // Unary minus: negative absolute timestamps are legal (pre-epoch).
        if self.sym("-") {
            return match self.next() {
                Some(Tok::Int(v)) => Ok(TimeValue::Abs(-v)),
                Some(Tok::Dur(v)) => Ok(TimeValue::Abs(-v)),
                other => Err(Error::protocol(format!(
                    "query: bad time value after `-`: `{}`",
                    other.map(Tok::text).unwrap_or_else(|| "end".into())
                ))),
            };
        }
        match self.next().cloned() {
            Some(Tok::Int(v)) => Ok(TimeValue::Abs(v)),
            Some(Tok::Dur(v)) => Ok(TimeValue::Abs(v)),
            Some(Tok::Ident(s, false)) if s.eq_ignore_ascii_case("now") => {
                self.expect_sym("(")?;
                self.expect_sym(")")?;
                let mut offset = 0i64;
                if self.sym("-") {
                    offset = -self.duration()?;
                } else if self.sym("+") {
                    offset = self.duration()?;
                }
                Ok(TimeValue::NowOffset(offset))
            }
            other => Err(Error::protocol(format!(
                "query: bad time value `{}`",
                other.map(|t| t.text()).unwrap_or_else(|| "end".into())
            ))),
        }
    }

    fn duration(&mut self) -> Result<i64> {
        match self.next() {
            Some(Tok::Dur(d)) => Ok(*d),
            Some(Tok::Int(n)) => Ok(*n),
            other => Err(Error::protocol(format!(
                "query: expected duration, found `{}`",
                other.map(Tok::text).unwrap_or_else(|| "end".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(q: &str) -> Select {
        match Statement::parse(q).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn minimal_select() {
        let s = sel("SELECT value FROM cpu");
        assert_eq!(s.projections, vec![Projection::Field("value".into())]);
        assert_eq!(s.measurement, "cpu");
        assert!(s.conditions.is_empty());
        assert_eq!(s.group_time, None);
        assert!(!s.order_desc);
        assert_eq!(s.limit, None);
    }

    #[test]
    fn full_select() {
        let s = sel(
            "SELECT mean(\"value\"), max(\"value\") FROM \"cpu_load\" \
             WHERE \"hostname\" = 'h1' AND time >= now() - 10m AND time < now() \
             GROUP BY time(30s), \"hostname\" FILL(none) ORDER BY time DESC LIMIT 500",
        );
        assert_eq!(
            s.projections,
            vec![
                Projection::Agg(AggFunc::Mean, "value".into()),
                Projection::Agg(AggFunc::Max, "value".into()),
            ]
        );
        assert_eq!(s.measurement, "cpu_load");
        assert_eq!(s.conditions.len(), 3);
        assert_eq!(s.conditions[0], Condition::TagEq("hostname".into(), "h1".into()));
        assert_eq!(
            s.conditions[1],
            Condition::TimeGe(TimeValue::NowOffset(-600_000_000_000))
        );
        assert_eq!(s.conditions[2], Condition::TimeLt(TimeValue::NowOffset(0)));
        assert_eq!(s.group_time, Some(30_000_000_000));
        assert_eq!(s.group_tags, vec!["hostname"]);
        assert_eq!(s.fill, Fill::None);
        assert!(s.order_desc);
        assert_eq!(s.limit, Some(500));
    }

    #[test]
    fn absolute_time_bounds() {
        let s = sel("SELECT v FROM m WHERE time >= 100 AND time <= 200");
        assert_eq!(s.conditions[0], Condition::TimeGe(TimeValue::Abs(100)));
        assert_eq!(s.conditions[1], Condition::TimeLe(TimeValue::Abs(200)));
        assert_eq!(TimeValue::Abs(100).resolve(999), 100);
        assert_eq!(TimeValue::NowOffset(-10).resolve(999), 989);
    }

    #[test]
    fn negative_time_literals() {
        // Pre-epoch bounds arise from renderer margins; must parse.
        let s = sel("SELECT v FROM m WHERE time >= -5000000000 AND time <= 100");
        assert_eq!(s.conditions[0], Condition::TimeGe(TimeValue::Abs(-5_000_000_000)));
        assert!(Statement::parse("SELECT v FROM m WHERE time >= -").is_err());
    }

    #[test]
    fn tag_not_equal_and_quoted_escapes() {
        let s = sel("SELECT v FROM m WHERE state != 'it''s fine'");
        assert_eq!(s.conditions[0], Condition::TagNe("state".into(), "it's fine".into()));
    }

    #[test]
    fn group_by_tag_only() {
        let s = sel("SELECT mean(v) FROM m GROUP BY hostname");
        assert_eq!(s.group_time, None);
        assert_eq!(s.group_tags, vec!["hostname"]);
    }

    #[test]
    fn group_by_star() {
        let s = sel("SELECT mean(v) FROM m GROUP BY *");
        assert!(s.group_all);
        assert!(s.group_tags.is_empty());

        let s = sel("SELECT mean(v) FROM m GROUP BY time(1m), *");
        assert!(s.group_all);
        assert_eq!(s.group_time, Some(60_000_000_000));
    }

    #[test]
    fn render_round_trips() {
        for q in [
            "SELECT v FROM m",
            "SELECT \"v\", mean(\"v\") FROM \"m\"",
            "SELECT count(v) FROM m WHERE time >= now() - 600000000000ns AND h = 'a''b'",
            "SELECT mean(v) FROM m WHERE time >= 0 AND time < 100 \
             GROUP BY time(30s), *, \"hostname\" FILL(0) ORDER BY time DESC LIMIT 5",
            "SELECT sum(v) FROM m WHERE time > now() AND s != 'x' GROUP BY time(1h) FILL(null)",
        ] {
            let parsed = sel(q);
            let rendered = parsed.render();
            assert_eq!(sel(&rendered), parsed, "render of `{q}` -> `{rendered}`");
        }
    }

    #[test]
    fn fill_variants() {
        assert_eq!(sel("SELECT mean(v) FROM m GROUP BY time(1m) FILL(null)").fill, Fill::Null);
        assert_eq!(sel("SELECT mean(v) FROM m GROUP BY time(1m) FILL(0)").fill, Fill::Zero);
        assert_eq!(sel("SELECT mean(v) FROM m GROUP BY time(1m)").fill, Fill::None);
    }

    #[test]
    fn show_statements() {
        assert_eq!(Statement::parse("SHOW MEASUREMENTS").unwrap(), Statement::ShowMeasurements);
        assert_eq!(
            Statement::parse("SHOW TAG VALUES FROM \"cpu\" WITH KEY = \"hostname\"").unwrap(),
            Statement::ShowTagValues { measurement: "cpu".into(), key: "hostname".into() }
        );
        assert_eq!(
            Statement::parse("SHOW FIELD KEYS FROM cpu").unwrap(),
            Statement::ShowFieldKeys { measurement: "cpu".into() }
        );
    }

    #[test]
    fn create_database() {
        assert_eq!(
            Statement::parse("CREATE DATABASE user_alice").unwrap(),
            Statement::CreateDatabase("user_alice".into())
        );
    }

    #[test]
    fn durations() {
        assert_eq!(parse_duration_ns("10m").unwrap(), 600_000_000_000);
        assert_eq!(parse_duration_ns("30s").unwrap(), 30_000_000_000);
        assert_eq!(parse_duration_ns("500ms").unwrap(), 500_000_000);
        assert_eq!(parse_duration_ns("2h").unwrap(), 7_200_000_000_000);
        assert_eq!(parse_duration_ns("1d").unwrap(), 86_400_000_000_000);
        assert_eq!(parse_duration_ns("1w").unwrap(), 604_800_000_000_000);
        assert!(parse_duration_ns("10x").is_err());
        assert!(parse_duration_ns("m").is_err());
    }

    #[test]
    fn case_insensitive_keywords() {
        let s = sel("select Mean(v) from m where h = 'x' group by time(1s) order by time desc limit 5");
        assert_eq!(s.projections[0], Projection::Agg(AggFunc::Mean, "v".into()));
        assert!(s.order_desc);
    }

    #[test]
    fn reject_malformed() {
        for bad in [
            "",
            "SELECT FROM m",
            "SELECT v",
            "SELECT v FROM",
            "SELECT v FROM m WHERE",
            "SELECT v FROM m WHERE time ~ 5",
            "SELECT v FROM m WHERE tag = unquoted",
            "SELECT v FROM m GROUP BY time()",
            "SELECT v FROM m GROUP BY time(0s)",
            "SELECT v FROM m ORDER BY hostname",
            "SELECT v FROM m LIMIT 0",
            "SELECT v FROM m LIMIT abc",
            "SELECT nosuchfunc(v) FROM m extra",
            "DROP DATABASE x",
            "SELECT v FROM m WHERE time = 5",
            "SHOW GRANTS",
        ] {
            assert!(Statement::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn quoted_time_is_a_tag_not_the_time_column() {
        // "time" (quoted) refers to a tag named time, per InfluxQL rules.
        let s = sel("SELECT v FROM m WHERE \"time\" = 'x'");
        assert_eq!(s.conditions[0], Condition::TagEq("time".into(), "x".into()));
    }
}
