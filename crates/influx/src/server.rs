//! The InfluxDB-compatible HTTP endpoints.
//!
//! | endpoint | behaviour |
//! |---|---|
//! | `GET /ping` | `204` with `X-Influxdb-Version` header |
//! | `POST /write?db=<db>&precision=<p>` | line-protocol batch → `204`; `400` with a JSON error when every line failed or the db is missing |
//! | `GET/POST /query?db=<db>&q=<stmt>` | InfluxDB-shaped JSON result |
//! | `GET/POST /query_range?db=<db>&q=<stmt>&start=<ns>&end=<ns>&step=<dur>` | SELECT over an explicit `[start, end)` range, bucketed to `step` |
//! | `GET /metrics?db=<db>` | sorted measurement names |
//! | `GET /labels/<measurement>?db=<db>` | sorted tag keys of one measurement |
//! | `GET /stats` | storage-engine gauges (WAL bytes, sealed blocks, compression ratio, …) |
//! | `GET /integrity?db=<db>&nodes=<n>&replication=<r>&seed=<s>` | per-(hour bucket, owner set) range digests for anti-entropy repair |
//! | `GET /integrity/export?db=<db>&start=<ns>&end=<ns>` | canonical line-protocol dump of the range, replayed by the repair pass |
//! | `GET /health/live` | `204` while the process runs |
//! | `GET /health/ready` | `204` when workers are healthy and storage is not degraded; `503` otherwise |

use crate::db::{Influx, WriteOptions};
use lms_http::{Request, Response, Server, ServerConfig};
use lms_lineproto::Precision;
use lms_util::{Json, Result};
use std::net::{SocketAddr, ToSocketAddrs};

/// A running database server wrapping an [`Influx`] handle.
pub struct InfluxServer {
    server: Server,
}

impl InfluxServer {
    /// Starts serving `influx` on `addr` with a connection cap of one per
    /// core (at least 4) — the sharded engine accepts concurrent writes,
    /// so the HTTP layer should offer matching parallelism.
    pub fn start<A: ToSocketAddrs>(addr: A, influx: Influx) -> Result<Self> {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(4);
        Self::start_with(addr, ServerConfig::with_max_connections(workers), influx)
    }

    /// Starts serving with explicit admission limits (connection cap, body
    /// cap, request deadline).
    pub fn start_with<A: ToSocketAddrs>(
        addr: A,
        config: ServerConfig,
        influx: Influx,
    ) -> Result<Self> {
        let server = Server::bind_with(addr, config, move |req| handle(&influx, req))?;
        Ok(InfluxServer { server })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Connections refused with `503` at the admission limit.
    pub fn shed_connections(&self) -> u64 {
        self.server.shed_connections()
    }

    /// Stops the server.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

fn error_json(msg: &str) -> String {
    Json::obj([("error", Json::str(msg))]).to_string()
}

/// Parses a nanosecond time parameter: a plain integer, or a duration
/// like `30s`/`5m`. `Ok(None)` when the parameter is absent; an error
/// response when present but malformed.
fn parse_ns(req: &Request, name: &str) -> std::result::Result<Option<i64>, Response> {
    let Some(raw) = req.query_param(name) else { return Ok(None) };
    if let Ok(n) = raw.parse::<i64>() {
        return Ok(Some(n));
    }
    match crate::query::parse_duration_ns(raw) {
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(Response::json(
            400,
            error_json(&format!("bad `{name}` parameter `{raw}`: expected ns or duration")),
        )),
    }
}

fn handle(influx: &Influx, req: Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/ping") | ("HEAD", "/ping") => {
            let mut r = Response::no_content();
            r.headers.push(("x-influxdb-version".into(), "lms-influx-0.1".into()));
            r
        }
        ("POST", "/write") => {
            let Some(db) = req.query_param("db") else {
                return Response::json(400, error_json("missing `db` parameter"));
            };
            // `tier=1m`/`tier=1h` routes a pre-aggregated batch (rollup
            // stat fields, window-start timestamps) straight into the
            // database's rollup tier sibling — the agent-side
            // pre-aggregation path that skips raw ingestion entirely.
            let db = match req.query_param("tier") {
                None => db.to_string(),
                Some(raw) => match lms_rollup::Tier::parse(raw) {
                    Some(tier) => lms_rollup::rollup_db_name(db, tier),
                    None => {
                        return Response::json(
                            400,
                            error_json(&format!("bad `tier` parameter `{raw}`: expected 1m or 1h")),
                        )
                    }
                },
            };
            let precision = match req.query_param("precision").map(Precision::parse) {
                None => Precision::Nanoseconds,
                Some(Ok(p)) => p,
                Some(Err(e)) => return Response::json(400, error_json(&e.to_string())),
            };
            let body = req.body_str();
            match influx.write_lines(&db, &body, WriteOptions { precision }) {
                Ok(outcome) if outcome.written > 0 || outcome.rejected == 0 => {
                    // Partial success still answers 204 (matching InfluxDB's
                    // lenient handling); full failure reports the first error.
                    Response::no_content()
                }
                Ok(outcome) => {
                    let (line, msg) = outcome
                        .first_error
                        .unwrap_or((0, "empty write body".to_string()));
                    Response::json(400, error_json(&format!("line {line}: {msg}")))
                }
                // Degraded storage sheds the write as retryable: the
                // router's forwarder sees a transient 503 and keeps the
                // batch queued/spooled until the disk recovers.
                Err(e @ lms_util::Error::Unavailable(_)) => {
                    Response::service_unavailable(&e.to_string(), 5)
                }
                Err(e) => Response::json(404, error_json(&e.to_string())),
            }
        }
        ("GET", "/query") | ("POST", "/query") => {
            let Some(q) = req.query_param("q") else {
                return Response::json(400, error_json("missing `q` parameter"));
            };
            // CREATE DATABASE has no db param; data queries need one.
            let db = req.query_param("db").unwrap_or("");
            match influx.query(db, q) {
                Ok(result) => Response::json(200, result.to_json().to_string()),
                // A missing database is 404, not 400: cluster routers
                // fan queries to every node and rely on the status to
                // tell "this node does not hold that database" (an
                // empty answer) apart from a malformed query.
                Err(e @ lms_util::Error::NotFound(_)) => {
                    Response::json(404, error_json(&e.to_string()))
                }
                Err(e) => Response::json(400, error_json(&e.to_string())),
            }
        }
        ("GET", "/query_range") | ("POST", "/query_range") => {
            let Some(q) = req.query_param("q") else {
                return Response::json(400, error_json("missing `q` parameter"));
            };
            let db = req.query_param("db").unwrap_or("");
            let (start, end) = match (parse_ns(&req, "start"), parse_ns(&req, "end")) {
                (Ok(Some(s)), Ok(Some(e))) => (s, e),
                (Ok(None), _) | (_, Ok(None)) => {
                    return Response::json(400, error_json("missing `start`/`end` parameter"))
                }
                (Err(r), _) | (_, Err(r)) => return r,
            };
            let step = match parse_ns(&req, "step") {
                Ok(step) => step,
                Err(r) => return r,
            };
            match influx.query_range(db, q, start, end, step) {
                Ok(result) => Response::json(200, result.to_json().to_string()),
                Err(e @ lms_util::Error::NotFound(_)) => {
                    Response::json(404, error_json(&e.to_string()))
                }
                Err(e) => Response::json(400, error_json(&e.to_string())),
            }
        }
        ("GET", "/metrics") => {
            let db = req.query_param("db").unwrap_or("");
            match influx.measurements(db) {
                Ok(names) => {
                    let body = Json::obj([(
                        "metrics",
                        Json::Arr(names.into_iter().map(Json::str).collect()),
                    )]);
                    Response::json(200, body.to_string())
                }
                Err(e) => Response::json(404, error_json(&e.to_string())),
            }
        }
        ("GET", path) if path.starts_with("/labels/") => {
            let measurement = &path["/labels/".len()..];
            let db = req.query_param("db").unwrap_or("");
            match influx.tag_keys(db, measurement) {
                Ok(keys) => {
                    let body = Json::obj([(
                        "labels",
                        Json::Arr(keys.into_iter().map(Json::str).collect()),
                    )]);
                    Response::json(200, body.to_string())
                }
                Err(e) => Response::json(404, error_json(&e.to_string())),
            }
        }
        ("GET", "/integrity") => {
            let Some(db) = req.query_param("db") else {
                return Response::json(400, error_json("missing `db` parameter"));
            };
            let int_param = |name: &str, default: u64| {
                req.query_param(name).and_then(|v| v.parse::<u64>().ok()).unwrap_or(default)
            };
            let nodes = int_param("nodes", 1) as usize;
            let replication = int_param("replication", 1) as usize;
            let seed = int_param("seed", 0);
            match influx.integrity_digests(db, nodes, replication, seed) {
                Ok(digests) => {
                    let body = Json::obj([
                        ("db", Json::str(db)),
                        ("digests", lms_util::digest::digests_to_json(&digests)),
                    ]);
                    Response::json(200, body.to_string())
                }
                // Missing database is 404 for the same reason as /query:
                // the router's repair pass reads it as "this replica holds
                // nothing" (a zero-count divergence), not as an error.
                Err(e) => Response::json(404, error_json(&e.to_string())),
            }
        }
        ("GET", "/integrity/export") => {
            let Some(db) = req.query_param("db") else {
                return Response::json(400, error_json("missing `db` parameter"));
            };
            let (start, end) = match (parse_ns(&req, "start"), parse_ns(&req, "end")) {
                (Ok(Some(s)), Ok(Some(e))) => (s, e),
                (Ok(None), _) | (_, Ok(None)) => {
                    return Response::json(400, error_json("missing `start`/`end` parameter"))
                }
                (Err(r), _) | (_, Err(r)) => return r,
            };
            match influx.integrity_export(db, start, end) {
                Ok(lines) => Response::text(200, lines),
                Err(e) => Response::json(404, error_json(&e.to_string())),
            }
        }
        ("GET", "/stats") => {
            let s = influx.storage_stats();
            let (rollup_passes, rollup_rows) = influx.rollup_counters();
            let body = Json::obj([
                ("rollups_enabled", Json::Bool(influx.rollups_enabled())),
                ("rollup_passes", Json::Int(rollup_passes as i64)),
                ("rollup_rows", Json::Int(rollup_rows as i64)),
                ("head_points", Json::Int(s.head_points as i64)),
                ("sealed_points", Json::Int(s.sealed_points as i64)),
                ("sealed_blocks", Json::Int(s.sealed_blocks as i64)),
                ("sealed_bytes", Json::Int(s.sealed_bytes as i64)),
                ("compression_ratio", Json::Num(s.compression_ratio())),
                ("wal_bytes", Json::Int(s.wal_bytes as i64)),
                ("segment_files", Json::Int(s.segment_files as i64)),
                ("segment_bytes", Json::Int(s.segment_bytes as i64)),
                ("compactions", Json::Int(s.compactions as i64)),
                ("recovered_records", Json::Int(s.recovered_records as i64)),
                ("group_commits", Json::Int(s.group_commits as i64)),
                ("wal_fsyncs", Json::Int(s.wal_fsyncs as i64)),
                ("batched_points_per_commit", Json::Num(s.batched_points_per_commit)),
                ("shard_buffer_depth", Json::Int(s.shard_buffer_depth as i64)),
                ("scrubbed_bytes", Json::Int(s.scrubbed_bytes as i64)),
                ("corrupt_frames", Json::Int(s.corrupt_frames as i64)),
                ("quarantined_segments", Json::Int(s.quarantined_segments as i64)),
                ("damaged_ranges", Json::Int(s.damaged_ranges as i64)),
                ("storage_degraded", Json::Bool(s.degraded)),
                ("workers_ready", Json::Bool(influx.workers_ready())),
            ]);
            Response::json(200, body.to_string())
        }
        ("GET", "/health/live") | ("HEAD", "/health/live") => Response::no_content(),
        ("GET", "/health/ready") | ("HEAD", "/health/ready") => {
            let degraded = influx.storage_degraded();
            let workers_ready = influx.workers_ready();
            if !degraded && workers_ready {
                return Response::no_content();
            }
            let workers = Json::Arr(
                influx
                    .worker_reports()
                    .into_iter()
                    .map(|w| {
                        Json::obj([
                            ("name", Json::str(w.name)),
                            ("health", Json::str(w.health.as_str())),
                            ("restarts", Json::Int(w.restarts as i64)),
                        ])
                    })
                    .collect(),
            );
            let body = Json::obj([
                ("storage_degraded", Json::Bool(degraded)),
                ("workers_ready", Json::Bool(workers_ready)),
                ("workers", workers),
            ]);
            Response::json(503, body.to_string())
        }
        _ => Response::not_found("unknown endpoint"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_http::HttpClient;
    use lms_util::{Clock, Timestamp};

    fn start() -> (InfluxServer, Influx, HttpClient) {
        let influx = Influx::new(Clock::simulated(Timestamp::from_secs(1000)));
        let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        let client = HttpClient::connect(server.addr()).unwrap();
        (server, influx, client)
    }

    #[test]
    fn ping() {
        let (server, _ix, mut c) = start();
        let r = c.get("/ping").unwrap();
        assert_eq!(r.status, 204);
        assert!(r.header("x-influxdb-version").is_some());
        server.shutdown();
    }

    #[test]
    fn write_then_query_over_http() {
        let (server, _ix, mut c) = start();
        let r = c
            .post_text("/write?db=lms", "cpu,hostname=h1 value=0.5 900000000000")
            .unwrap();
        assert_eq!(r.status, 204);
        let r = c.get("/query?db=lms&q=SELECT%20value%20FROM%20cpu").unwrap();
        assert_eq!(r.status, 200);
        let json = Json::parse(&r.body_str()).unwrap();
        let v = json
            .get("results").unwrap().idx(0).unwrap()
            .get("series").unwrap().idx(0).unwrap()
            .get("values").unwrap().idx(0).unwrap();
        assert_eq!(v.idx(0).unwrap().as_i64(), Some(900_000_000_000));
        assert_eq!(v.idx(1).unwrap().as_f64(), Some(0.5));
        server.shutdown();
    }

    #[test]
    fn write_precision_parameter() {
        let (server, ix, mut c) = start();
        let r = c.post_text("/write?db=lms&precision=s", "m v=1 900").unwrap();
        assert_eq!(r.status, 204);
        let result = ix.query("lms", "SELECT v FROM m").unwrap();
        assert_eq!(result.series[0].values[0][0].as_i64(), Some(900_000_000_000));
        server.shutdown();
    }

    #[test]
    fn write_errors() {
        let (server, ix, mut c) = start();
        assert_eq!(c.post_text("/write", "m v=1").unwrap().status, 400);
        assert_eq!(c.post_text("/write?db=lms&precision=xx", "m v=1").unwrap().status, 400);
        assert_eq!(c.post_text("/write?db=lms", "totally broken").unwrap().status, 400);
        ix.set_auto_create(false);
        assert_eq!(c.post_text("/write?db=ghost", "m v=1").unwrap().status, 404);
        server.shutdown();
    }

    #[test]
    fn query_errors() {
        let (server, _ix, mut c) = start();
        assert_eq!(c.get("/query?db=lms").unwrap().status, 400);
        let r = c.get("/query?db=missing&q=SELECT%20v%20FROM%20m").unwrap();
        assert_eq!(r.status, 404, "missing database is 404 (cluster routers rely on it)");
        assert!(r.body_str().contains("error"));
        server.shutdown();
    }

    #[test]
    fn create_database_over_http() {
        let (server, ix, mut c) = start();
        ix.set_auto_create(false);
        let r = c.post("/query?q=CREATE%20DATABASE%20userdb", b"").unwrap();
        assert_eq!(r.status, 200);
        assert!(ix.database_names().contains(&"userdb".to_string()));
        server.shutdown();
    }

    #[test]
    fn stats_reports_storage_gauges() {
        let dir = std::env::temp_dir().join(format!("lms-http-stats-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let influx = Influx::open(
            Clock::simulated(Timestamp::from_secs(1000)),
            2,
            crate::db::StorageConfig::new(&dir),
        )
        .unwrap();
        let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        let mut c = HttpClient::connect(server.addr()).unwrap();
        c.post_text("/write?db=lms", "cpu,hostname=h1 value=0.5 900000000000").unwrap();
        influx.flush_storage().unwrap();
        let r = c.get("/stats").unwrap();
        assert_eq!(r.status, 200);
        let json = Json::parse(&r.body_str()).unwrap();
        assert_eq!(json.get("sealed_blocks").unwrap().as_i64(), Some(1));
        assert_eq!(json.get("segment_files").unwrap().as_i64(), Some(1));
        assert!(json.get("segment_bytes").unwrap().as_i64().unwrap() > 0);
        assert!(json.get("compression_ratio").is_some());
        // Write-path gauges: one batch went through, so at least one WAL
        // group committed, and nothing can still be sitting staged.
        assert!(json.get("group_commits").unwrap().as_i64().unwrap() >= 1);
        assert!(json.get("wal_fsyncs").unwrap().as_i64().unwrap() >= 1, "flush rotation syncs");
        assert!(json.get("batched_points_per_commit").is_some());
        assert_eq!(json.get("shard_buffer_depth").unwrap().as_i64(), Some(0));
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn integrity_endpoints_round_trip() {
        let dir = std::env::temp_dir().join(format!("lms-http-integrity-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let influx = Influx::open(
            Clock::simulated(Timestamp::from_secs(1000)),
            2,
            crate::db::StorageConfig::new(&dir),
        )
        .unwrap();
        let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        let mut c = HttpClient::connect(server.addr()).unwrap();
        c.post_text("/write?db=lms", "cpu,hostname=h1 value=0.5 900000000000").unwrap();

        let r = c.get("/integrity?db=lms&nodes=3&replication=2&seed=7").unwrap();
        assert_eq!(r.status, 200);
        let json = Json::parse(&r.body_str()).unwrap();
        let digests = json.get("digests").unwrap();
        let first = digests.idx(0).unwrap();
        assert_eq!(first.get("count").unwrap().as_i64(), Some(1));
        assert!(first.get("hash").unwrap().as_str().is_some());
        // Unknown database reads as "holds nothing": 404, like /query.
        assert_eq!(c.get("/integrity?db=ghost").unwrap().status, 404);
        assert_eq!(c.get("/integrity").unwrap().status, 400);

        let r = c.get("/integrity/export?db=lms&start=0&end=1000000000000").unwrap();
        assert_eq!(r.status, 200);
        let body = r.body_str().into_owned();
        assert!(body.contains("cpu,hostname=h1 value=0.5 900000000000"), "{body}");
        // Replaying the export is idempotent under last-write-wins.
        assert_eq!(c.post_text("/write?db=lms", &body).unwrap().status, 204);
        assert_eq!(influx.point_count("lms"), 1);
        assert_eq!(c.get("/integrity/export?db=lms&start=0").unwrap().status, 400);

        // The integrity gauges are visible in /stats.
        let r = c.get("/stats").unwrap();
        let json = Json::parse(&r.body_str()).unwrap();
        assert_eq!(json.get("quarantined_segments").unwrap().as_i64(), Some(0));
        assert_eq!(json.get("corrupt_frames").unwrap().as_i64(), Some(0));
        assert_eq!(json.get("damaged_ranges").unwrap().as_i64(), Some(0));
        assert!(json.get("scrubbed_bytes").is_some());
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_endpoints() {
        let (server, _ix, mut c) = start();
        assert_eq!(c.get("/health/live").unwrap().status, 204);
        // Memory-only, no worker: ready.
        assert_eq!(c.get("/health/ready").unwrap().status, 204);
        server.shutdown();
    }

    #[test]
    fn degraded_storage_sheds_writes_and_fails_readiness() {
        let dir = std::env::temp_dir().join(format!("lms-http-degraded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let influx = Influx::open(
            Clock::simulated(Timestamp::from_secs(1000)),
            2,
            crate::db::StorageConfig::new(&dir),
        )
        .unwrap();
        let server = InfluxServer::start("127.0.0.1:0", influx.clone()).unwrap();
        let mut c = HttpClient::connect(server.addr()).unwrap();
        assert_eq!(c.post_text("/write?db=lms", "cpu v=1 900000000000").unwrap().status, 204);

        // Simulate the disk filling up mid-run.
        let db = influx.database("lms").unwrap();
        let engine = db.engine().unwrap();
        engine.inject_wal_append_failure(true);
        // First write surfaces the ENOSPC (400/500 class); after that the
        // engine is degraded and sheds with 503 + Retry-After.
        let _ = c.post_text("/write?db=lms", "cpu v=2 900000000001").unwrap();
        let r = c.post_text("/write?db=lms", "cpu v=3 900000000002").unwrap();
        assert_eq!(r.status, 503);
        assert!(r.header("retry-after").is_some());
        // Events are still admitted (priority traffic).
        let r = c
            .post_text("/write?db=lms", "events,jobid=7 text=\"start\" 900000000003")
            .unwrap();
        assert_eq!(r.status, 204);

        let r = c.get("/stats").unwrap();
        let json = Json::parse(&r.body_str()).unwrap();
        assert_eq!(json.get("storage_degraded").unwrap().as_bool(), Some(true));
        let r = c.get("/health/ready").unwrap();
        assert_eq!(r.status, 503);

        // Operator frees space: readiness returns.
        engine.inject_wal_append_failure(false);
        engine.clear_degraded();
        assert_eq!(c.get("/health/ready").unwrap().status, 204);
        assert_eq!(c.post_text("/write?db=lms", "cpu v=4 900000000004").unwrap().status, 204);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_range_over_http() {
        let (server, _ix, mut c) = start();
        c.post_text(
            "/write?db=lms",
            "cpu,hostname=h1 value=1 10000000000\n\
             cpu,hostname=h1 value=2 70000000000\n\
             cpu,hostname=h1 value=9 200000000000",
        )
        .unwrap();
        // [0s, 120s) at 60s steps: two buckets, the 200s point excluded.
        let r = c
            .get("/query_range?db=lms&q=SELECT%20sum(value)%20FROM%20cpu&start=0&end=120000000000&step=1m")
            .unwrap();
        assert_eq!(r.status, 200);
        let json = Json::parse(&r.body_str()).unwrap();
        let values = json
            .get("results").unwrap().idx(0).unwrap()
            .get("series").unwrap().idx(0).unwrap()
            .get("values").unwrap();
        assert_eq!(values.idx(0).unwrap().idx(1).unwrap().as_f64(), Some(1.0));
        assert_eq!(values.idx(1).unwrap().idx(1).unwrap().as_f64(), Some(2.0));
        assert!(values.idx(2).is_none());

        // Missing bounds and malformed step are 400s.
        assert_eq!(c.get("/query_range?db=lms&q=SELECT%20value%20FROM%20cpu").unwrap().status, 400);
        assert_eq!(
            c.get("/query_range?db=lms&q=SELECT%20value%20FROM%20cpu&start=0&end=10&step=bogus")
                .unwrap()
                .status,
            400
        );
        // Missing database stays 404 so routers can tell it apart.
        assert_eq!(
            c.get("/query_range?db=ghost&q=SELECT%20value%20FROM%20cpu&start=0&end=10")
                .unwrap()
                .status,
            404
        );
        server.shutdown();
    }

    #[test]
    fn metrics_and_labels_listings() {
        let (server, _ix, mut c) = start();
        c.post_text(
            "/write?db=lms",
            "cpu,hostname=h1,socket=0 value=1 1\nmem,hostname=h1 used=2 2",
        )
        .unwrap();
        let r = c.get("/metrics?db=lms").unwrap();
        assert_eq!(r.status, 200);
        let json = Json::parse(&r.body_str()).unwrap();
        let names: Vec<&str> = (0..)
            .map_while(|i| json.get("metrics").unwrap().idx(i))
            .map(|j| j.as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["cpu", "mem"]);

        let r = c.get("/labels/cpu?db=lms").unwrap();
        assert_eq!(r.status, 200);
        let json = Json::parse(&r.body_str()).unwrap();
        let labels: Vec<&str> = (0..)
            .map_while(|i| json.get("labels").unwrap().idx(i))
            .map(|j| j.as_str().unwrap())
            .collect();
        assert_eq!(labels, vec!["hostname", "socket"]);

        // Unknown measurement: empty label set, still 200.
        let r = c.get("/labels/ghost?db=lms").unwrap();
        assert_eq!(r.status, 200);
        assert!(Json::parse(&r.body_str()).unwrap().get("labels").unwrap().idx(0).is_none());
        // Unknown database: 404.
        assert_eq!(c.get("/metrics?db=ghost").unwrap().status, 404);
        assert_eq!(c.get("/labels/cpu?db=ghost").unwrap().status, 404);
        server.shutdown();
    }

    #[test]
    fn unknown_endpoint_404() {
        let (server, _ix, mut c) = start();
        assert_eq!(c.get("/nope").unwrap().status, 404);
        server.shutdown();
    }
}
