//! # lms-apps
//!
//! Proxy applications and workload profiles for the LMS reproduction.
//!
//! - [`minimd`] — a real Lennard-Jones molecular-dynamics proxy app in the
//!   spirit of Mantevo's miniMD: FCC lattice, cell-list neighbor search,
//!   velocity-Verlet integration, multi-threaded force computation, and
//!   thermodynamic output (temperature, pressure, energy). Instrumented
//!   with `libusermetric` it regenerates the paper's Fig. 3.
//! - [`profiles`] — maps named application profiles (what a job "runs") to
//!   the HPM simulator's workload models and the sysmon activity models,
//!   so the cluster simulation can drive both simulators consistently from
//!   one job description.

pub mod minimd;
pub mod profiles;

pub use minimd::{MiniMd, MiniMdConfig, Thermo};
pub use profiles::AppProfile;
