//! Application profiles: one job description driving both simulators.
//!
//! A cluster-simulation job "runs" some application; the profile maps that
//! choice consistently onto (a) the HPM simulator's per-thread workload
//! model and (b) the sysmon activity model, so hardware counters and
//! system metrics tell the same story — the property the paper's analysis
//! relies on when it combines both data sources (Sec. V).

use lms_hpm::simulate::{compute_with_break, EventRates, WorkloadModel, WorkloadPhase};
use lms_sysmon::NodeActivity;
use lms_topology::Topology;
use std::time::Duration;

/// What a simulated job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppProfile {
    /// DGEMM-like compute-bound solver (near-peak FLOP/s).
    Dgemm,
    /// STREAM-like memory-bound kernel (near-peak bandwidth).
    Stream,
    /// A typical balanced solver (the miniMD-style workload).
    MiniMd,
    /// A job that sits idle (the pathological case of Sec. V).
    IdleJob,
    /// Computes, stalls for `gap` mid-run, resumes (paper Fig. 4).
    ComputeWithBreak {
        /// Busy time before the stall.
        busy: Duration,
        /// Stall length.
        gap: Duration,
    },
    /// Checkpoint-heavy: alternates compute with I/O bursts.
    CheckpointHeavy,
}

impl AppProfile {
    /// Parses a profile name (job scripts reference them by string).
    pub fn parse(name: &str) -> Option<Self> {
        Some(match name {
            "dgemm" => AppProfile::Dgemm,
            "stream" => AppProfile::Stream,
            "minimd" => AppProfile::MiniMd,
            "idle" => AppProfile::IdleJob,
            "checkpoint" => AppProfile::CheckpointHeavy,
            _ => return None,
        })
    }

    /// The HPM workload model for one hardware thread of this job.
    pub fn hpm_model(&self, topo: &Topology) -> WorkloadModel {
        match self {
            AppProfile::Dgemm => WorkloadModel::constant(EventRates::compute_bound(topo)),
            AppProfile::Stream => WorkloadModel::constant(EventRates::memory_bound(topo)),
            AppProfile::MiniMd => WorkloadModel::constant(EventRates::balanced(topo)),
            AppProfile::IdleJob => WorkloadModel::constant(EventRates::idle()),
            AppProfile::ComputeWithBreak { busy, gap } => compute_with_break(topo, *busy, *gap),
            AppProfile::CheckpointHeavy => WorkloadModel::sequence(vec![
                WorkloadPhase {
                    duration: Some(Duration::from_secs(120)),
                    rates: EventRates::balanced(topo),
                },
                WorkloadPhase {
                    duration: Some(Duration::from_secs(30)),
                    rates: EventRates {
                        // I/O phase: little compute, some memory traffic.
                        dram_read_bytes: 0.5e9,
                        dram_write_bytes: 1.5e9,
                        ..EventRates::idle()
                    },
                },
            ])
            .looped(),
        }
    }

    /// The sysmon activity for a node fully allocated to this job.
    /// For phased profiles this is the activity at time `at` into the job.
    pub fn activity(&self, ncpu: u32, at: Duration) -> NodeActivity {
        match self {
            AppProfile::Dgemm | AppProfile::MiniMd => NodeActivity::busy_compute(ncpu),
            AppProfile::Stream => NodeActivity {
                cpu_iowait: 0.0,
                ..NodeActivity::busy_compute(ncpu)
            },
            AppProfile::IdleJob => NodeActivity::idle(),
            AppProfile::ComputeWithBreak { busy, gap } => {
                if at >= *busy && at < *busy + *gap {
                    NodeActivity::idle()
                } else {
                    NodeActivity::busy_compute(ncpu)
                }
            }
            AppProfile::CheckpointHeavy => {
                let cycle = Duration::from_secs(150);
                let into = Duration::from_nanos((at.as_nanos() % cycle.as_nanos()) as u64);
                if into < Duration::from_secs(120) {
                    NodeActivity::busy_compute(ncpu)
                } else {
                    NodeActivity::busy_io(ncpu)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::preset_desktop_4c()
    }

    #[test]
    fn parse_names() {
        assert_eq!(AppProfile::parse("dgemm"), Some(AppProfile::Dgemm));
        assert_eq!(AppProfile::parse("stream"), Some(AppProfile::Stream));
        assert_eq!(AppProfile::parse("minimd"), Some(AppProfile::MiniMd));
        assert_eq!(AppProfile::parse("idle"), Some(AppProfile::IdleJob));
        assert_eq!(AppProfile::parse("checkpoint"), Some(AppProfile::CheckpointHeavy));
        assert_eq!(AppProfile::parse("quake3"), None);
    }

    #[test]
    fn hpm_models_are_distinct() {
        let t = topo();
        let dgemm = AppProfile::Dgemm.hpm_model(&t).rates_at(Duration::ZERO);
        let stream = AppProfile::Stream.hpm_model(&t).rates_at(Duration::ZERO);
        let idle = AppProfile::IdleJob.hpm_model(&t).rates_at(Duration::ZERO);
        assert!(dgemm.dp_avx > 10.0 * stream.dp_avx);
        assert!(stream.dram_read_bytes > 3.0 * dgemm.dram_read_bytes);
        assert_eq!(idle.dp_avx, 0.0);
    }

    #[test]
    fn break_profile_switches_phases() {
        let t = topo();
        let p = AppProfile::ComputeWithBreak {
            busy: Duration::from_secs(100),
            gap: Duration::from_secs(50),
        };
        let m = p.hpm_model(&t);
        assert!(m.rates_at(Duration::from_secs(50)).dp_avx > 0.0);
        assert_eq!(m.rates_at(Duration::from_secs(120)).dp_avx, 0.0);
        assert!(m.rates_at(Duration::from_secs(200)).dp_avx > 0.0);
        // Sysmon view agrees.
        assert_eq!(p.activity(4, Duration::from_secs(120)), NodeActivity::idle());
        assert_ne!(p.activity(4, Duration::from_secs(50)), NodeActivity::idle());
    }

    #[test]
    fn checkpoint_profile_cycles() {
        let p = AppProfile::CheckpointHeavy;
        let busy = p.activity(4, Duration::from_secs(60));
        let io = p.activity(4, Duration::from_secs(130));
        assert!(busy.cpu_user > io.cpu_user);
        assert!(io.disk_write_bytes > busy.disk_write_bytes);
        // Wraps after 150s.
        assert_eq!(p.activity(4, Duration::from_secs(210)), busy);
    }
}
