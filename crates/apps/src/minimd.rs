//! A Lennard-Jones molecular-dynamics proxy app (miniMD-style).
//!
//! Reduced LJ units throughout (σ = ε = m = 1). The defaults mirror
//! Mantevo miniMD's standard problem: FCC lattice at density 0.8442,
//! initial temperature 1.44, cutoff 2.5 σ, Δt = 0.005 τ.
//!
//! The force loop uses a **full neighbor** cell-list traversal: every
//! thread computes the complete force on its own atom range, so threads
//! write disjoint slices and need no reduction or atomics (the fork-join
//! data-parallel shape the coding guides recommend). Each pair is thus
//! evaluated twice — the standard trade of memory safety for ~2× FLOPs
//! that miniMD's own "full neighbor" mode makes on GPUs.
//!
//! Instrumentation (paper Fig. 3): with a [`UserMetric`] attached, the run
//! emits `minimd_runtime value=<s per 100 iters>`, `minimd_pressure`,
//! `minimd_temperature` and `minimd_energy` every `report_every` steps.

use lms_usermetric::UserMetric;
use lms_util::rng::XorShift64;
use std::time::Instant;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct MiniMdConfig {
    /// FCC unit cells per dimension (atoms = 4·nx·ny·nz).
    pub nx: usize,
    /// Unit cells in y.
    pub ny: usize,
    /// Unit cells in z.
    pub nz: usize,
    /// Reduced density ρ*.
    pub density: f64,
    /// Initial reduced temperature T*.
    pub temperature: f64,
    /// Time step Δt*.
    pub dt: f64,
    /// LJ cutoff radius r_c.
    pub cutoff: f64,
    /// Rebuild the cell list every this many steps.
    pub neighbor_every: usize,
    /// Worker threads for the force loop.
    pub threads: usize,
    /// RNG seed for initial velocities.
    pub seed: u64,
}

impl Default for MiniMdConfig {
    fn default() -> Self {
        MiniMdConfig {
            nx: 4,
            ny: 4,
            nz: 4,
            density: 0.8442,
            temperature: 1.44,
            dt: 0.005,
            cutoff: 2.5,
            neighbor_every: 20,
            threads: 1,
            seed: 87287,
        }
    }
}

/// Thermodynamic state at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thermo {
    /// Instantaneous reduced temperature.
    pub temperature: f64,
    /// Instantaneous reduced pressure (virial).
    pub pressure: f64,
    /// Potential energy per atom.
    pub pe_per_atom: f64,
    /// Kinetic energy per atom.
    pub ke_per_atom: f64,
}

impl Thermo {
    /// Total energy per atom.
    pub fn total_energy(&self) -> f64 {
        self.pe_per_atom + self.ke_per_atom
    }
}

/// The simulation state.
pub struct MiniMd {
    config: MiniMdConfig,
    natoms: usize,
    box_len: [f64; 3],
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    force: Vec<[f64; 3]>,
    /// Cell grid dimensions and flat cell → atom-index lists.
    cells_dim: [usize; 3],
    cells: Vec<Vec<u32>>,
    /// Flat cell → unique neighbor cell indices (self included). Wrapping
    /// on grids narrower than 3 cells folds several of the 27 logical
    /// neighbors onto one cell; deduplication prevents multi-counting
    /// pairs there.
    cell_neighbors: Vec<Vec<u32>>,
    steps_done: usize,
    /// Running virial sum from the last force evaluation (Σ r·f over pairs,
    /// double-counted like the energy; halved in `thermo`).
    virial: f64,
    pot_energy: f64,
}

impl MiniMd {
    /// Builds the initial FCC configuration with Maxwell-ish velocities
    /// (uniform random, then shifted to zero net momentum and scaled to the
    /// target temperature — miniMD's own procedure).
    pub fn new(config: MiniMdConfig) -> Self {
        assert!(config.nx * config.ny * config.nz > 0, "empty lattice");
        assert!(config.threads >= 1, "need at least one thread");
        let natoms = 4 * config.nx * config.ny * config.nz;
        // FCC lattice constant from density: 4 atoms per a³ → a = (4/ρ)^⅓.
        let a = (4.0 / config.density).cbrt();
        let box_len =
            [a * config.nx as f64, a * config.ny as f64, a * config.nz as f64];
        let mut pos = Vec::with_capacity(natoms);
        const BASIS: [[f64; 3]; 4] =
            [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]];
        for ix in 0..config.nx {
            for iy in 0..config.ny {
                for iz in 0..config.nz {
                    for b in BASIS {
                        pos.push([
                            (ix as f64 + b[0]) * a,
                            (iy as f64 + b[1]) * a,
                            (iz as f64 + b[2]) * a,
                        ]);
                    }
                }
            }
        }
        // Velocities: uniform random, zero total momentum, scaled to T.
        let mut rng = XorShift64::new(config.seed);
        let mut vel: Vec<[f64; 3]> =
            (0..natoms).map(|_| [rng.range_f64(-0.5, 0.5), rng.range_f64(-0.5, 0.5), rng.range_f64(-0.5, 0.5)]).collect();
        let mut mean = [0.0f64; 3];
        for v in &vel {
            for d in 0..3 {
                mean[d] += v[d];
            }
        }
        for m in &mut mean {
            *m /= natoms as f64;
        }
        let mut ke2 = 0.0;
        for v in &mut vel {
            for d in 0..3 {
                v[d] -= mean[d];
            }
            ke2 += v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
        }
        let t_now = ke2 / (3.0 * (natoms as f64 - 1.0));
        let scale = (config.temperature / t_now).sqrt();
        for v in &mut vel {
            for c in v.iter_mut() {
                *c *= scale;
            }
        }

        let cells_dim: [usize; 3] = std::array::from_fn(|d| {
            ((box_len[d] / config.cutoff).floor() as usize).max(1)
        });
        let cell_neighbors = build_neighbor_map(&cells_dim);
        let mut md = MiniMd {
            config,
            natoms,
            box_len,
            pos,
            vel,
            force: vec![[0.0; 3]; natoms],
            cells_dim,
            cells: Vec::new(),
            cell_neighbors,
            steps_done: 0,
            virial: 0.0,
            pot_energy: 0.0,
        };
        md.build_cells();
        md.compute_forces();
        md
    }

    /// Number of atoms.
    pub fn natoms(&self) -> usize {
        self.natoms
    }

    /// Steps completed.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    fn build_cells(&mut self) {
        let ncells = self.cells_dim.iter().product();
        self.cells.clear();
        self.cells.resize(ncells, Vec::new());
        for (i, p) in self.pos.iter().enumerate() {
            let c = self.cell_of(p);
            self.cells[c].push(i as u32);
        }
    }

    fn cell_of(&self, p: &[f64; 3]) -> usize {
        let mut idx = [0usize; 3];
        for d in 0..3 {
            let f = (p[d] / self.box_len[d] * self.cells_dim[d] as f64).floor() as isize;
            idx[d] = f.rem_euclid(self.cells_dim[d] as isize) as usize;
        }
        (idx[2] * self.cells_dim[1] + idx[1]) * self.cells_dim[0] + idx[0]
    }

    /// Recomputes forces (and PE/virial) with the current cell list.
    fn compute_forces(&mut self) {
        let cutoff_sq = self.config.cutoff * self.config.cutoff;
        let nthreads = self.config.threads.min(self.natoms).max(1);
        let chunk = self.natoms.div_ceil(nthreads);

        // Per-thread partial sums of (pe, virial).
        let mut partials = vec![(0.0f64, 0.0f64); nthreads];
        {
            let pos = &self.pos;
            let cells = &self.cells;
            let cells_dim = self.cells_dim;
            let box_len = self.box_len;
            let cell_neighbors = &self.cell_neighbors;
            let force_chunks: Vec<&mut [[f64; 3]]> = self.force.chunks_mut(chunk).collect();

            std::thread::scope(|scope| {
                for ((t, forces), partial) in
                    force_chunks.into_iter().enumerate().zip(partials.iter_mut())
                {
                    scope.spawn(move || {
                        let start = t * chunk;
                        let (mut pe, mut vir) = (0.0f64, 0.0f64);
                        for (local, f) in forces.iter_mut().enumerate() {
                            let i = start + local;
                            *f = [0.0; 3];
                            let pi = &pos[i];
                            // Visit the (deduplicated) neighbor cells of atom i.
                            let ci = cell_index_of(pi, &box_len, &cells_dim);
                            let flat = (ci[2] * cells_dim[1] + ci[1]) * cells_dim[0] + ci[0];
                            for &neighbor in &cell_neighbors[flat] {
                                for &j in &cells[neighbor as usize] {
                                    let j = j as usize;
                                    if j == i {
                                        continue;
                                    }
                                    let d = min_image_free(pi, &pos[j], &box_len);
                                    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                                    if r2 >= cutoff_sq || r2 == 0.0 {
                                        continue;
                                    }
                                    let inv_r2 = 1.0 / r2;
                                    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
                                    // F/r = 48 r^-14 − 24 r^-8 ; U = 4(r^-12 − r^-6)
                                    let f_over_r = (48.0 * inv_r6 * inv_r6 - 24.0 * inv_r6) * inv_r2;
                                    for k in 0..3 {
                                        f[k] += d[k] * f_over_r;
                                    }
                                    pe += 4.0 * inv_r6 * (inv_r6 - 1.0);
                                    vir += r2 * f_over_r;
                                }
                            }
                        }
                        *partial = (pe, vir);
                    });
                }
            });
        }
        // Pairs were visited twice (i→j and j→i): halve the sums.
        self.pot_energy = partials.iter().map(|p| p.0).sum::<f64>() / 2.0;
        self.virial = partials.iter().map(|p| p.1).sum::<f64>() / 2.0;
    }

    /// One velocity-Verlet step.
    pub fn step(&mut self) {
        let dt = self.config.dt;
        let half = 0.5 * dt;
        for i in 0..self.natoms {
            for k in 0..3 {
                self.vel[i][k] += half * self.force[i][k];
                self.pos[i][k] += dt * self.vel[i][k];
                // Wrap into the box.
                let l = self.box_len[k];
                if self.pos[i][k] < 0.0 {
                    self.pos[i][k] += l;
                } else if self.pos[i][k] >= l {
                    self.pos[i][k] -= l;
                }
            }
        }
        self.steps_done += 1;
        if self.steps_done.is_multiple_of(self.config.neighbor_every) {
            self.build_cells();
        }
        self.compute_forces();
        for i in 0..self.natoms {
            for k in 0..3 {
                self.vel[i][k] += half * self.force[i][k];
            }
        }
    }

    /// Current thermodynamic state.
    pub fn thermo(&self) -> Thermo {
        let n = self.natoms as f64;
        let ke2: f64 =
            self.vel.iter().map(|v| v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sum();
        let temperature = ke2 / (3.0 * (n - 1.0));
        let volume: f64 = self.box_len.iter().product();
        // P = ρT + virial/(3V)
        let pressure = n / volume * temperature + self.virial / (3.0 * volume);
        Thermo {
            temperature,
            pressure,
            pe_per_atom: self.pot_energy / n,
            ke_per_atom: 0.5 * ke2 / n,
        }
    }

    /// Runs `steps` steps, reporting thermo data every `report_every`
    /// steps through `monitor` (paper Fig. 3's four metrics). Returns the
    /// final state.
    pub fn run(
        &mut self,
        steps: usize,
        report_every: usize,
        monitor: Option<&UserMetric>,
    ) -> Thermo {
        let mut window_start = Instant::now();
        for s in 1..=steps {
            self.step();
            if report_every > 0 && s % report_every == 0 {
                if let Some(um) = monitor {
                    let elapsed = window_start.elapsed().as_secs_f64();
                    // Normalize to "runtime of 100 iterations" (Fig. 3 left).
                    let per100 = elapsed * 100.0 / report_every as f64;
                    let t = self.thermo();
                    um.metric("minimd_runtime", per100);
                    um.metric("minimd_pressure", t.pressure);
                    um.metric("minimd_temperature", t.temperature);
                    um.metric("minimd_energy", t.total_energy());
                }
                window_start = Instant::now();
            }
        }
        self.thermo()
    }
}

/// Free function versions used inside the parallel scope (no `&self`).
#[inline]
fn min_image_free(a: &[f64; 3], b: &[f64; 3], box_len: &[f64; 3]) -> [f64; 3] {
    let mut d = [0.0; 3];
    for k in 0..3 {
        let mut x = a[k] - b[k];
        let l = box_len[k];
        if x > l * 0.5 {
            x -= l;
        } else if x < -l * 0.5 {
            x += l;
        }
        d[k] = x;
    }
    d
}

#[inline]
fn cell_index_of(p: &[f64; 3], box_len: &[f64; 3], dims: &[usize; 3]) -> [usize; 3] {
    std::array::from_fn(|d| {
        let f = (p[d] / box_len[d] * dims[d] as f64).floor() as isize;
        f.rem_euclid(dims[d] as isize) as usize
    })
}

/// Unique flat indices of a cell's periodic 27-neighborhood.
fn neighbor_cells(ci: [usize; 3], dims: &[usize; 3]) -> Vec<u32> {
    let deltas = [-1isize, 0, 1];
    let mut out = Vec::with_capacity(27);
    for dz in deltas {
        for dy in deltas {
            for dx in deltas {
                let x = (ci[0] as isize + dx).rem_euclid(dims[0] as isize) as usize;
                let y = (ci[1] as isize + dy).rem_euclid(dims[1] as isize) as usize;
                let z = (ci[2] as isize + dz).rem_euclid(dims[2] as isize) as usize;
                out.push(((z * dims[1] + y) * dims[0] + x) as u32);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Precomputes the neighbor map for every cell of the grid.
fn build_neighbor_map(dims: &[usize; 3]) -> Vec<Vec<u32>> {
    let mut map = Vec::with_capacity(dims.iter().product());
    for z in 0..dims[2] {
        for y in 0..dims[1] {
            for x in 0..dims[0] {
                map.push(neighbor_cells([x, y, z], dims));
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_usermetric::UserMetricConfig;
    use lms_util::{Clock, Timestamp};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn small() -> MiniMdConfig {
        MiniMdConfig { nx: 3, ny: 3, nz: 3, ..Default::default() }
    }

    #[test]
    fn lattice_construction() {
        let md = MiniMd::new(small());
        assert_eq!(md.natoms(), 4 * 27);
        // Density check: N / V == config density.
        let v: f64 = md.box_len.iter().product();
        let rho = md.natoms() as f64 / v;
        assert!((rho - 0.8442).abs() < 1e-12, "rho = {rho}");
    }

    #[test]
    fn initial_temperature_matches_target() {
        let md = MiniMd::new(small());
        let t = md.thermo().temperature;
        assert!((t - 1.44).abs() < 1e-9, "T = {t}");
    }

    #[test]
    fn zero_net_momentum() {
        let md = MiniMd::new(small());
        let mut p = [0.0f64; 3];
        for v in &md.vel {
            for k in 0..3 {
                p[k] += v[k];
            }
        }
        for k in 0..3 {
            assert!(p[k].abs() < 1e-9, "net momentum {p:?}");
        }
    }

    #[test]
    fn energy_is_approximately_conserved() {
        let mut md = MiniMd::new(small());
        let e0 = md.thermo().total_energy();
        for _ in 0..200 {
            md.step();
        }
        let e1 = md.thermo().total_energy();
        // Truncated (unshifted) LJ with r_c=2.5 and dt=0.005 drifts a
        // little at neighbor rebuilds; 1% over 200 steps is conservative.
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 0.01, "energy drift {drift} (e0={e0}, e1={e1})");
    }

    #[test]
    fn equilibrates_to_plausible_lj_state() {
        let mut md = MiniMd::new(small());
        let t = md.run(300, 0, None);
        // Known miniMD behaviour for ρ*=0.8442, T0=1.44: T settles near
        // ~0.7-0.8 as KE converts to PE; pressure lands positive, O(1-10);
        // PE per atom near -5.5 ± 1.
        assert!((0.4..1.2).contains(&t.temperature), "T = {}", t.temperature);
        assert!((-7.0..-4.0).contains(&t.pe_per_atom), "PE = {}", t.pe_per_atom);
        assert!((-2.0..20.0).contains(&t.pressure), "P = {}", t.pressure);
    }

    #[test]
    fn threaded_forces_match_serial() {
        let serial = MiniMd::new(small());
        let parallel = MiniMd::new(MiniMdConfig { threads: 4, ..small() });
        for (a, b) in serial.force.iter().zip(&parallel.force) {
            for k in 0..3 {
                assert!((a[k] - b[k]).abs() < 1e-10, "{a:?} vs {b:?}");
            }
        }
        // And stays identical after stepping.
        let mut s = serial;
        let mut p = parallel;
        for _ in 0..10 {
            s.step();
            p.step();
        }
        let (ts, tp) = (s.thermo(), p.thermo());
        assert!((ts.total_energy() - tp.total_energy()).abs() < 1e-9);
        assert!((ts.pressure - tp.pressure).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut md = MiniMd::new(small());
            md.run(50, 0, None).total_energy()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn monitoring_emits_fig3_metrics() {
        let captured: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = captured.clone();
        let um = lms_usermetric::UserMetric::to_fn(
            UserMetricConfig::default(),
            Clock::simulated(Timestamp::from_secs(0)),
            move |b| sink.lock().push(b.to_string()),
        );
        let mut md = MiniMd::new(MiniMdConfig { nx: 2, ny: 2, nz: 2, ..Default::default() });
        md.run(40, 10, Some(&um));
        um.flush();
        let body = captured.lock().join("");
        for metric in
            ["minimd_runtime", "minimd_pressure", "minimd_temperature", "minimd_energy"]
        {
            assert_eq!(
                body.lines().filter(|l| l.starts_with(metric)).count(),
                4,
                "4 reports of {metric} expected in:\n{body}"
            );
        }
    }

    #[test]
    fn neighbor_cells_unique_with_wrapping() {
        // Full 3×3×3 grid: all 27 cells are distinct neighbors.
        assert_eq!(neighbor_cells([0, 0, 0], &[3, 3, 3]).len(), 27);
        // 2-wide grid: wrapping folds -1 and +1 onto the same cell →
        // exactly the 8 distinct cells, each once (the multi-count bug
        // this dedup exists to prevent).
        assert_eq!(neighbor_cells([1, 0, 1], &[2, 2, 2]).len(), 8);
        // Degenerate 1-cell grid collapses to a single entry.
        assert_eq!(neighbor_cells([0, 0, 0], &[1, 1, 1]), vec![0]);
        // The precomputed map covers every cell.
        assert_eq!(build_neighbor_map(&[2, 3, 4]).len(), 24);
    }
}
