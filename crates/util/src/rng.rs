//! Tiny deterministic random number generation.
//!
//! The counter simulator and workload models need cheap, seedable,
//! reproducible noise in many inner loops. The `rand` crate is available and
//! used where distributions matter (e.g. miniMD initial velocities), but a
//! dependency-free xorshift keeps the hot simulator paths allocation- and
//! indirection-free and gives bit-for-bit reproducible traces across
//! platforms.

/// The chaos seed for this process, from `LMS_CHAOS_SEED` (default 1).
///
/// Every chaos/overload/recovery test derives its fault schedules, kill
/// points, and workload noise from this one value, so a CI matrix failure
/// reproduces locally with `LMS_CHAOS_SEED=<seed> cargo test ...`. An
/// unparsable value falls back to the default rather than panicking, so a
/// stray environment variable cannot mask a test run.
pub fn chaos_seed() -> u64 {
    std::env::var("LMS_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// xorshift64* generator seeded via SplitMix64.
///
/// Not cryptographically secure — strictly for simulation noise.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid:
    /// seeds are pre-mixed with SplitMix64 so a zero seed does not produce
    /// the degenerate all-zero xorshift orbit.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 step to spread low-entropy seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShift64 { state: z | 1 } // ensure non-zero
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping (slight bias below 2^-32,
        // irrelevant for simulation noise).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard-normal sample via Box–Muller (one value per call; the
    /// second is discarded to keep the generator state trivially clonable).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Gaussian noise with the given mean and standard deviation.
    #[inline]
    pub fn gauss(&mut self, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.normal()
    }

    /// Multiplicative jitter: `value * (1 ± rel)` uniformly.
    #[inline]
    pub fn jitter(&mut self, value: f64, rel: f64) -> f64 {
        value * (1.0 + self.range_f64(-rel, rel))
    }

    /// Full-jitter exponential backoff (AWS architecture-blog flavour):
    /// uniform in `[0, min(cap, base * 2^attempt))`. A retrying worker
    /// pool that backs off in lockstep hammers the recovering server in
    /// synchronized waves; sampling the whole interval decorrelates the
    /// workers. `attempt` is 0-based (first retry = attempt 0).
    pub fn backoff(&mut self, base: std::time::Duration, cap: std::time::Duration, attempt: u32) -> std::time::Duration {
        let ceil = base.saturating_mul(1u32 << attempt.min(16)).min(cap);
        std::time::Duration::from_nanos(self.below((ceil.as_nanos() as u64).max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = XorShift64::new(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = XorShift64::new(1234);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn jitter_bounds() {
        let mut r = XorShift64::new(5);
        for _ in 0..1000 {
            let v = r.jitter(100.0, 0.1);
            assert!((90.0..110.0).contains(&v));
        }
    }

    #[test]
    fn backoff_stays_in_exponential_envelope() {
        use std::time::Duration;
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let mut r = XorShift64::new(11);
        for attempt in 0..10 {
            let ceiling = base.saturating_mul(1 << attempt).min(cap);
            for _ in 0..200 {
                let d = r.backoff(base, cap, attempt);
                assert!(d < ceiling, "attempt {attempt}: {d:?} >= {ceiling:?}");
            }
        }
        // Huge attempt counts must not overflow and must respect the cap.
        assert!(r.backoff(base, cap, u32::MAX) < cap);
    }

    #[test]
    fn backoff_decorrelates_two_workers() {
        use std::time::Duration;
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let base = Duration::from_millis(50);
        let cap = Duration::from_secs(2);
        let same = (0..20)
            .filter(|&i| a.backoff(base, cap, i % 5) == b.backoff(base, cap, i % 5))
            .count();
        assert!(same < 3, "differently seeded workers should not back off in lockstep");
    }
}
