//! # lms-util
//!
//! Shared substrate for the LIKWID Monitoring Stack (LMS) reproduction.
//!
//! This crate intentionally has no dependencies on the rest of the stack; it
//! provides the small pieces every other crate needs:
//!
//! - [`clock`]: a pluggable time source so simulations can run a "10 minute"
//!   pathological-job window in milliseconds of wall time,
//! - [`hash`]: an Fx-style fast hasher for hot hash maps (tag stores, series
//!   indexes) where HashDoS resistance is irrelevant,
//! - [`error`]: the stack-wide error type,
//! - [`config`]: an INI-style configuration parser used by the daemons,
//! - [`rng`]: a tiny deterministic SplitMix64/XorShift generator for
//!   simulator noise,
//! - [`ring`]: seeded rendezvous hashing, shared by the router's placement
//!   logic and the storage nodes' integrity digests,
//! - [`digest`]: Merkle-style range digests and their diff, the vocabulary
//!   of the anti-entropy repair protocol,
//! - [`fmt`]: human-readable byte/duration/number formatting for reports,
//! - [`supervisor`]: panic-capturing restart supervision for background
//!   worker threads.

pub mod clock;
pub mod config;
pub mod digest;
pub mod error;
pub mod fmt;
pub mod hash;
pub mod json;
pub mod ring;
pub mod rng;
pub mod supervisor;

pub use clock::{Clock, Timestamp};
pub use error::{Error, Result};
pub use hash::{FxHashMap, FxHashSet};
pub use json::Json;
pub use supervisor::{Supervisor, SupervisorConfig, WorkerCtx, WorkerHealth, WorkerReport};
