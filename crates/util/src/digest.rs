//! Merkle-style range digests for anti-entropy repair.
//!
//! Every storage node can summarise a database as a list of
//! [`BucketDigest`]s: for each (hour bucket, owner set) pair, the number of
//! points it holds plus an order-independent XOR of per-point hashes. Two
//! replicas that hold the same data produce bit-identical digests, so the
//! router can detect divergence — a quarantined segment, a wiped data dir,
//! a hinted-handoff gap — by exchanging a few hundred bytes instead of the
//! data itself.
//!
//! Grouping by **owner set** (a bitmask of ring indices, computed from the
//! same seeded rendezvous ring the router uses for placement) is what makes
//! the comparison sound: node 0 and node 1 legitimately disagree about
//! series owned by `{0, 2}`, but must agree exactly about series owned by
//! `{0, 1}`. The diff therefore only compares digests between nodes that
//! are both members of the digest's owner set.
//!
//! Conflict resolution is **single-source**: for a divergent group the node
//! with the most points wins (ties broken by lowest ring index), and its
//! copy of the bucket is replayed through the normal replicated write path.
//! Cross-merging both sides would never converge — each node assigns fresh
//! local seal generations, so under last-write-wins both nodes would keep
//! preferring the foreign copy forever.

use crate::hash::fx_hash;
use crate::ring::HashRing;
use crate::{Error, Json, Result};
use std::collections::BTreeMap;

/// Width of a digest bucket: one hour of nanoseconds. Coarse enough that a
/// day of data is a couple dozen digests, fine enough that a repair
/// re-transfers at most an hour of points per divergence.
pub const DIGEST_BUCKET_NS: i64 = 3_600_000_000_000;

/// Start of the digest bucket containing `ts`.
pub fn bucket_of(ts: i64) -> i64 {
    ts.div_euclid(DIGEST_BUCKET_NS) * DIGEST_BUCKET_NS
}

/// The order-independent hash of a single point. XORing these per bucket
/// gives a set digest that is insensitive to scan order and to how points
/// are distributed across segment generations.
pub fn point_hash(series_key: &str, field: &str, ts: i64, value_bits: u64) -> u64 {
    fx_hash(&(series_key, field, ts, value_bits))
}

/// The owner set of a series as a bitmask over ring indices (bit `i` set
/// when node `i` is an owner). Masks cap the cluster at 64 nodes, far above
/// the single-digit node counts this stack targets.
pub fn owner_mask(ring: &HashRing, replication: usize, key_hash: u64) -> u64 {
    let mut owners = Vec::with_capacity(replication);
    ring.owners_into(key_hash, replication, &mut owners);
    owners.iter().fold(0u64, |m, &i| m | (1u64 << (i as u32 & 63)))
}

/// One (hour bucket, owner set) summary of a node's data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketDigest {
    /// Bucket start, nanoseconds (multiple of [`DIGEST_BUCKET_NS`]).
    pub bucket_start: i64,
    /// Owner-set bitmask over ring indices.
    pub owners: u64,
    /// Points the node holds in this bucket for series with this owner set.
    pub count: u64,
    /// XOR of [`point_hash`] over those points.
    pub hash: u64,
}

impl BucketDigest {
    /// End of the bucket (exclusive), saturating at the i64 horizon.
    pub fn bucket_end(&self) -> i64 {
        self.bucket_start.saturating_add(DIGEST_BUCKET_NS)
    }
}

/// Serialises a digest list in the wire form used by `/integrity`.
pub fn digests_to_json(digests: &[BucketDigest]) -> Json {
    Json::Arr(
        digests
            .iter()
            .map(|d| {
                Json::obj([
                    ("bucket_start", Json::Int(d.bucket_start)),
                    ("owners", Json::Int(d.owners as i64)),
                    ("count", Json::Int(d.count as i64)),
                    // The hash is an opaque u64; ship it as a hex string so
                    // it survives JSON's i64-centric number handling.
                    ("hash", Json::Str(format!("{:016x}", d.hash))),
                ])
            })
            .collect(),
    )
}

/// Parses the wire form back into digests.
pub fn digests_from_json(json: &Json) -> Result<Vec<BucketDigest>> {
    let arr = json
        .as_arr()
        .ok_or_else(|| Error::protocol("integrity digest: expected an array"))?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let get_i64 = |k: &str| {
            item.get(k)
                .and_then(Json::as_i64)
                .ok_or_else(|| Error::protocol(format!("integrity digest: missing {k}")))
        };
        let hash_str = item
            .get("hash")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::protocol("integrity digest: missing hash"))?;
        out.push(BucketDigest {
            bucket_start: get_i64("bucket_start")?,
            owners: get_i64("owners")? as u64,
            count: get_i64("count")? as u64,
            hash: u64::from_str_radix(hash_str, 16)
                .map_err(|_| Error::protocol("integrity digest: bad hash"))?,
        });
    }
    Ok(out)
}

/// A divergent range the router must repair: replay `source`'s copy of
/// `[start_ns, end_ns)` through the replicated write path so the `stale`
/// owners converge to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairTask {
    /// Range start, nanoseconds (inclusive).
    pub start_ns: i64,
    /// Range end, nanoseconds (exclusive).
    pub end_ns: i64,
    /// Ring index of the elected healthy source.
    pub source: usize,
    /// Ring indices of the owners that disagree with the source.
    pub stale: Vec<usize>,
}

/// Diffs per-node digest responses into repair tasks.
///
/// `per_node[i]` is node `i`'s digest list, or `None` when the node was
/// unreachable (it is then excluded from both sourcing and repair — pushing
/// at a dead node is the write path's hinted-handoff problem, not ours).
/// An owner that responded but reported nothing for a (bucket, owners)
/// group other members reported is treated as holding zero points — that is
/// exactly the wiped-data-dir and quarantined-range case.
pub fn diff_digests(per_node: &[Option<Vec<BucketDigest>>]) -> Vec<RepairTask> {
    // (bucket_start, owners) → per reachable member node: (count, hash).
    type MemberRows = Vec<(usize, u64, u64)>;
    let mut groups: BTreeMap<(i64, u64), MemberRows> = BTreeMap::new();
    for (node, digests) in per_node.iter().enumerate() {
        let Some(digests) = digests else { continue };
        for d in digests {
            groups
                .entry((d.bucket_start, d.owners))
                .or_default()
                .push((node, d.count, d.hash));
        }
    }
    let mut tasks = Vec::new();
    for ((bucket_start, owners), mut members) in groups {
        // Fill in reachable owners that reported nothing for this group.
        for (node, resp) in per_node.iter().enumerate().take(64) {
            if owners & (1u64 << node) != 0
                && resp.is_some()
                && !members.iter().any(|&(n, _, _)| n == node)
            {
                members.push((node, 0, 0));
            }
        }
        members.sort_unstable_by_key(|&(n, _, _)| n);
        let Some(&(first_node, first_count, first_hash)) = members.first() else { continue };
        let agree = members
            .iter()
            .all(|&(_, c, h)| c == first_count && h == first_hash);
        if agree && members.len() > 1 {
            continue;
        }
        if members.len() == 1 {
            // Only one reachable owner — nothing to compare against.
            let _ = (first_node, first_hash);
            continue;
        }
        // Single-source election: most points wins, ties to the lowest
        // ring index (members are already index-sorted, so max_by_key on
        // count keeps the first of equals).
        let (source, src_count, src_hash) = members
            .iter()
            .copied()
            .max_by_key(|&(n, c, _)| (c, usize::MAX - n))
            .unwrap();
        let stale: Vec<usize> = members
            .iter()
            .filter(|&&(n, c, h)| n != source && (c != src_count || h != src_hash))
            .map(|&(n, _, _)| n)
            .collect();
        if stale.is_empty() {
            continue;
        }
        tasks.push(RepairTask {
            start_ns: bucket_start,
            end_ns: bucket_start.saturating_add(DIGEST_BUCKET_NS),
            source,
            stale,
        });
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(bucket: i64, owners: u64, count: u64, hash: u64) -> BucketDigest {
        BucketDigest { bucket_start: bucket * DIGEST_BUCKET_NS, owners, count, hash }
    }

    #[test]
    fn identical_replicas_need_no_repair() {
        let a = vec![d(0, 0b011, 100, 0xdead), d(1, 0b011, 50, 0xbeef)];
        let per_node = vec![Some(a.clone()), Some(a), None];
        assert!(diff_digests(&per_node).is_empty());
    }

    #[test]
    fn diverging_hash_elects_the_bigger_copy() {
        let per_node = vec![
            Some(vec![d(0, 0b011, 100, 0xdead)]),
            Some(vec![d(0, 0b011, 90, 0x0bad)]),
        ];
        let tasks = diff_digests(&per_node);
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].source, 0);
        assert_eq!(tasks[0].stale, vec![1]);
        assert_eq!(tasks[0].start_ns, 0);
        assert_eq!(tasks[0].end_ns, DIGEST_BUCKET_NS);
    }

    #[test]
    fn equal_counts_tie_break_to_lowest_index() {
        let per_node = vec![
            Some(vec![d(2, 0b011, 70, 0xaaaa)]),
            Some(vec![d(2, 0b011, 70, 0xbbbb)]),
        ];
        let tasks = diff_digests(&per_node);
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].source, 0);
        assert_eq!(tasks[0].stale, vec![1]);
    }

    #[test]
    fn missing_bucket_on_one_owner_is_a_zero_count_divergence() {
        // Node 1 wiped its data dir: it answers /integrity but reports
        // nothing for the bucket.
        let per_node = vec![Some(vec![d(3, 0b011, 40, 0x1234)]), Some(vec![])];
        let tasks = diff_digests(&per_node);
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].source, 0);
        assert_eq!(tasks[0].stale, vec![1]);
    }

    #[test]
    fn unreachable_nodes_are_left_alone() {
        // Node 1 is down entirely — no task, the write path's handoff
        // spool covers it.
        let per_node = vec![Some(vec![d(0, 0b011, 40, 0x1234)]), None];
        assert!(diff_digests(&per_node).is_empty());
    }

    #[test]
    fn owner_sets_partition_the_comparison() {
        // Nodes 0 and 1 agree on their shared series; node 0's {0,2}
        // series are invisible to node 1 and must not produce tasks when
        // node 2 agrees.
        let per_node = vec![
            Some(vec![d(0, 0b011, 10, 7), d(0, 0b101, 5, 9)]),
            Some(vec![d(0, 0b011, 10, 7)]),
            Some(vec![d(0, 0b101, 5, 9)]),
        ];
        assert!(diff_digests(&per_node).is_empty());
    }

    #[test]
    fn json_round_trip() {
        let digests = vec![d(0, 0b011, 100, u64::MAX), d(5, 0b110, 0, 0)];
        let json = digests_to_json(&digests);
        let back = digests_from_json(&Json::parse(&json.to_string()).unwrap()).unwrap();
        assert_eq!(back, digests);
    }

    #[test]
    fn owner_mask_matches_ring_owners() {
        let ring = HashRing::new(4, 9);
        for k in 0..64u64 {
            let h = fx_hash(&k);
            let mask = owner_mask(&ring, 2, h);
            assert_eq!(mask.count_ones(), 2);
            for i in ring.owners(h, 2) {
                assert_ne!(mask & (1 << i), 0);
            }
        }
    }

    #[test]
    fn bucket_of_floors_negative_timestamps() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(DIGEST_BUCKET_NS - 1), 0);
        assert_eq!(bucket_of(DIGEST_BUCKET_NS), DIGEST_BUCKET_NS);
        assert_eq!(bucket_of(-1), -DIGEST_BUCKET_NS);
    }
}
