//! A small JSON value type with parser and writer.
//!
//! `serde_json` is not in the offline dependency set; LMS needs JSON in two
//! places — the database's InfluxDB-compatible `/query` responses and the
//! Grafana-style dashboard templates — so this module implements the
//! standard (RFC 8259) with one deliberate deviation: object member order is
//! **preserved** (dashboard templates are edited by humans; reordering keys
//! on every round-trip makes diffs unreadable).

use crate::error::{Error, Result};
use std::fmt::Write as _;

/// A JSON value.
///
/// Numbers are stored as either [`Json::Int`] (no decimal point or exponent
/// in the source, fits `i64`) or [`Json::Num`] (everything else). The split
/// exists because LMS timestamps are nanosecond `i64`s — far beyond the
/// 2^53 exact range of `f64`. Numeric equality compares by value across the
/// two variants.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits `i64` exactly (e.g. nanosecond timestamps).
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved member order.
    Obj(Vec<(String, Json)>),
}

impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            // Numeric: compare by value across Int/Num.
            (Json::Int(a), Json::Int(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::Int(a), Json::Num(b)) | (Json::Num(b), Json::Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl Json {
    /// Builds an object from pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable object member lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(members) => members.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Sets (or replaces) an object member. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(members) = self {
            if let Some(slot) = members.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                members.push((key.to_string(), value));
            }
        }
    }

    /// Array element lookup.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (`Int` converts; exact only up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Integer view: `Int` exactly; whole `Num`s in range convert.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.2e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::protocol(format!("json: trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Serializes with 2-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.2e18 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !members.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (`to_string()` comes via `ToString`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::protocol(format!(
                "json: expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::protocol(format!("json: bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::protocol(format!(
                "json: unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::protocol(format!("json: bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => {
                    return Err(Error::protocol(format!("json: bad object at byte {}", self.pos)))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::protocol("json: unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::protocol("json: unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::protocol(format!(
                                "json: bad escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::protocol("json: truncated utf-8"));
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end])?);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::protocol("json: truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| Error::protocol("json: bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| Error::protocol(format!("json: bad number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().idx(1).unwrap().as_f64(), Some(2.0));
        assert!(v.get("a").unwrap().idx(2).unwrap().get("b").unwrap().is_null());
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn surrogate_pairs() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse(r#""héllo wörld 日本""#).unwrap();
        assert_eq!(v.as_str(), Some("héllo wörld 日本"));
    }

    #[test]
    fn member_order_preserved() {
        let text = r#"{"zebra":1,"alpha":2,"mid":3}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn round_trip() {
        let original = Json::obj([
            ("title", Json::str("Job 42 dashboard")),
            ("rows", Json::arr([Json::obj([("height", Json::from(250i64))])])),
            ("refresh", Json::Bool(true)),
            ("ratio", Json::Num(0.5)),
            ("nothing", Json::Null),
        ]);
        let parsed = Json::parse(&original.to_string()).unwrap();
        assert_eq!(parsed, original);
        let pretty = Json::parse(&original.to_pretty()).unwrap();
        assert_eq!(pretty, original);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn nanosecond_timestamps_survive_exactly() {
        // 2^53 < ts: would corrupt as f64.
        let ts = 1_501_804_800_123_456_789i64;
        let v = Json::from(ts);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_i64(), Some(ts));
        assert_eq!(Json::parse(&format!("{}", i64::MIN)).unwrap().as_i64(), Some(i64::MIN));
    }

    #[test]
    fn numeric_equality_across_variants() {
        assert_eq!(Json::Int(3), Json::Num(3.0));
        assert_ne!(Json::Int(3), Json::Num(3.5));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
    }

    #[test]
    fn reject_malformed() {
        for bad in [
            "", "{", "[1,", r#"{"a"}"#, "tru", "01a", r#""unterminated"#, "[1] extra",
            r#"{"a":1,}"#, r#"{a:1}"#,
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn accessors_and_mutation() {
        let mut v = Json::obj([("a", Json::from(1i64))]);
        v.set("a", Json::from(2i64));
        v.set("b", Json::str("new"));
        assert_eq!(v.get("a").unwrap().as_i64(), Some(2));
        assert_eq!(v.get("b").unwrap().as_str(), Some("new"));
        *v.get_mut("a").unwrap() = Json::Null;
        assert!(v.get("a").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_obj().unwrap().len(), 2);
        assert!(Json::Null.get("x").is_none());
        assert!(Json::Null.idx(0).is_none());
    }

    #[test]
    fn type_views() {
        assert_eq!(Json::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Json::from(7i64).as_i64(), Some(7));
        assert_eq!(Json::Num(7.5).as_i64(), None);
        assert_eq!(Json::from(true).as_bool(), Some(true));
        assert_eq!(Json::str("s").as_str(), Some("s"));
        assert_eq!(Json::arr([Json::Null]).as_arr().unwrap().len(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn json_strategy() -> impl Strategy<Value = Json> {
            let leaf = prop_oneof![
                Just(Json::Null),
                any::<bool>().prop_map(Json::Bool),
                (-1e15..1e15f64).prop_map(|n| Json::Num((n * 100.0).round() / 100.0)),
                "[a-zA-Z0-9 _\\-\"\\\\\n\t]{0,16}".prop_map(Json::str),
            ];
            leaf.prop_recursive(3, 24, 4, |inner| {
                prop_oneof![
                    proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
                    proptest::collection::vec(("[a-z]{1,8}", inner), 0..4).prop_map(|m| {
                        // Deduplicate keys: objects with repeated keys don't
                        // survive parse (last occurrence is still kept but
                        // order comparison would fail).
                        let mut seen = std::collections::HashSet::new();
                        Json::Obj(
                            m.into_iter()
                                .filter(|(k, _)| seen.insert(k.clone()))
                                .collect(),
                        )
                    }),
                ]
            })
        }

        proptest! {
            #[test]
            fn round_trips(v in json_strategy()) {
                let compact = Json::parse(&v.to_string()).unwrap();
                prop_assert_eq!(&compact, &v);
                let pretty = Json::parse(&v.to_pretty()).unwrap();
                prop_assert_eq!(&pretty, &v);
            }
        }
    }
}
