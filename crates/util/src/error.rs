//! The stack-wide error type.
//!
//! LMS components are loosely coupled over wire protocols, so most errors are
//! either protocol violations (bad line-protocol syntax, malformed HTTP),
//! I/O failures, or configuration mistakes. A single enum keeps error
//! plumbing between crates simple without pulling in `thiserror`/`anyhow`
//! (not in the offline dependency set).

use std::fmt;

/// Stack-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// The error type used across all LMS crates.
#[derive(Debug)]
pub enum Error {
    /// Malformed input on a wire protocol (line protocol, HTTP, MQ framing,
    /// Ganglia XML, JSON). Carries a human-readable description including
    /// position information where available.
    Protocol(String),
    /// Configuration file/value problems.
    Config(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A query referenced something that does not exist (measurement,
    /// database, dashboard template, performance group, ...).
    NotFound(String),
    /// An operation was rejected because it would violate an invariant
    /// (e.g. counter allocation over capacity, backwards timestamps where
    /// monotonicity is required).
    Invalid(String),
    /// The remote side answered with an application-level error
    /// (HTTP status >= 400); carries status and body.
    Remote { status: u16, message: String },
    /// The component is temporarily refusing work to protect itself
    /// (admission limit reached, storage degraded to read-only). The
    /// operation was *not* attempted; retrying later may succeed, so the
    /// delivery pipeline treats this as transient. HTTP servers map it to
    /// `503 Service Unavailable` with a `Retry-After` hint.
    Unavailable(String),
}

/// Delivery-oriented error taxonomy: what the forwarding pipeline should
/// do with a failed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Retrying may succeed (connection failures, remote 5xx/429): retry
    /// with backoff, then spool.
    Transient,
    /// Retrying can never succeed (protocol violations, remote 4xx,
    /// invariant violations): reject immediately, never spool.
    Permanent,
}

impl Error {
    /// Shorthand for a protocol error with a formatted message.
    pub fn protocol(msg: impl Into<String>) -> Self {
        Error::Protocol(msg.into())
    }

    /// Shorthand for a config error with a formatted message.
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }

    /// Shorthand for a not-found error.
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }

    /// Shorthand for an invariant violation.
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::Invalid(msg.into())
    }

    /// Shorthand for a temporary refusal (overload shedding, degraded
    /// storage).
    pub fn unavailable(msg: impl Into<String>) -> Self {
        Error::Unavailable(msg.into())
    }

    /// Classifies the error for the delivery pipeline (see [`ErrorClass`]).
    /// I/O failures and remote 5xx/429 are transient; everything else —
    /// protocol violations, remote 4xx, config/invariant errors — is
    /// permanent and must not be retried or spooled.
    pub fn class(&self) -> ErrorClass {
        match self {
            Error::Io(_) => ErrorClass::Transient,
            Error::Remote { status, .. } if *status >= 500 || *status == 429 => {
                ErrorClass::Transient
            }
            Error::Unavailable(_) => ErrorClass::Transient,
            _ => ErrorClass::Permanent,
        }
    }

    /// True when retrying the operation might succeed (transient I/O or
    /// remote 5xx); used by the router's forwarding retry loop.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }

    /// True when retrying can never succeed.
    pub fn is_permanent(&self) -> bool {
        self.class() == ErrorClass::Permanent
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
            Error::Config(m) => write!(f, "config error: {m}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Invalid(m) => write!(f, "invalid operation: {m}"),
            Error::Remote { status, message } => {
                write!(f, "remote error (status {status}): {message}")
            }
            Error::Unavailable(m) => write!(f, "temporarily unavailable: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<std::num::ParseIntError> for Error {
    fn from(e: std::num::ParseIntError) -> Self {
        Error::Protocol(format!("invalid integer: {e}"))
    }
}

impl From<std::num::ParseFloatError> for Error {
    fn from(e: std::num::ParseFloatError) -> Self {
        Error::Protocol(format!("invalid float: {e}"))
    }
}

impl From<std::str::Utf8Error> for Error {
    fn from(e: std::str::Utf8Error) -> Self {
        Error::Protocol(format!("invalid utf-8: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(Error::protocol("bad line").to_string(), "protocol error: bad line");
        assert_eq!(Error::not_found("db x").to_string(), "not found: db x");
        let e = Error::Remote { status: 503, message: "overloaded".into() };
        assert!(e.to_string().contains("503"));
    }

    #[test]
    fn transient_classification() {
        assert!(Error::from(std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "x"))
            .is_transient());
        assert!(Error::Remote { status: 500, message: String::new() }.is_transient());
        assert!(Error::Remote { status: 503, message: String::new() }.is_transient());
        assert!(Error::Remote { status: 429, message: String::new() }.is_transient());
        assert!(!Error::Remote { status: 400, message: String::new() }.is_transient());
        assert!(!Error::protocol("x").is_transient());
        assert!(Error::unavailable("shedding").is_transient());
    }

    #[test]
    fn taxonomy_is_a_partition() {
        let errors = [
            Error::protocol("x"),
            Error::config("x"),
            Error::from(std::io::Error::other("x")),
            Error::not_found("x"),
            Error::invalid("x"),
            Error::Remote { status: 404, message: String::new() },
            Error::Remote { status: 500, message: String::new() },
            Error::unavailable("x"),
        ];
        for e in &errors {
            assert_ne!(e.is_transient(), e.is_permanent(), "{e}");
            assert_eq!(e.is_transient(), e.class() == ErrorClass::Transient);
        }
    }

    #[test]
    fn conversions() {
        let e: Error = "abc".parse::<i64>().unwrap_err().into();
        assert!(matches!(e, Error::Protocol(_)));
        let e: Error = "abc".parse::<f64>().unwrap_err().into();
        assert!(matches!(e, Error::Protocol(_)));
    }
}
