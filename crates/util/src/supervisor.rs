//! Supervised background workers: panic capture, jittered restart backoff,
//! and a restart-budget circuit.
//!
//! Every long-lived background thread in the stack (storage flush/compact
//! worker, spool drainer, forwarder workers, publisher) runs under a
//! [`Supervisor`]. The supervisor wraps the worker body in
//! `std::panic::catch_unwind`; a panicking worker is restarted after a
//! full-jitter exponential backoff instead of dying silently. Each worker
//! carries a restart budget — once it is exhausted (the worker keeps
//! panicking faster than [`SupervisorConfig::reset_after`]), the supervisor
//! gives up and marks the worker [`WorkerHealth::Failed`], which surfaces
//! through [`Supervisor::is_ready`] and the `/health/ready` endpoints.
//!
//! The design mirrors the delivery path's circuit breaker: transient
//! faults are absorbed (restart with backoff = retry), persistent faults
//! trip the budget (open = give up and report unhealthy) rather than
//! looping forever.

use crate::error::{Error, Result};
use crate::rng::XorShift64;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poison-tolerant lock: supervision must keep working even if a thread
/// panicked while holding one of these mutexes.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restart policy for supervised workers.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// How many restarts a worker gets before the supervisor gives up and
    /// marks it [`WorkerHealth::Failed`]. The budget refills after a run
    /// that survives [`SupervisorConfig::reset_after`].
    pub max_restarts: u32,
    /// First restart delay; doubles per consecutive panic (full jitter).
    pub backoff_base: Duration,
    /// Upper bound on the restart delay.
    pub backoff_cap: Duration,
    /// A run that lasts at least this long is considered healthy again:
    /// the consecutive-panic counter resets, refilling the budget.
    pub reset_after: Duration,
    /// Seed for the jittered backoff; deterministic for tests.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 5,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(2),
            reset_after: Duration::from_secs(30),
            seed: 0x50be_eed5,
        }
    }
}

/// Lifecycle state of one supervised worker, exported as a health gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerHealth {
    /// The worker body is running.
    Healthy,
    /// The worker panicked and is waiting out its restart backoff.
    Restarting,
    /// The restart budget is exhausted; the supervisor gave up. The
    /// component should report not-ready.
    Failed,
    /// The worker returned cleanly (normal shutdown).
    Stopped,
}

impl WorkerHealth {
    /// Stable lower-case label for `/stats` and `/health` payloads.
    pub fn as_str(&self) -> &'static str {
        match self {
            WorkerHealth::Healthy => "healthy",
            WorkerHealth::Restarting => "restarting",
            WorkerHealth::Failed => "failed",
            WorkerHealth::Stopped => "stopped",
        }
    }
}

/// Point-in-time snapshot of one worker, for health endpoints and tests.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker name as passed to [`Supervisor::spawn`].
    pub name: String,
    /// Current lifecycle state.
    pub health: WorkerHealth,
    /// Total restarts over the worker's lifetime (not just the current
    /// budget window).
    pub restarts: u64,
    /// Message of the most recent captured panic, if any.
    pub last_panic: Option<String>,
}

/// Handle passed to the worker body; the body must poll
/// [`WorkerCtx::should_stop`] (or use [`WorkerCtx::sleep`]) so shutdown and
/// restart cancellation stay prompt.
pub struct WorkerCtx {
    stop: Arc<AtomicBool>,
}

impl WorkerCtx {
    /// True once the supervisor is shutting down; the body should return.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Sleeps up to `total` in short slices, returning early (false) when
    /// shutdown is requested.
    pub fn sleep(&self, total: Duration) -> bool {
        sleep_unless(&self.stop, total)
    }
}

fn sleep_unless(stop: &AtomicBool, total: Duration) -> bool {
    let slice = Duration::from_millis(20);
    let mut left = total;
    while left > Duration::ZERO {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        let step = left.min(slice);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
    !stop.load(Ordering::Acquire)
}

struct WorkerSlot {
    name: String,
    // Encoded WorkerHealth (discriminant as usize) for lock-free reads.
    health: AtomicUsize,
    restarts: AtomicU64,
    last_panic: Mutex<Option<String>>,
}

impl WorkerSlot {
    fn set_health(&self, h: WorkerHealth) {
        self.health.store(h as usize, Ordering::Release);
    }

    fn get_health(&self) -> WorkerHealth {
        match self.health.load(Ordering::Acquire) {
            0 => WorkerHealth::Healthy,
            1 => WorkerHealth::Restarting,
            2 => WorkerHealth::Failed,
            _ => WorkerHealth::Stopped,
        }
    }
}

struct Inner {
    config: SupervisorConfig,
    stop: Arc<AtomicBool>,
    workers: Mutex<Vec<Arc<WorkerSlot>>>,
    monitors: Mutex<Vec<JoinHandle<()>>>,
    next_seed: AtomicU64,
}

/// Supervises a set of named background workers. Cheap to clone; all
/// clones share the same worker set and stop flag.
#[derive(Clone)]
pub struct Supervisor {
    inner: Arc<Inner>,
}

impl Supervisor {
    /// Creates an empty supervisor with the given restart policy.
    pub fn new(config: SupervisorConfig) -> Self {
        let seed = config.seed;
        Supervisor {
            inner: Arc::new(Inner {
                config,
                stop: Arc::new(AtomicBool::new(false)),
                workers: Mutex::new(Vec::new()),
                monitors: Mutex::new(Vec::new()),
                next_seed: AtomicU64::new(seed),
            }),
        }
    }

    /// Spawns a supervised worker. `body` is invoked repeatedly: a clean
    /// return means shutdown ([`WorkerHealth::Stopped`]); a panic is
    /// captured and the body is re-invoked after a jittered backoff until
    /// the restart budget runs out ([`WorkerHealth::Failed`]).
    pub fn spawn<F>(&self, name: &str, mut body: F) -> Result<()>
    where
        F: FnMut(&WorkerCtx) + Send + 'static,
    {
        if self.inner.stop.load(Ordering::Acquire) {
            return Err(Error::invalid("supervisor is shut down"));
        }
        let slot = Arc::new(WorkerSlot {
            name: name.to_string(),
            health: AtomicUsize::new(WorkerHealth::Healthy as usize),
            restarts: AtomicU64::new(0),
            last_panic: Mutex::new(None),
        });
        lock(&self.inner.workers).push(slot.clone());

        let config = self.inner.config.clone();
        let stop = self.inner.stop.clone();
        // Distinct deterministic seed per worker so backoff schedules do
        // not march in lockstep.
        let seed = self.inner.next_seed.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let monitor = std::thread::Builder::new()
            .name(format!("lms-supervisor-{name}"))
            .spawn(move || monitor_loop(slot, config, stop, seed, &mut body))
            .map_err(Error::from)?;
        lock(&self.inner.monitors).push(monitor);
        Ok(())
    }

    /// Snapshot of every worker's health, restart count, and last panic.
    pub fn reports(&self) -> Vec<WorkerReport> {
        lock(&self.inner.workers)
            .iter()
            .map(|slot| WorkerReport {
                name: slot.name.clone(),
                health: slot.get_health(),
                restarts: slot.restarts.load(Ordering::Relaxed),
                last_panic: lock(&slot.last_panic).clone(),
            })
            .collect()
    }

    /// Health of a single worker by name, if it exists.
    pub fn health_of(&self, name: &str) -> Option<WorkerHealth> {
        lock(&self.inner.workers).iter().find(|s| s.name == name).map(|s| s.get_health())
    }

    /// Readiness: every worker is either running or cleanly stopped. A
    /// worker mid-restart (or permanently failed) makes the component
    /// not-ready, which is exactly what `/health/ready` reports.
    pub fn is_ready(&self) -> bool {
        lock(&self.inner.workers)
            .iter()
            .all(|s| matches!(s.get_health(), WorkerHealth::Healthy | WorkerHealth::Stopped))
    }

    /// Total restarts across all workers (a monotone gauge for `/stats`).
    pub fn total_restarts(&self) -> u64 {
        lock(&self.inner.workers).iter().map(|s| s.restarts.load(Ordering::Relaxed)).sum()
    }

    /// Requests shutdown and joins every monitor (and therefore worker)
    /// thread. Idempotent; clones of this supervisor see the stop flag
    /// immediately.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Release);
        let monitors: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.inner.monitors));
        for m in monitors {
            let _ = m.join();
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for m in std::mem::take(&mut *lock(&self.monitors)) {
            let _ = m.join();
        }
    }
}

/// Extracts a human-readable message from a captured panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

fn monitor_loop<F>(
    slot: Arc<WorkerSlot>,
    config: SupervisorConfig,
    stop: Arc<AtomicBool>,
    seed: u64,
    body: &mut F,
) where
    F: FnMut(&WorkerCtx) + Send,
{
    let mut rng = XorShift64::new(seed);
    let mut consecutive: u32 = 0;
    let ctx = WorkerCtx { stop: stop.clone() };
    loop {
        slot.set_health(WorkerHealth::Healthy);
        let started = Instant::now();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| body(&ctx)));
        match outcome {
            Ok(()) => {
                // Clean return: the worker decided to stop (normally in
                // response to the stop flag).
                slot.set_health(WorkerHealth::Stopped);
                return;
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                *lock(&slot.last_panic) = Some(msg);
                slot.restarts.fetch_add(1, Ordering::Relaxed);
                if stop.load(Ordering::Acquire) {
                    // Shutting down anyway; don't bother restarting.
                    slot.set_health(WorkerHealth::Stopped);
                    return;
                }
                // A long healthy run refills the restart budget.
                if started.elapsed() >= config.reset_after {
                    consecutive = 0;
                }
                consecutive += 1;
                if consecutive > config.max_restarts {
                    slot.set_health(WorkerHealth::Failed);
                    return;
                }
                slot.set_health(WorkerHealth::Restarting);
                let delay = rng.backoff(config.backoff_base, config.backoff_cap, consecutive - 1);
                if !sleep_unless(&stop, delay) {
                    slot.set_health(WorkerHealth::Stopped);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn quick_config() -> SupervisorConfig {
        SupervisorConfig {
            max_restarts: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            reset_after: Duration::from_secs(30),
            seed: 42,
        }
    }

    fn wait_until(pred: impl Fn() -> bool, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        pred()
    }

    #[test]
    fn clean_return_is_stopped() {
        let sup = Supervisor::new(quick_config());
        sup.spawn("oneshot", |_ctx| {}).unwrap();
        assert!(wait_until(
            || sup.health_of("oneshot") == Some(WorkerHealth::Stopped),
            Duration::from_secs(2),
        ));
        assert!(sup.is_ready());
        assert_eq!(sup.total_restarts(), 0);
        sup.shutdown();
    }

    #[test]
    fn panic_restarts_then_budget_opens() {
        let sup = Supervisor::new(quick_config());
        let runs = Arc::new(AtomicU32::new(0));
        let runs2 = runs.clone();
        sup.spawn("crashy", move |_ctx| {
            runs2.fetch_add(1, Ordering::SeqCst);
            panic!("boom");
        })
        .unwrap();
        // max_restarts=3 → 4 total runs (initial + 3 restarts) then Failed.
        assert!(wait_until(
            || sup.health_of("crashy") == Some(WorkerHealth::Failed),
            Duration::from_secs(5),
        ));
        assert_eq!(runs.load(Ordering::SeqCst), 4);
        let report = &sup.reports()[0];
        assert_eq!(report.restarts, 4);
        assert_eq!(report.last_panic.as_deref(), Some("boom"));
        assert!(!sup.is_ready());
        sup.shutdown();
    }

    #[test]
    fn recovers_after_limited_panics() {
        let sup = Supervisor::new(quick_config());
        let runs = Arc::new(AtomicU32::new(0));
        let runs2 = runs.clone();
        sup.spawn("flaky", move |ctx| {
            let n = runs2.fetch_add(1, Ordering::SeqCst);
            if n < 2 {
                panic!("flake {n}");
            }
            // Healthy after two panics: wait for shutdown.
            while !ctx.should_stop() {
                std::thread::sleep(Duration::from_millis(5));
            }
        })
        .unwrap();
        assert!(wait_until(
            || sup.health_of("flaky") == Some(WorkerHealth::Healthy)
                && runs.load(Ordering::SeqCst) == 3,
            Duration::from_secs(5),
        ));
        assert!(sup.is_ready());
        assert_eq!(sup.reports()[0].restarts, 2);
        sup.shutdown();
        assert_eq!(sup.health_of("flaky"), Some(WorkerHealth::Stopped));
    }

    #[test]
    fn shutdown_cancels_backoff() {
        let mut cfg = quick_config();
        cfg.backoff_base = Duration::from_secs(10);
        cfg.backoff_cap = Duration::from_secs(10);
        let sup = Supervisor::new(cfg);
        sup.spawn("slowpoke", |_ctx| panic!("x")).unwrap();
        assert!(wait_until(
            || sup.health_of("slowpoke") == Some(WorkerHealth::Restarting),
            Duration::from_secs(2),
        ));
        let start = Instant::now();
        sup.shutdown();
        assert!(start.elapsed() < Duration::from_secs(5), "shutdown must not wait out backoff");
        assert_eq!(sup.health_of("slowpoke"), Some(WorkerHealth::Stopped));
    }

    #[test]
    fn spawn_after_shutdown_fails() {
        let sup = Supervisor::new(quick_config());
        sup.shutdown();
        assert!(sup.spawn("late", |_ctx| {}).is_err());
    }
}
