//! INI-style configuration.
//!
//! Every LMS daemon (host agent, router, DB, viewer agent) reads a plain
//! `key = value` configuration with `[sections]`, comments (`#` or `;`) and
//! duplicate-key override semantics — the format LIKWID's own tools and most
//! of the classic monitoring daemons (Diamond, Ganglia) use. Parsed entirely
//! in-memory; values are typed lazily via the getter methods.

use crate::error::{Error, Result};
use std::collections::BTreeMap;

/// A parsed configuration: section name → (key → value).
///
/// Keys outside any `[section]` live in the "" (root) section. Sections and
/// keys are stored in sorted order so serialization is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Config {
    sections: BTreeMap<String, BTreeMap<String, String>>,
}

impl Config {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses INI-style text.
    ///
    /// Later duplicate keys override earlier ones (standard INI semantics),
    /// which lets a site drop an override file after the defaults.
    pub fn parse(text: &str) -> Result<Self> {
        let mut cfg = Config::new();
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or_else(|| {
                    Error::config(format!("line {}: unterminated section header", lineno + 1))
                })?;
                section = name.trim().to_string();
                cfg.sections.entry(section.clone()).or_default();
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                Error::config(format!("line {}: expected `key = value`", lineno + 1))
            })?;
            let key = key.trim();
            if key.is_empty() {
                return Err(Error::config(format!("line {}: empty key", lineno + 1)));
            }
            cfg.sections
                .entry(section.clone())
                .or_default()
                .insert(key.to_string(), value.trim().to_string());
        }
        Ok(cfg)
    }

    /// Sets a value programmatically.
    pub fn set(&mut self, section: &str, key: &str, value: impl Into<String>) {
        self.sections
            .entry(section.to_string())
            .or_default()
            .insert(key.to_string(), value.into());
    }

    /// Raw string lookup.
    pub fn get(&self, section: &str, key: &str) -> Option<&str> {
        self.sections.get(section)?.get(key).map(String::as_str)
    }

    /// String lookup with a default.
    pub fn get_or<'a>(&'a self, section: &str, key: &str, default: &'a str) -> &'a str {
        self.get(section, key).unwrap_or(default)
    }

    /// Required string lookup.
    pub fn require(&self, section: &str, key: &str) -> Result<&str> {
        self.get(section, key)
            .ok_or_else(|| Error::config(format!("missing key `{key}` in section `[{section}]`")))
    }

    /// Typed lookup: integers.
    pub fn get_i64(&self, section: &str, key: &str) -> Result<Option<i64>> {
        self.get(section, key)
            .map(|v| {
                v.parse().map_err(|_| {
                    Error::config(format!("key `{key}` in `[{section}]`: `{v}` is not an integer"))
                })
            })
            .transpose()
    }

    /// Typed lookup: floats.
    pub fn get_f64(&self, section: &str, key: &str) -> Result<Option<f64>> {
        self.get(section, key)
            .map(|v| {
                v.parse().map_err(|_| {
                    Error::config(format!("key `{key}` in `[{section}]`: `{v}` is not a number"))
                })
            })
            .transpose()
    }

    /// Typed lookup: booleans (`true/false`, `yes/no`, `on/off`, `1/0`).
    pub fn get_bool(&self, section: &str, key: &str) -> Result<Option<bool>> {
        self.get(section, key)
            .map(|v| match v.to_ascii_lowercase().as_str() {
                "true" | "yes" | "on" | "1" => Ok(true),
                "false" | "no" | "off" | "0" => Ok(false),
                other => Err(Error::config(format!(
                    "key `{key}` in `[{section}]`: `{other}` is not a boolean"
                ))),
            })
            .transpose()
    }

    /// Comma-separated list lookup (empty items dropped, items trimmed).
    pub fn get_list(&self, section: &str, key: &str) -> Vec<String> {
        self.get(section, key)
            .map(|v| {
                v.split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All section names (the root section "" included only if non-empty).
    pub fn sections(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }

    /// All `(key, value)` pairs in a section, sorted by key.
    pub fn section(&self, name: &str) -> impl Iterator<Item = (&str, &str)> {
        self.sections
            .get(name)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), v.as_str())))
    }

    /// Serializes back to INI text (deterministic order).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if let Some(root) = self.sections.get("") {
            for (k, v) in root {
                out.push_str(k);
                out.push_str(" = ");
                out.push_str(v);
                out.push('\n');
            }
        }
        for (name, map) in &self.sections {
            if name.is_empty() {
                continue;
            }
            out.push('[');
            out.push_str(name);
            out.push_str("]\n");
            for (k, v) in map {
                out.push_str(k);
                out.push_str(" = ");
                out.push_str(v);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# LMS router configuration
listen = 0.0.0.0:8086
[database]
url = http://db:8086
name = lms
batch = 500
timeout = 2.5
per_user = yes
users = alice, bob ,carol,
[publish]
enabled = off
";

    #[test]
    fn parses_sections_and_values() {
        let c = Config::parse(SAMPLE).unwrap();
        assert_eq!(c.get("", "listen"), Some("0.0.0.0:8086"));
        assert_eq!(c.get("database", "name"), Some("lms"));
        assert_eq!(c.get_i64("database", "batch").unwrap(), Some(500));
        assert_eq!(c.get_f64("database", "timeout").unwrap(), Some(2.5));
        assert_eq!(c.get_bool("database", "per_user").unwrap(), Some(true));
        assert_eq!(c.get_bool("publish", "enabled").unwrap(), Some(false));
        assert_eq!(c.get_list("database", "users"), vec!["alice", "bob", "carol"]);
    }

    #[test]
    fn missing_and_defaults() {
        let c = Config::parse(SAMPLE).unwrap();
        assert_eq!(c.get("database", "nope"), None);
        assert_eq!(c.get_or("database", "nope", "dflt"), "dflt");
        assert!(c.require("database", "nope").is_err());
        assert!(c.get_list("x", "y").is_empty());
    }

    #[test]
    fn duplicate_keys_override() {
        let c = Config::parse("a = 1\na = 2\n").unwrap();
        assert_eq!(c.get("", "a"), Some("2"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("[broken\n").is_err());
        assert!(Config::parse("novalue\n").is_err());
        assert!(Config::parse("= empty key\n").is_err());
    }

    #[test]
    fn typed_errors() {
        let c = Config::parse("[s]\nn = abc\nb = maybe\n").unwrap();
        assert!(c.get_i64("s", "n").is_err());
        assert!(c.get_f64("s", "n").is_err());
        assert!(c.get_bool("s", "b").is_err());
    }

    #[test]
    fn round_trips_through_text() {
        let c = Config::parse(SAMPLE).unwrap();
        let c2 = Config::parse(&c.to_text()).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn set_and_sections_iteration() {
        let mut c = Config::new();
        c.set("db", "name", "lms");
        c.set("db", "batch", "10");
        let pairs: Vec<_> = c.section("db").collect();
        assert_eq!(pairs, vec![("batch", "10"), ("name", "lms")]);
        assert_eq!(c.sections().collect::<Vec<_>>(), vec!["db"]);
    }
}
