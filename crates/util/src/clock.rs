//! Pluggable time sources.
//!
//! Every LMS component that needs "now" takes a [`Clock`] handle instead of
//! calling [`std::time::SystemTime::now`] directly. Production deployments use
//! [`Clock::system`]; simulations and tests use [`Clock::simulated`], which
//! starts at an arbitrary epoch and only moves when explicitly advanced. This
//! is what lets the Fig. 4 reproduction ("FP rate and memory bandwidth below
//! thresholds for more than 10 minutes") run in milliseconds of wall time.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Nanoseconds since the Unix epoch.
///
/// The InfluxDB line protocol transmits timestamps as signed 64-bit
/// nanosecond counts; we use the same representation end to end so no
/// conversion can lose precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The Unix epoch itself.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds since the epoch.
    pub fn from_secs(secs: i64) -> Self {
        Timestamp(secs.saturating_mul(1_000_000_000))
    }

    /// Builds a timestamp from milliseconds since the epoch.
    pub fn from_millis(ms: i64) -> Self {
        Timestamp(ms.saturating_mul(1_000_000))
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn nanos(self) -> i64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    #[inline]
    pub fn secs(self) -> i64 {
        self.0.div_euclid(1_000_000_000)
    }

    /// Whole milliseconds since the epoch (truncating).
    #[inline]
    pub fn millis(self) -> i64 {
        self.0.div_euclid(1_000_000)
    }

    /// Seconds since the epoch as a float (used by derived-metric formulas).
    #[inline]
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self + d`, saturating at the numeric limits (unlike `ops::Add`,
    /// which a `Duration` operand cannot express losslessly anyway).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_add(d.as_nanos().min(i64::MAX as u128) as i64))
    }

    /// `self - d`, saturating at the numeric limits.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, d: Duration) -> Self {
        Timestamp(self.0.saturating_sub(d.as_nanos().min(i64::MAX as u128) as i64))
    }

    /// Signed distance `self - other` in nanoseconds.
    pub fn delta_nanos(self, other: Timestamp) -> i64 {
        self.0.saturating_sub(other.0)
    }

    /// `self - other` as a [`Duration`], or zero if `other` is later.
    pub fn since(self, other: Timestamp) -> Duration {
        Duration::from_nanos(self.delta_nanos(other).max(0) as u64)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // RFC3339-lite rendering (UTC, no leap-second handling) sufficient
        // for logs and dashboards.
        let secs = self.secs();
        let sub_ms = (self.0.rem_euclid(1_000_000_000)) / 1_000_000;
        let (y, mo, d, h, mi, s) = civil_from_unix(secs);
        write!(f, "{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{sub_ms:03}Z")
    }
}

/// Converts Unix seconds to a civil (year, month, day, hour, min, sec) tuple.
///
/// Algorithm from Howard Hinnant's `civil_from_days`.
fn civil_from_unix(secs: i64) -> (i64, u32, u32, u32, u32, u32) {
    let days = secs.div_euclid(86_400);
    let rem = secs.rem_euclid(86_400);
    let (h, mi, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = if m <= 2 { y + 1 } else { y };
    (y, m, d, h as u32, mi as u32, s as u32)
}

enum Source {
    System,
    Simulated(AtomicI64),
}

/// A cloneable handle to a time source.
///
/// Cloning is cheap (an [`Arc`] bump); clones of a simulated clock share the
/// same underlying instant, so advancing one advances all.
#[derive(Clone)]
pub struct Clock {
    source: Arc<Source>,
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &*self.source {
            Source::System => write!(f, "Clock::system"),
            Source::Simulated(ns) => {
                write!(f, "Clock::simulated({})", Timestamp(ns.load(Ordering::Relaxed)))
            }
        }
    }
}

impl Clock {
    /// The real system clock.
    pub fn system() -> Self {
        Clock { source: Arc::new(Source::System) }
    }

    /// A simulated clock starting at `start`.
    pub fn simulated(start: Timestamp) -> Self {
        Clock { source: Arc::new(Source::Simulated(AtomicI64::new(start.0))) }
    }

    /// Current time according to this clock.
    pub fn now(&self) -> Timestamp {
        match &*self.source {
            Source::System => {
                let d = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
                Timestamp(d.as_nanos().min(i64::MAX as u128) as i64)
            }
            Source::Simulated(ns) => Timestamp(ns.load(Ordering::Acquire)),
        }
    }

    /// Whether this clock is simulated (never calls the OS).
    pub fn is_simulated(&self) -> bool {
        matches!(&*self.source, Source::Simulated(_))
    }

    /// Advances a simulated clock by `d` and returns the new time.
    ///
    /// # Panics
    /// Panics when called on the system clock: real time cannot be advanced,
    /// and silently ignoring the call would make simulations hang.
    pub fn advance(&self, d: Duration) -> Timestamp {
        match &*self.source {
            Source::System => panic!("Clock::advance called on the system clock"),
            Source::Simulated(ns) => {
                let add = d.as_nanos().min(i64::MAX as u128) as i64;
                Timestamp(ns.fetch_add(add, Ordering::AcqRel) + add)
            }
        }
    }

    /// Sets a simulated clock to an absolute time.
    ///
    /// # Panics
    /// Panics on the system clock, and when attempting to move a simulated
    /// clock backwards (monotonicity is relied upon by the DB write path).
    pub fn set(&self, t: Timestamp) {
        match &*self.source {
            Source::System => panic!("Clock::set called on the system clock"),
            Source::Simulated(ns) => {
                let prev = ns.swap(t.0, Ordering::AcqRel);
                assert!(prev <= t.0, "simulated clock moved backwards: {prev} -> {}", t.0);
            }
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::system()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_conversions_round_trip() {
        let t = Timestamp::from_secs(1_500_000_000);
        assert_eq!(t.secs(), 1_500_000_000);
        assert_eq!(t.millis(), 1_500_000_000_000);
        assert_eq!(Timestamp::from_millis(t.millis()), t);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(100);
        let later = t.add(Duration::from_millis(2500));
        assert_eq!(later.millis(), 102_500);
        assert_eq!(later.since(t), Duration::from_millis(2500));
        assert_eq!(t.since(later), Duration::ZERO);
        assert_eq!(later.sub(Duration::from_millis(2500)), t);
    }

    #[test]
    fn negative_timestamps_truncate_toward_minus_infinity() {
        let t = Timestamp(-1); // 1ns before the epoch
        assert_eq!(t.secs(), -1);
        assert_eq!(t.millis(), -1);
    }

    #[test]
    fn system_clock_progresses() {
        let c = Clock::system();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_simulated());
    }

    #[test]
    fn simulated_clock_is_shared_across_clones() {
        let c = Clock::simulated(Timestamp::from_secs(1000));
        let c2 = c.clone();
        assert!(c.is_simulated());
        c.advance(Duration::from_secs(60));
        assert_eq!(c2.now(), Timestamp::from_secs(1060));
        c2.set(Timestamp::from_secs(2000));
        assert_eq!(c.now(), Timestamp::from_secs(2000));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn simulated_clock_rejects_backwards_set() {
        let c = Clock::simulated(Timestamp::from_secs(1000));
        c.set(Timestamp::from_secs(999));
    }

    #[test]
    #[should_panic(expected = "advance called on the system clock")]
    fn system_clock_rejects_advance() {
        Clock::system().advance(Duration::from_secs(1));
    }

    #[test]
    fn display_renders_rfc3339() {
        // 2017-08-04T00:00:00Z == 1501804800 (the paper's arXiv date).
        let t = Timestamp::from_secs(1_501_804_800);
        assert_eq!(t.to_string(), "2017-08-04T00:00:00.000Z");
        let t2 = t.add(Duration::from_millis(42));
        assert_eq!(t2.to_string(), "2017-08-04T00:00:00.042Z");
    }

    #[test]
    fn display_handles_leap_years() {
        // 2016-02-29T12:00:00Z == 1456747200
        let t = Timestamp::from_secs(1_456_747_200);
        assert_eq!(t.to_string(), "2016-02-29T12:00:00.000Z");
    }
}
