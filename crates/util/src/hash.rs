//! Fx-style fast hashing.
//!
//! The router's tag store and the database's series index are hot hash maps
//! keyed by short strings (hostnames, measurement names, serialized tag
//! sets). SipHash's HashDoS protection buys nothing there — all keys come
//! from the site's own infrastructure — and costs real time on short keys.
//! `rustc-hash` is not in the offline dependency set, so this module
//! reimplements the same multiply-rotate construction (the one used inside
//! rustc). `bench/hash.rs` quantifies the win over the default hasher.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher: word-at-a-time multiply-rotate.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix in the length so "a" and "a\0" (same padded word) differ.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes a single value with [`FxHasher`] (convenience for tests/sharding).
pub fn fx_hash<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 (the zlib/PNG polynomial) — the integrity check used by
/// every on-disk frame in the stack (spool segments, WAL records, TSM
/// segment blocks).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash("host042"), fx_hash("host042"));
        assert_eq!(fx_hash(&12345u64), fx_hash(&12345u64));
    }

    #[test]
    fn crc32_known_vectors() {
        // Reference values from the zlib crc32() implementation.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn distinguishes_close_keys() {
        assert_ne!(fx_hash("host001"), fx_hash("host002"));
        assert_ne!(fx_hash("a"), fx_hash("b"));
        assert_ne!(fx_hash(""), fx_hash("a"));
    }

    #[test]
    fn length_is_mixed_into_tail() {
        // Same bytes once padded — must still hash differently.
        assert_ne!(fx_hash(b"ab".as_slice()), fx_hash(b"ab\0".as_slice()));
    }

    #[test]
    fn map_usable_with_string_keys() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("host{i:03}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m["host512"], 512);
    }

    #[test]
    fn spread_over_buckets_is_reasonable() {
        // All 4096 hostnames into 64 buckets: no bucket should hold more
        // than 4x the mean — a weak but meaningful anti-degeneracy check.
        let mut buckets = [0u32; 64];
        for i in 0..4096 {
            let h = fx_hash(&format!("node{i:04}"));
            buckets[(h % 64) as usize] += 1;
        }
        let max = buckets.iter().max().unwrap();
        assert!(*max < 4 * (4096 / 64), "worst bucket has {max} entries");
    }
}
