//! Seeded rendezvous (highest-random-weight) hashing.
//!
//! Rendezvous hashing beats a modulo ring here for two reasons: adding or
//! removing a node remaps only the series that gained or lost that node
//! (minimal disruption, no virtual-node bookkeeping), and the top-R nodes
//! of one key are exactly the R replicas — no walk around a circle, no
//! collapsing of virtual nodes onto the same physical one. With the small
//! node counts of a monitoring back-end (single digits), the O(N) score
//! scan per key is cheaper than maintaining a sorted token ring.

use crate::rng::XorShift64;

/// A placement ring over `n` nodes, identified by index `0..n`.
///
/// Each node gets a salt derived from the shared seed; a key's score on a
/// node is a mix of the key hash and that salt, and the R highest-scoring
/// nodes own the key. Every router sharing the seed and node order computes
/// identical placements.
#[derive(Debug, Clone)]
pub struct HashRing {
    salts: Vec<u64>,
}

impl HashRing {
    /// Builds the ring for `n` nodes from the shared `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        let mut rng = XorShift64::new(seed ^ 0xC1A5_7E2D_00D5_EEDF);
        HashRing { salts: (0..n).map(|_| rng.next_u64()).collect() }
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.salts.len()
    }

    /// True when the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.salts.is_empty()
    }

    /// The score of `key_hash` on node `i` (higher wins).
    #[inline]
    fn score(&self, key_hash: u64, i: usize) -> u64 {
        // One xorshift64* round over key⊕salt: cheap, well-mixed, and
        // stable across platforms.
        let mut x = key_hash ^ self.salts[i];
        x = x.max(1); // avoid the all-zero orbit
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Writes the indices of the `r` owners of `key_hash` into `out`
    /// (cleared first), best score first. `r` is clamped to the node
    /// count. The scratch vector keeps the per-line hot path
    /// allocation-free.
    pub fn owners_into(&self, key_hash: u64, r: usize, out: &mut Vec<usize>) {
        out.clear();
        let r = r.min(self.salts.len());
        for i in 0..self.salts.len() {
            let s = self.score(key_hash, i);
            // Insertion into a tiny descending top-R list: N and R are
            // single digits, so this beats sorting all scores.
            let pos = out
                .iter()
                .position(|&j| self.score(key_hash, j) < s)
                .unwrap_or(out.len());
            if pos < r {
                out.insert(pos, i);
                out.truncate(r);
            }
        }
    }

    /// The `r` owners of `key_hash`, best score first.
    pub fn owners(&self, key_hash: u64, r: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(r);
        self.owners_into(key_hash, r, &mut out);
        out
    }

    /// The primary owner of `key_hash`.
    pub fn primary(&self, key_hash: u64) -> usize {
        debug_assert!(!self.is_empty());
        (0..self.salts.len())
            .max_by_key(|&i| self.score(key_hash, i))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fx_hash;

    #[test]
    fn owners_are_distinct_and_deterministic() {
        let ring = HashRing::new(5, 42);
        let again = HashRing::new(5, 42);
        for k in 0..1000u64 {
            let h = fx_hash(&k);
            let a = ring.owners(h, 3);
            assert_eq!(a, again.owners(h, 3));
            assert_eq!(a.len(), 3);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "owners must be distinct: {a:?}");
            assert!(a.iter().all(|&i| i < 5));
            assert_eq!(a[0], ring.primary(h));
        }
    }

    #[test]
    fn replication_clamps_to_node_count() {
        let ring = HashRing::new(2, 7);
        assert_eq!(ring.owners(123, 5).len(), 2);
        let single = HashRing::new(1, 7);
        assert_eq!(single.owners(123, 3), vec![0]);
    }

    #[test]
    fn different_seeds_place_differently() {
        let a = HashRing::new(8, 1);
        let b = HashRing::new(8, 2);
        let moved = (0..512u64)
            .filter(|&k| a.primary(fx_hash(&k)) != b.primary(fx_hash(&k)))
            .count();
        assert!(moved > 256, "seeds should reshuffle placement: {moved}/512");
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let ring = HashRing::new(4, 9);
        let mut counts = [0usize; 4];
        let keys = 8000;
        for k in 0..keys as u64 {
            counts[ring.primary(fx_hash(&format!("node{k:05}")))] += 1;
        }
        let expect = keys / 4;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "node {i} holds {c}/{keys} primaries: {counts:?}"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_only_a_fraction() {
        // Rendezvous property: adding a node steals ~1/(n+1) of the keys
        // and moves nothing between the surviving nodes.
        let small = HashRing::new(3, 11);
        let big = HashRing::new(4, 11);
        let keys = 6000;
        let mut moved = 0;
        for k in 0..keys as u64 {
            let h = fx_hash(&k);
            let (a, b) = (small.primary(h), big.primary(h));
            if a != b {
                assert_eq!(b, 3, "keys may move only to the new node");
                moved += 1;
            }
        }
        let frac = moved as f64 / keys as f64;
        assert!(frac > 0.1 && frac < 0.45, "moved fraction {frac}");
    }

    #[test]
    fn owner_sets_overlap_between_r_levels() {
        // The top-R list is a prefix property: owners(h, 1) is the head of
        // owners(h, 2), etc. Raising R must never reshuffle existing
        // replicas.
        let ring = HashRing::new(6, 13);
        for k in 0..300u64 {
            let h = fx_hash(&k);
            let three = ring.owners(h, 3);
            assert_eq!(&three[..2], &ring.owners(h, 2)[..]);
            assert_eq!(&three[..1], &ring.owners(h, 1)[..]);
        }
    }
}
