//! Human-readable formatting for reports and dashboards.
//!
//! The viewer agent and the job-evaluation header (paper Fig. 2) render
//! bandwidths, byte counts, rates and durations; these helpers keep that
//! rendering consistent across the stack.

use std::time::Duration;

/// Formats a byte count with binary prefixes: `1536` → `"1.5 KiB"`.
pub fn bytes(n: u64) -> String {
    const UNITS: [&str; 7] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"];
    if n < 1024 {
        return format!("{n} B");
    }
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// Formats a rate in SI prefixes with a unit suffix:
/// `si_rate(2.5e9, "FLOP/s")` → `"2.50 GFLOP/s"`.
pub fn si_rate(v: f64, unit: &str) -> String {
    let (scaled, prefix) = si_scale(v);
    format!("{scaled:.2} {prefix}{unit}")
}

/// Scales a value to an SI prefix, returning `(scaled, prefix)`.
pub fn si_scale(v: f64) -> (f64, &'static str) {
    let a = v.abs();
    if a >= 1e12 {
        (v / 1e12, "T")
    } else if a >= 1e9 {
        (v / 1e9, "G")
    } else if a >= 1e6 {
        (v / 1e6, "M")
    } else if a >= 1e3 {
        (v / 1e3, "k")
    } else {
        (v, "")
    }
}

/// Formats a duration compactly: `"2h03m"`, `"4m10s"`, `"12.5s"`, `"340ms"`.
pub fn duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 3600.0 {
        let h = (s / 3600.0).floor() as u64;
        let m = ((s % 3600.0) / 60.0).round() as u64;
        format!("{h}h{m:02}m")
    } else if s >= 60.0 {
        let m = (s / 60.0).floor() as u64;
        let sec = (s % 60.0).round() as u64;
        format!("{m}m{sec:02}s")
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1000.0)
    }
}

/// Left-pads/truncates a string to exactly `w` display columns (ASCII).
pub fn pad(s: &str, w: usize) -> String {
    if s.len() >= w {
        s[..w].to_string()
    } else {
        format!("{s:<w$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_prefixes() {
        assert_eq!(bytes(0), "0 B");
        assert_eq!(bytes(1023), "1023 B");
        assert_eq!(bytes(1536), "1.5 KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0 MiB");
        assert_eq!(bytes(u64::MAX), "16.0 EiB");
    }

    #[test]
    fn si_rates() {
        assert_eq!(si_rate(2.5e9, "FLOP/s"), "2.50 GFLOP/s");
        assert_eq!(si_rate(1.2e3, "B/s"), "1.20 kB/s");
        assert_eq!(si_rate(5.0, "B/s"), "5.00 B/s");
        assert_eq!(si_rate(3.4e12, "B/s"), "3.40 TB/s");
        assert_eq!(si_rate(-2.0e6, "op/s"), "-2.00 Mop/s");
    }

    #[test]
    fn durations() {
        assert_eq!(duration(Duration::from_millis(340)), "340ms");
        assert_eq!(duration(Duration::from_secs_f64(12.5)), "12.5s");
        assert_eq!(duration(Duration::from_secs(250)), "4m10s");
        assert_eq!(duration(Duration::from_secs(7380)), "2h03m");
    }

    #[test]
    fn padding() {
        assert_eq!(pad("ab", 4), "ab  ");
        assert_eq!(pad("abcdef", 4), "abcd");
        assert_eq!(pad("", 2), "  ");
    }
}
