//! # lms-http
//!
//! A minimal HTTP/1.1 server and client over `std::net` TCP sockets.
//!
//! The paper's core interoperability claim is that *every* LMS component
//! speaks plain HTTP ("the communication protocol inside the whole system
//! (HTTP) is commonly available on all machines"). This crate provides just
//! enough of HTTP/1.1 for that: request/response with `Content-Length`
//! bodies, query strings with percent-encoding, persistent connections, and
//! a small thread-pool server — no external dependencies, no TLS, no
//! chunked encoding (no LMS component needs it).
//!
//! ```
//! use lms_http::{Server, Response, HttpClient};
//!
//! let server = Server::bind("127.0.0.1:0", 2, |req| {
//!     Response::text(200, format!("hello {}", req.query_param("name").unwrap_or("world")))
//! }).unwrap();
//!
//! let mut client = HttpClient::connect(server.addr()).unwrap();
//! let resp = client.get("/greet?name=lms").unwrap();
//! assert_eq!(resp.status, 200);
//! assert_eq!(resp.body_str(), "hello lms");
//! server.shutdown();
//! ```

pub mod client;
pub mod fault;
pub mod message;
pub mod server;
pub mod url;

pub use client::HttpClient;
pub use fault::{FaultConfig, FaultProxy};
pub use message::{Request, Response};
pub use server::{Server, ServerConfig};
