//! A thread-per-connection HTTP server.
//!
//! LMS servers hold many long-lived keep-alive connections (every host
//! agent, HPM collector, signaler and forwarder keeps one open), so a
//! fixed worker pool would starve new connections once all workers sit in
//! keep-alive loops. Each accepted connection therefore gets its own
//! thread; `max_connections` bounds the total. Connection threads poll the
//! stop flag every 200 ms while idle, so shutdown completes promptly.
//! Designed for the trusted-cluster-network setting of the paper: no TLS.

use crate::message::{Request, Response};
use lms_util::Result;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The request handler type: pure function from request to response.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A running HTTP server. Dropping it (or calling [`shutdown`](Self::shutdown))
/// stops the acceptor and waits for connection threads to drain.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port). `max_connections`
    /// bounds concurrent connections (minimum 16; excess connects are
    /// accepted and immediately closed).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        max_connections: usize,
        handler: impl Fn(Request) -> Response + Send + Sync + 'static,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let handler: Handler = Arc::new(handler);
        let cap = max_connections.max(16);

        let acceptor = {
            let stop = stop.clone();
            let active = active.clone();
            std::thread::Builder::new()
                .name("lms-http-acceptor".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        if active.load(Ordering::Acquire) >= cap {
                            drop(stream); // over capacity: refuse politely
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        active.fetch_add(1, Ordering::AcqRel);
                        let handler = handler.clone();
                        let stop = stop.clone();
                        let conn_active = active.clone();
                        let spawned = std::thread::Builder::new()
                            .name("lms-http-conn".into())
                            .spawn(move || {
                                serve_connection(stream, &handler, &stop);
                                conn_active.fetch_sub(1, Ordering::AcqRel);
                            });
                        if spawned.is_err() {
                            active.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                })
                .expect("spawn http acceptor")
        };

        Ok(Server { addr: local, stop, active, acceptor: Some(acceptor) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of open connections.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Stops accepting and waits (bounded) for connections to drain.
    pub fn shutdown(mut self) {
        self.stop_internal();
    }

    fn stop_internal(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Connection threads notice the stop flag within their 200 ms idle
        // poll; wait up to ~2 s for them (in-flight requests finish first).
        for _ in 0..100 {
            if self.active.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_internal();
    }
}

fn serve_connection(stream: TcpStream, handler: &Handler, stop: &AtomicBool) {
    use std::io::BufRead as _;
    // Short idle timeout so keep-alive connections re-check the stop flag
    // periodically. Once a request starts arriving we switch to a generous
    // timeout — a timeout in the middle of parsing would corrupt the stream.
    let idle = Some(std::time::Duration::from_millis(200));
    let busy = Some(std::time::Duration::from_secs(30));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Idle wait: peek without consuming until data arrives or EOF.
        let _ = reader.get_ref().set_read_timeout(idle);
        match reader.fill_buf() {
            Ok([]) => return, // clean close
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        let _ = reader.get_ref().set_read_timeout(busy);
        match Request::read_from(&mut reader) {
            Ok(Some(req)) => {
                let close = req.wants_close();
                let resp = handler(req);
                if resp.write_to(&mut writer).is_err() || close {
                    return;
                }
            }
            Ok(None) => return,
            Err(_) => {
                let _ = Response::bad_request("malformed request").write_to(&mut writer);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    #[test]
    fn serves_and_shuts_down() {
        let server = Server::bind("127.0.0.1:0", 16, |req| {
            Response::text(200, format!("{} {}", req.method, req.path))
        })
        .unwrap();
        let mut c = HttpClient::connect(server.addr()).unwrap();
        let r = c.get("/x").unwrap();
        assert_eq!(r.body_str(), "GET /x");
        server.shutdown();
    }

    #[test]
    fn keep_alive_across_requests() {
        let server =
            Server::bind("127.0.0.1:0", 16, |req| Response::text(200, req.path)).unwrap();
        let mut c = HttpClient::connect(server.addr()).unwrap();
        for i in 0..10 {
            let r = c.get(&format!("/req{i}")).unwrap();
            assert_eq!(r.body_str(), format!("/req{i}"));
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = Server::bind("127.0.0.1:0", 32, |req| {
            Response::text(200, req.body_str().into_owned())
        })
        .unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = HttpClient::connect(addr).unwrap();
                    for i in 0..25 {
                        let body = format!("t{t}-{i}");
                        let r = c.post("/echo", body.as_bytes()).unwrap();
                        assert_eq!(r.body_str(), body);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn more_keepalive_connections_than_any_pool_size() {
        // The regression this design exists for: many idle keep-alive
        // clients must not starve a newcomer.
        let server = Server::bind("127.0.0.1:0", 64, |_| Response::no_content()).unwrap();
        let addr = server.addr();
        let mut idle_clients: Vec<HttpClient> = (0..10)
            .map(|_| {
                let mut c = HttpClient::connect(addr).unwrap();
                assert_eq!(c.get("/warm").unwrap().status, 204);
                c // keeps its connection open
            })
            .collect();
        let mut newcomer = HttpClient::connect(addr).unwrap();
        assert_eq!(newcomer.get("/new").unwrap().status, 204);
        // Idle clients still work afterwards.
        assert_eq!(idle_clients[0].get("/again").unwrap().status, 204);
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        use std::io::{Read, Write};
        let server = Server::bind("127.0.0.1:0", 16, |_| Response::no_content()).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
        server.shutdown();
    }
}
