//! A thread-per-connection HTTP server.
//!
//! LMS servers hold many long-lived keep-alive connections (every host
//! agent, HPM collector, signaler and forwarder keeps one open), so a
//! fixed worker pool would starve new connections once all workers sit in
//! keep-alive loops. Each accepted connection therefore gets its own
//! thread; `max_connections` bounds the total. Connection threads poll the
//! stop flag every 200 ms while idle, so shutdown completes promptly.
//! Designed for the trusted-cluster-network setting of the paper: no TLS.

use crate::message::{Request, Response};
use lms_util::{Error, Result};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The request handler type: pure function from request to response.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// Admission and resource limits of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-connection bound (minimum 16: the stack's own internal
    /// clients — forwarders, signalers, health probes — must always fit).
    /// Connections over the limit are answered `503 + Retry-After` and
    /// closed immediately instead of getting a thread.
    pub max_connections: usize,
    /// Per-request body cap; a larger declared `Content-Length` is
    /// answered `413 Payload Too Large`.
    pub max_body_bytes: usize,
    /// Deadline for reading one request (headers + body) once its first
    /// byte has arrived, so a slow or stalled client cannot pin a
    /// connection thread indefinitely.
    pub request_deadline: Duration,
    /// `Retry-After` hint (seconds) on shed connections.
    pub retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_body_bytes: 64 * 1024 * 1024,
            request_deadline: Duration::from_secs(30),
            retry_after_secs: 1,
        }
    }
}

impl ServerConfig {
    /// Config with the given connection bound and defaults elsewhere.
    pub fn with_max_connections(max_connections: usize) -> Self {
        ServerConfig { max_connections, ..ServerConfig::default() }
    }
}

/// A running HTTP server. Dropping it (or calling [`shutdown`](Self::shutdown))
/// stops the acceptor and waits for connection threads to drain.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    shed: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with default
    /// limits except `max_connections`. See [`Server::bind_with`].
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        max_connections: usize,
        handler: impl Fn(Request) -> Response + Send + Sync + 'static,
    ) -> Result<Self> {
        Self::bind_with(addr, ServerConfig::with_max_connections(max_connections), handler)
    }

    /// Binds to `addr` with explicit admission limits. Connections over
    /// `max_connections` get a fast `503 + Retry-After` on the accepting
    /// thread (no per-connection thread is spawned for them), bounding
    /// both thread count and memory under a connect flood.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        config: ServerConfig,
        handler: impl Fn(Request) -> Response + Send + Sync + 'static,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let handler: Handler = Arc::new(handler);
        let cap = config.max_connections.max(16);
        let retry_after = config.retry_after_secs;

        let acceptor = {
            let stop = stop.clone();
            let active = active.clone();
            let shed = shed.clone();
            let config = config.clone();
            std::thread::Builder::new()
                .name("lms-http-acceptor".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        if active.load(Ordering::Acquire) >= cap {
                            // Over capacity: shed with a fast 503 so the
                            // client knows to back off. Bounded write
                            // timeout — a shed response must never block
                            // the acceptor.
                            shed.fetch_add(1, Ordering::Relaxed);
                            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                            let mut w = BufWriter::new(stream);
                            let _ = Response::service_unavailable(
                                "server at connection capacity",
                                retry_after,
                            )
                            .write_to(&mut w);
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        active.fetch_add(1, Ordering::AcqRel);
                        let handler = handler.clone();
                        let stop = stop.clone();
                        let conn_active = active.clone();
                        let config = config.clone();
                        let spawned = std::thread::Builder::new()
                            .name("lms-http-conn".into())
                            .spawn(move || {
                                serve_connection(stream, &handler, &stop, &config);
                                conn_active.fetch_sub(1, Ordering::AcqRel);
                            });
                        if spawned.is_err() {
                            active.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                })
                .map_err(Error::from)?
        };

        Ok(Server { addr: local, stop, active, shed, acceptor: Some(acceptor) })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of open connections.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Number of connections refused with `503` because the server was at
    /// its connection limit.
    pub fn shed_connections(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Stops accepting and waits (bounded) for connections to drain.
    pub fn shutdown(mut self) {
        self.stop_internal();
    }

    fn stop_internal(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Connection threads notice the stop flag within their 200 ms idle
        // poll; wait up to ~2 s for them (in-flight requests finish first).
        for _ in 0..100 {
            if self.active.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_internal();
    }
}

fn serve_connection(stream: TcpStream, handler: &Handler, stop: &AtomicBool, config: &ServerConfig) {
    use std::io::BufRead as _;
    // Short idle timeout so keep-alive connections re-check the stop flag
    // periodically. Once a request starts arriving we switch to the request
    // deadline — a slow client gets at most that long per request before
    // the read times out and the connection is dropped.
    let idle = Some(std::time::Duration::from_millis(200));
    let busy = Some(config.request_deadline.max(Duration::from_millis(100)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Idle wait: peek without consuming until data arrives or EOF.
        let _ = reader.get_ref().set_read_timeout(idle);
        match reader.fill_buf() {
            Ok([]) => return, // clean close
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        let _ = reader.get_ref().set_read_timeout(busy);
        match Request::read_from_limited(&mut reader, config.max_body_bytes) {
            Ok(Some(req)) => {
                let close = req.wants_close();
                let resp = handler(req);
                if resp.write_to(&mut writer).is_err() || close {
                    return;
                }
            }
            Ok(None) => return,
            // An oversize body is rejected before it is read, so the
            // request bytes are still in flight — answer and close.
            Err(Error::Remote { status: 413, message }) => {
                let _ = Response::text(413, message).write_to(&mut writer);
                return;
            }
            Err(_) => {
                let _ = Response::bad_request("malformed request").write_to(&mut writer);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    #[test]
    fn serves_and_shuts_down() {
        let server = Server::bind("127.0.0.1:0", 16, |req| {
            Response::text(200, format!("{} {}", req.method, req.path))
        })
        .unwrap();
        let mut c = HttpClient::connect(server.addr()).unwrap();
        let r = c.get("/x").unwrap();
        assert_eq!(r.body_str(), "GET /x");
        server.shutdown();
    }

    #[test]
    fn keep_alive_across_requests() {
        let server =
            Server::bind("127.0.0.1:0", 16, |req| Response::text(200, req.path)).unwrap();
        let mut c = HttpClient::connect(server.addr()).unwrap();
        for i in 0..10 {
            let r = c.get(&format!("/req{i}")).unwrap();
            assert_eq!(r.body_str(), format!("/req{i}"));
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = Server::bind("127.0.0.1:0", 32, |req| {
            Response::text(200, req.body_str().into_owned())
        })
        .unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut c = HttpClient::connect(addr).unwrap();
                    for i in 0..25 {
                        let body = format!("t{t}-{i}");
                        let r = c.post("/echo", body.as_bytes()).unwrap();
                        assert_eq!(r.body_str(), body);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn more_keepalive_connections_than_any_pool_size() {
        // The regression this design exists for: many idle keep-alive
        // clients must not starve a newcomer.
        let server = Server::bind("127.0.0.1:0", 64, |_| Response::no_content()).unwrap();
        let addr = server.addr();
        let mut idle_clients: Vec<HttpClient> = (0..10)
            .map(|_| {
                let mut c = HttpClient::connect(addr).unwrap();
                assert_eq!(c.get("/warm").unwrap().status, 204);
                c // keeps its connection open
            })
            .collect();
        let mut newcomer = HttpClient::connect(addr).unwrap();
        assert_eq!(newcomer.get("/new").unwrap().status, 204);
        // Idle clients still work afterwards.
        assert_eq!(idle_clients[0].get("/again").unwrap().status, 204);
        server.shutdown();
    }

    #[test]
    fn over_capacity_connection_gets_503_with_retry_after() {
        use std::io::Read;
        // The cap floor is 16: fill it with idle keep-alive clients, then
        // the 17th connect must be shed with 503 + Retry-After instead of
        // being silently dropped (the pre-fix behavior) or given a thread.
        let server = Server::bind("127.0.0.1:0", 1, |_| Response::no_content()).unwrap();
        let addr = server.addr();
        let _parked: Vec<HttpClient> = (0..16)
            .map(|_| {
                let mut c = HttpClient::connect(addr).unwrap();
                assert_eq!(c.get("/warm").unwrap().status, 204);
                c
            })
            .collect();
        // Wait until all 16 connection threads are registered.
        for _ in 0..100 {
            if server.active_connections() >= 16 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let mut s = TcpStream::connect(addr).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 503"), "{buf}");
        assert!(buf.to_ascii_lowercase().contains("retry-after:"), "{buf}");
        assert!(server.shed_connections() >= 1);
        server.shutdown();
    }

    #[test]
    fn oversized_body_gets_413() {
        use std::io::{Read, Write};
        let config = ServerConfig {
            max_connections: 16,
            max_body_bytes: 32,
            ..ServerConfig::default()
        };
        let server = Server::bind_with("127.0.0.1:0", config, |_| Response::no_content()).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"POST /write HTTP/1.1\r\ncontent-length: 1000\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 413"), "{buf}");
        server.shutdown();
    }

    #[test]
    fn slow_client_cannot_pin_a_connection_thread() {
        use std::io::{Read, Write};
        let config = ServerConfig {
            max_connections: 16,
            request_deadline: std::time::Duration::from_millis(150),
            ..ServerConfig::default()
        };
        let server = Server::bind_with("127.0.0.1:0", config, |_| Response::no_content()).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // Send a request head that promises a body, then stall.
        s.write_all(b"POST /write HTTP/1.1\r\ncontent-length: 10\r\n\r\n").unwrap();
        let start = std::time::Instant::now();
        let mut buf = Vec::new();
        let _ = s.read_to_end(&mut buf); // server must drop us, not wait forever
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "connection held for {:?}",
            start.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        use std::io::{Read, Write};
        let server = Server::bind("127.0.0.1:0", 16, |_| Response::no_content()).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
        server.shutdown();
    }
}
