//! A persistent-connection HTTP client.
//!
//! Holds one TCP connection to a fixed peer and reuses it across requests
//! (keep-alive); reconnects transparently once if the connection went away
//! between requests. All LMS senders (host agents, the router's forwarder,
//! libusermetric) push batches through this client.

use crate::message::{Request, Response};
use lms_util::{Error, Result};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// HTTP client bound to one server address.
pub struct HttpClient {
    addr: SocketAddr,
    conn: Option<Conn>,
    timeout: Duration,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl HttpClient {
    /// Resolves `addr` and creates a client (connects lazily).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| Error::config("address resolved to nothing"))?;
        Ok(HttpClient { addr, conn: None, timeout: Duration::from_secs(10) })
    }

    /// Sets the per-request I/O timeout (default 10 s).
    pub fn set_timeout(&mut self, t: Duration) {
        self.timeout = t;
        self.conn = None; // apply on next connect
    }

    /// The peer address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn ensure_conn(&mut self) -> Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            let reader = BufReader::new(stream.try_clone()?);
            let writer = BufWriter::new(stream);
            self.conn = Some(Conn { reader, writer });
        }
        Ok(self.conn.as_mut().expect("just set"))
    }

    fn try_once(&mut self, req: &Request) -> Result<Response> {
        let conn = self.ensure_conn()?;
        req.write_to(&mut conn.writer, None)?;
        conn.writer.flush()?;
        Response::read_from(&mut conn.reader)
    }

    /// Sends a request, reusing the connection; retries once on a broken
    /// connection (server restarted / idle-closed).
    pub fn send(&mut self, req: &Request) -> Result<Response> {
        match self.try_once(req) {
            Ok(r) => Ok(r),
            Err(Error::Io(_)) | Err(Error::Protocol(_)) => {
                self.conn = None;
                let retry = self.try_once(req);
                if retry.is_err() {
                    self.conn = None; // leave no half-broken connection behind
                }
                retry
            }
            Err(e) => Err(e),
        }
    }

    /// `GET path` (path may include a query string).
    pub fn get(&mut self, target: &str) -> Result<Response> {
        self.send(&Request::new("GET", target))
    }

    /// `POST path` with a raw body.
    pub fn post(&mut self, target: &str, body: &[u8]) -> Result<Response> {
        let mut req = Request::new("POST", target);
        req.body = body.to_vec();
        self.send(&req)
    }

    /// `POST path` with a text body (the line-protocol fast path).
    pub fn post_text(&mut self, target: &str, body: &str) -> Result<Response> {
        self.post(target, body.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn reconnects_after_server_restart_on_same_port() {
        let server = Server::bind("127.0.0.1:0", 1, |_| Response::text(200, "one")).unwrap();
        let addr = server.addr();
        let mut c = HttpClient::connect(addr).unwrap();
        assert_eq!(c.get("/").unwrap().body_str(), "one");
        server.shutdown();
        // Same port, new server.
        let server2 = Server::bind(addr, 1, |_| Response::text(200, "two")).unwrap();
        assert_eq!(c.get("/").unwrap().body_str(), "two");
        server2.shutdown();
    }

    #[test]
    fn error_when_nothing_listens() {
        // Bind and immediately shut down to get a dead port.
        let server = Server::bind("127.0.0.1:0", 1, |_| Response::no_content()).unwrap();
        let addr = server.addr();
        server.shutdown();
        let mut c = HttpClient::connect(addr).unwrap();
        c.set_timeout(Duration::from_millis(300));
        assert!(c.get("/").is_err());
    }

    #[test]
    fn post_body_round_trip() {
        let server = Server::bind("127.0.0.1:0", 1, |req| {
            Response::text(200, format!("{}:{}", req.path, req.body.len()))
        })
        .unwrap();
        let mut c = HttpClient::connect(server.addr()).unwrap();
        let r = c.post("/write?db=lms", &vec![b'x'; 10_000]).unwrap();
        assert_eq!(r.body_str(), "/write:10000");
        server.shutdown();
    }
}
