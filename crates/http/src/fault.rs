//! Deterministic TCP fault-injection proxy for chaos tests.
//!
//! Sits between an HTTP client and an upstream server and misbehaves on
//! purpose: drops connections mid-exchange, delays requests, answers
//! `503` without consulting the upstream, goes fully down, or blackholes
//! (accepts requests and never answers). All probabilistic faults are
//! driven by a seeded [`XorShift64`](lms_util::rng::XorShift64) — the
//! same seed replays the same fault schedule, so a chaos test failure
//! reproduces under `LMS_CHAOS_SEED=<n>`.
//!
//! The proxy parses individual HTTP requests (rather than shuttling raw
//! bytes) so faults land on request boundaries and keep-alive
//! connections stay coherent between faults.

use crate::message::{Request, Response};
use lms_util::rng::XorShift64;
use lms_util::{Error, Result};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Fault schedule configuration. Probabilities are evaluated per request
/// in the order: error → drop → delay.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// RNG seed; the whole fault schedule is a pure function of it.
    pub seed: u64,
    /// Probability of answering `503` without contacting the upstream.
    pub error_prob: f64,
    /// Probability of dropping the connection instead of answering.
    pub drop_prob: f64,
    /// Probability of delaying the exchange by `delay`.
    pub delay_prob: f64,
    /// The injected delay.
    pub delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 1,
            error_prob: 0.0,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_millis(50),
        }
    }
}

#[derive(Default)]
struct FaultStats {
    forwarded: AtomicU64,
    injected_errors: AtomicU64,
    dropped: AtomicU64,
    delayed: AtomicU64,
}

struct Shared {
    upstream: SocketAddr,
    cfg: FaultConfig,
    stats: FaultStats,
    /// Down: refuse new exchanges and kill live connections.
    down: AtomicBool,
    /// Blackhole: accept requests, never answer (clients hit timeouts).
    blackhole: AtomicBool,
    stop: AtomicBool,
    /// Live downstream connections (by id), so `set_down`/`shutdown` can
    /// sever them mid-exchange like a crashed server would.
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

/// A running fault proxy.
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts the proxy on an ephemeral local port, forwarding to
    /// `upstream`.
    pub fn start<A: ToSocketAddrs>(upstream: A, cfg: FaultConfig) -> Result<Self> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| Error::config("upstream resolved to nothing"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            upstream,
            cfg,
            stats: FaultStats::default(),
            down: AtomicBool::new(false),
            blackhole: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let acceptor = std::thread::Builder::new()
            .name("lms-fault-proxy".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn fault proxy");
        Ok(FaultProxy { addr, shared, acceptor: Some(acceptor) })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Takes the proxied destination fully down: live connections are
    /// severed and new exchanges are refused until [`set_up`](Self::set_up).
    pub fn set_down(&self) {
        self.shared.down.store(true, Ordering::Release);
        self.shared.kill_connections();
    }

    /// Brings the destination back up.
    pub fn set_up(&self) {
        self.shared.down.store(false, Ordering::Release);
    }

    /// Blackhole mode: requests are read and then never answered, so
    /// clients sit on the socket until their own timeout fires.
    pub fn set_blackhole(&self, on: bool) {
        self.shared.blackhole.store(on, Ordering::Release);
    }

    /// `(forwarded, injected_errors, dropped, delayed)` counters.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        let s = &self.shared.stats;
        (
            s.forwarded.load(Ordering::Relaxed),
            s.injected_errors.load(Ordering::Relaxed),
            s.dropped.load(Ordering::Relaxed),
            s.delayed.load(Ordering::Relaxed),
        )
    }

    /// Stops the proxy and severs every connection.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.kill_connections();
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

impl Shared {
    fn kill_connections(&self) {
        let mut conns = self.conns.lock().expect("conns lock");
        for (_, c) in conns.drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Severs one connection and stops tracking it. `shutdown` (not just
    /// dropping our handles) is essential: a tracked clone would keep the
    /// socket open and the client would wait out its full timeout instead
    /// of seeing the connection die.
    fn sever(&self, id: u64, stream: &TcpStream) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        self.conns.lock().expect("conns lock").retain(|(i, _)| *i != id);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut conn_index: u64 = 0;
    while !shared.stop.load(Ordering::Acquire) {
        let Ok((stream, _)) = listener.accept() else { break };
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        conn_index += 1;
        // Each connection gets its own deterministic RNG stream, so the
        // fault schedule does not depend on thread interleaving.
        let rng = XorShift64::new(shared.cfg.seed.wrapping_add(conn_index.wrapping_mul(0x9E37)));
        if let Ok(track) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").push((conn_index, track));
        }
        let conn_shared = shared.clone();
        let id = conn_index;
        let _ = std::thread::Builder::new()
            .name(format!("lms-fault-conn-{conn_index}"))
            .spawn(move || serve_connection(id, stream, &conn_shared, rng));
    }
}

/// Serves one downstream connection request-by-request, injecting faults
/// at request boundaries. Every exit severs the socket via
/// [`Shared::sever`] so the client observes the drop immediately.
fn serve_connection(id: u64, stream: TcpStream, shared: &Shared, mut rng: XorShift64) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            shared.sever(id, &stream);
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    let mut upstream: Option<TcpStream> = None;
    while let Ok(Some(req)) = Request::read_from(&mut reader) {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        if shared.down.load(Ordering::Acquire) {
            shared.stats.dropped.fetch_add(1, Ordering::Relaxed);
            break; // connection drops like against a dead host
        }
        if shared.blackhole.load(Ordering::Acquire) {
            // Swallow the request; never answer. Wait for the mode to
            // change or the client to give up, then drop the connection.
            while shared.blackhole.load(Ordering::Acquire)
                && !shared.stop.load(Ordering::Acquire)
            {
                std::thread::sleep(Duration::from_millis(10));
            }
            shared.stats.dropped.fetch_add(1, Ordering::Relaxed);
            break;
        }
        if rng.next_f64() < shared.cfg.error_prob {
            shared.stats.injected_errors.fetch_add(1, Ordering::Relaxed);
            if Response::text(503, "injected fault").write_to(&mut writer).is_err() {
                break;
            }
            continue;
        }
        if rng.next_f64() < shared.cfg.drop_prob {
            shared.stats.dropped.fetch_add(1, Ordering::Relaxed);
            break;
        }
        if rng.next_f64() < shared.cfg.delay_prob {
            shared.stats.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(shared.cfg.delay);
        }
        match forward(&req, &mut upstream, shared.upstream) {
            Ok(resp) => {
                shared.stats.forwarded.fetch_add(1, Ordering::Relaxed);
                if resp.write_to(&mut writer).is_err() {
                    break;
                }
            }
            Err(_) => {
                // Upstream actually unreachable: behave like it.
                shared.stats.dropped.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    shared.sever(id, &writer);
}

/// Forwards one request over a (kept-alive, lazily connected) upstream
/// connection; reconnects once on a broken connection.
fn forward(
    req: &Request,
    upstream: &mut Option<TcpStream>,
    addr: SocketAddr,
) -> Result<Response> {
    for fresh in [false, true] {
        if fresh || upstream.is_none() {
            let s = TcpStream::connect(addr)?;
            s.set_read_timeout(Some(Duration::from_secs(10)))?;
            *upstream = Some(s);
        }
        let stream = upstream.as_mut().expect("just set");
        let attempt = (|| {
            req.write_to(stream, None)?;
            let mut r = BufReader::new(stream.try_clone()?);
            Response::read_from(&mut r)
        })();
        match attempt {
            Ok(resp) => return Ok(resp),
            Err(_) if !fresh => *upstream = None, // retry on a fresh conn
            Err(e) => return Err(e),
        }
    }
    unreachable!("loop returns on the fresh attempt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::server::Server;

    fn upstream() -> Server {
        Server::bind("127.0.0.1:0", 2, |req| {
            Response::text(200, format!("echo {}", req.path))
        })
        .unwrap()
    }

    #[test]
    fn transparent_when_no_faults_configured() {
        let server = upstream();
        let proxy = FaultProxy::start(server.addr(), FaultConfig::default()).unwrap();
        let mut c = HttpClient::connect(proxy.addr()).unwrap();
        for _ in 0..3 {
            let r = c.get("/x").unwrap();
            assert_eq!(r.status, 200);
            assert_eq!(r.body_str(), "echo /x");
        }
        assert_eq!(proxy.stats().0, 3);
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn error_injection_answers_503_without_upstream() {
        let server = upstream();
        let proxy = FaultProxy::start(
            server.addr(),
            FaultConfig { error_prob: 1.0, ..FaultConfig::default() },
        )
        .unwrap();
        let mut c = HttpClient::connect(proxy.addr()).unwrap();
        let r = c.get("/x").unwrap();
        assert_eq!(r.status, 503);
        let (forwarded, errors, _, _) = proxy.stats();
        assert_eq!((forwarded, errors), (0, 1));
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn down_severs_and_refuses_until_up() {
        let server = upstream();
        let proxy = FaultProxy::start(server.addr(), FaultConfig::default()).unwrap();
        let mut c = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(c.get("/a").unwrap().status, 200);
        proxy.set_down();
        assert!(c.get("/b").is_err(), "down proxy must sever the exchange");
        proxy.set_up();
        let mut c2 = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(c2.get("/c").unwrap().status, 200);
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let server = upstream();
        let schedule = |seed: u64| -> Vec<u16> {
            let proxy = FaultProxy::start(
                server.addr(),
                FaultConfig { seed, error_prob: 0.5, ..FaultConfig::default() },
            )
            .unwrap();
            let mut c = HttpClient::connect(proxy.addr()).unwrap();
            let out: Vec<u16> = (0..16).map(|_| c.get("/s").unwrap().status).collect();
            proxy.shutdown();
            out
        };
        let a = schedule(7);
        let b = schedule(7);
        let c = schedule(8);
        assert_eq!(a, b, "same seed must replay the same faults");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.contains(&503) && a.contains(&200), "{a:?}");
        server.shutdown();
    }

    #[test]
    fn blackhole_times_out_client() {
        let server = upstream();
        let proxy = FaultProxy::start(server.addr(), FaultConfig::default()).unwrap();
        proxy.set_blackhole(true);
        let mut c = HttpClient::connect(proxy.addr()).unwrap();
        c.set_timeout(Duration::from_millis(200));
        let start = std::time::Instant::now();
        assert!(c.get("/x").is_err(), "blackholed request must fail by timeout");
        assert!(start.elapsed() >= Duration::from_millis(150));
        proxy.set_blackhole(false);
        proxy.shutdown();
        server.shutdown();
    }
}
