//! Query-string handling: percent-encoding and parameter parsing.

/// Percent-decodes a query component (`%41` → `A`, `+` → space).
///
/// Invalid escapes are kept verbatim — lenient like most servers.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hi = hex(bytes[i + 1]);
                let lo = hex(bytes[i + 2]);
                match (hi, lo) {
                    (Some(h), Some(l)) => {
                        out.push(h * 16 + l);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a query component (RFC 3986 unreserved set kept).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn hex(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Splits `path?query` and parses the query into decoded key/value pairs.
pub fn split_path_query(target: &str) -> (&str, Vec<(String, String)>) {
    match target.split_once('?') {
        Some((path, query)) => (path, parse_query(query)),
        None => (target, Vec::new()),
    }
}

/// Parses `a=1&b=two%20words` into decoded pairs. Keys without `=` get an
/// empty value.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Builds a query string from pairs (keys and values encoded).
pub fn build_query(pairs: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (k, v) in pairs {
        if !out.is_empty() {
            out.push('&');
        }
        out.push_str(&percent_encode(k));
        out.push('=');
        out.push_str(&percent_encode(v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_basics() {
        assert_eq!(percent_decode("abc"), "abc");
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("%41%62%63"), "Abc");
        assert_eq!(percent_decode("100%25"), "100%");
    }

    #[test]
    fn decode_lenient_on_bad_escapes() {
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%2"), "%2");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn encode_round_trip() {
        for s in ["hello world", "a=b&c", "db/name", "100%", "ünïcödé"] {
            assert_eq!(percent_decode(&percent_encode(s)), s);
        }
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("db=lms&precision=ns&q=SELECT%20*&flag");
        assert_eq!(q[0], ("db".into(), "lms".into()));
        assert_eq!(q[2], ("q".into(), "SELECT *".into()));
        assert_eq!(q[3], ("flag".into(), String::new()));
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn split_target() {
        let (p, q) = split_path_query("/write?db=lms");
        assert_eq!(p, "/write");
        assert_eq!(q.len(), 1);
        let (p, q) = split_path_query("/ping");
        assert_eq!(p, "/ping");
        assert!(q.is_empty());
    }

    #[test]
    fn build_query_encodes() {
        assert_eq!(build_query(&[("q", "a b"), ("db", "lms")]), "q=a%20b&db=lms");
        assert_eq!(build_query(&[]), "");
    }
}
