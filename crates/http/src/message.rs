//! HTTP/1.1 request and response messages: parsing and serialization over
//! buffered streams, `Content-Length` bodies only.

use crate::url::split_path_query;
use lms_util::{Error, Result};
use std::io::{BufRead, Read, Write};

/// Maximum accepted header block (DoS guard for a trusted-network tool).
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Maximum accepted body (a full node's metric batch is ~100 KiB; leave
/// generous slack for aggregated pushes).
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method, upper-case (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path, without the query string.
    pub path: String,
    /// Decoded query parameters, in order.
    pub query: Vec<(String, String)>,
    /// Headers, keys lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a request with no headers or body.
    pub fn new(method: &str, target: &str) -> Self {
        let (path, query) = split_path_query(target);
        Request {
            method: method.to_ascii_uppercase(),
            path: path.to_string(),
            query,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// True when the peer asked to close the connection after this request.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Reads one request from a buffered stream. Returns `Ok(None)` on a
    /// clean EOF before any bytes (keep-alive connection closed).
    pub fn read_from(r: &mut impl BufRead) -> Result<Option<Request>> {
        Self::read_from_limited(r, MAX_BODY_BYTES)
    }

    /// [`Request::read_from`] with a per-server body cap. A declared
    /// `Content-Length` above `max_body` is rejected *before* reading the
    /// body, as `Error::Remote {{ status: 413 }}` so the server can answer
    /// `413 Payload Too Large` instead of a generic 400.
    pub fn read_from_limited(r: &mut impl BufRead, max_body: usize) -> Result<Option<Request>> {
        let request_line = match read_line(r, true)? {
            None => return Ok(None),
            Some(l) => l,
        };
        let mut parts = request_line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| Error::protocol("empty request line"))?
            .to_ascii_uppercase();
        let target = parts.next().ok_or_else(|| Error::protocol("missing request target"))?;
        let version = parts.next().unwrap_or("HTTP/1.1");
        if !version.starts_with("HTTP/1.") {
            return Err(Error::protocol(format!("unsupported version `{version}`")));
        }
        let (path, query) = split_path_query(target);
        let headers = read_headers(r)?;
        let declared = content_length(&headers)?;
        if declared > max_body.min(MAX_BODY_BYTES) {
            return Err(Error::Remote {
                status: 413,
                message: format!("body of {declared} bytes exceeds limit of {max_body}"),
            });
        }
        let body = read_body(r, &headers)?;
        Ok(Some(Request {
            method,
            path: crate::url::percent_decode(path),
            query,
            headers,
            body,
        }))
    }

    /// Serializes to a writer (adds `Content-Length`, keeps other headers).
    pub fn write_to(&self, w: &mut impl Write, target_override: Option<&str>) -> Result<()> {
        let target = match target_override {
            Some(t) => t.to_string(),
            None => {
                let mut t = self.path.clone();
                if !self.query.is_empty() {
                    let pairs: Vec<(&str, &str)> =
                        self.query.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                    t.push('?');
                    t.push_str(&crate::url::build_query(&pairs));
                }
                t
            }
        };
        write!(w, "{} {} HTTP/1.1\r\n", self.method, target)?;
        for (k, v) in &self.headers {
            if k != "content-length" {
                write!(w, "{k}: {v}\r\n")?;
            }
        }
        write!(w, "content-length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers, keys lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn status(status: u16) -> Self {
        Response { status, headers: Vec::new(), body: Vec::new() }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        let mut r = Response::status(status);
        r.headers.push(("content-type".into(), "text/plain; charset=utf-8".into()));
        r.body = body.into().into_bytes();
        r
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        let mut r = Response::status(status);
        r.headers.push(("content-type".into(), "application/json".into()));
        r.body = body.into().into_bytes();
        r
    }

    /// `204 No Content` — what the InfluxDB write endpoint answers.
    pub fn no_content() -> Self {
        Response::status(204)
    }

    /// `404 Not Found` with a plain-text message.
    pub fn not_found(msg: &str) -> Self {
        Response::text(404, msg)
    }

    /// `400 Bad Request` with a plain-text message.
    pub fn bad_request(msg: &str) -> Self {
        Response::text(400, msg)
    }

    /// `503 Service Unavailable` with a `Retry-After` hint — the overload
    /// shedding answer: cheap to produce, tells well-behaved clients when
    /// to come back.
    pub fn service_unavailable(msg: &str, retry_after_secs: u64) -> Self {
        let mut r = Response::text(503, msg);
        r.headers.push(("retry-after".into(), retry_after_secs.to_string()));
        r
    }

    /// First value of a header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// True for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Converts a non-2xx response into the stack error type.
    pub fn into_result(self) -> Result<Response> {
        if self.is_success() {
            Ok(self)
        } else {
            Err(Error::Remote { status: self.status, message: self.body_str().into_owned() })
        }
    }

    /// Reads one response from a buffered stream.
    pub fn read_from(r: &mut impl BufRead) -> Result<Response> {
        // A connection that dies before answering is an I/O failure, not a
        // protocol violation — the delivery taxonomy retries it.
        let status_line = read_line(r, true)?.ok_or_else(|| {
            Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before response",
            ))
        })?;
        let mut parts = status_line.split_whitespace();
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(Error::protocol(format!("bad status line `{status_line}`")));
        }
        let status: u16 = parts
            .next()
            .ok_or_else(|| Error::protocol("missing status code"))?
            .parse()
            .map_err(|_| Error::protocol("bad status code"))?;
        let headers = read_headers(r)?;
        let body = read_body(r, &headers)?;
        Ok(Response { status, headers, body })
    }

    /// Serializes to a writer.
    pub fn write_to(&self, w: &mut impl Write) -> Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (k, v) in &self.headers {
            if k != "content-length" {
                write!(w, "{k}: {v}\r\n")?;
            }
        }
        write!(w, "content-length: {}\r\n\r\n", self.body.len())?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok(())
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Reads a CRLF/LF-terminated line. `allow_eof`: EOF before any byte yields
/// `None` instead of an error.
fn read_line(r: &mut impl BufRead, allow_eof: bool) -> Result<Option<String>> {
    let mut line = Vec::new();
    let mut limited = r.take(MAX_HEADER_BYTES as u64);
    let n = limited
        .read_until(b'\n', &mut line)
        .map_err(Error::Io)?;
    if n == 0 {
        return if allow_eof {
            Ok(None)
        } else {
            Err(Error::protocol("unexpected end of stream"))
        };
    }
    while line.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
        line.pop();
    }
    Ok(Some(String::from_utf8(line).map_err(|e| Error::protocol(e.to_string()))?))
}

fn read_headers(r: &mut impl BufRead) -> Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line = read_line(r, false)?.expect("read_line(false) never returns None");
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > MAX_HEADER_BYTES {
            return Err(Error::protocol("header block too large"));
        }
        let (k, v) = line
            .split_once(':')
            .ok_or_else(|| Error::protocol(format!("malformed header `{line}`")))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
}

/// Declared `Content-Length`, or 0 when absent.
fn content_length(headers: &[(String, String)]) -> Result<usize> {
    headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().map_err(|_| Error::protocol("bad content-length")))
        .transpose()
        .map(|n| n.unwrap_or(0))
}

fn read_body(r: &mut impl BufRead, headers: &[(String, String)]) -> Result<Vec<u8>> {
    let len: usize = content_length(headers)?;
    if len > MAX_BODY_BYTES {
        return Err(Error::protocol(format!("body of {len} bytes exceeds limit")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(Error::Io)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    #[test]
    fn request_round_trip() {
        let mut req = Request::new("post", "/write?db=lms&precision=s");
        req.body = b"cpu v=1".to_vec();
        req.headers.push(("x-custom".into(), "yes".into()));
        let mut wire = Vec::new();
        req.write_to(&mut wire, None).unwrap();

        let mut reader = BufReader::new(Cursor::new(wire));
        let parsed = Request::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.path, "/write");
        assert_eq!(parsed.query_param("db"), Some("lms"));
        assert_eq!(parsed.query_param("precision"), Some("s"));
        assert_eq!(parsed.header("x-custom"), Some("yes"));
        assert_eq!(parsed.body, b"cpu v=1");
        assert!(!parsed.wants_close());
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::json(200, r#"{"results":[]}"#);
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let mut reader = BufReader::new(Cursor::new(wire));
        let parsed = Response::read_from(&mut reader).unwrap();
        assert_eq!(parsed.status, 200);
        assert!(parsed.is_success());
        assert_eq!(parsed.header("content-type"), Some("application/json"));
        assert_eq!(parsed.body_str(), r#"{"results":[]}"#);
    }

    #[test]
    fn keep_alive_reads_two_requests() {
        let mut wire = Vec::new();
        Request::new("GET", "/a").write_to(&mut wire, None).unwrap();
        Request::new("GET", "/b").write_to(&mut wire, None).unwrap();
        let mut reader = BufReader::new(Cursor::new(wire));
        assert_eq!(Request::read_from(&mut reader).unwrap().unwrap().path, "/a");
        assert_eq!(Request::read_from(&mut reader).unwrap().unwrap().path, "/b");
        assert!(Request::read_from(&mut reader).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn query_decoding_in_request_line() {
        let wire = b"GET /query?q=SELECT%20mean(%22value%22)&db=lms HTTP/1.1\r\n\r\n".to_vec();
        let mut reader = BufReader::new(Cursor::new(wire));
        let req = Request::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(req.query_param("q"), Some(r#"SELECT mean("value")"#));
    }

    #[test]
    fn rejects_malformed_input() {
        for wire in [
            &b"NOT_HTTP\r\n\r\n"[..],
            &b"GET /a HTTP/2.0\r\n\r\n"[..],
            &b"GET /a HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"GET /a HTTP/1.1\r\ncontent-length: abc\r\n\r\n"[..],
        ] {
            let mut reader = BufReader::new(Cursor::new(wire.to_vec()));
            assert!(Request::read_from(&mut reader).is_err(), "{wire:?}");
        }
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let wire = b"POST /w HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort".to_vec();
        let mut reader = BufReader::new(Cursor::new(wire));
        assert!(matches!(Request::read_from(&mut reader), Err(Error::Io(_))));
    }

    #[test]
    fn oversized_body_rejected_up_front() {
        let wire = format!("POST /w HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let mut reader = BufReader::new(Cursor::new(wire.into_bytes()));
        assert!(Request::read_from(&mut reader).is_err());
    }

    #[test]
    fn connection_close_detected() {
        let wire = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec();
        let mut reader = BufReader::new(Cursor::new(wire));
        assert!(Request::read_from(&mut reader).unwrap().unwrap().wants_close());
    }

    #[test]
    fn per_server_body_cap_yields_413() {
        let wire = b"POST /w HTTP/1.1\r\ncontent-length: 100\r\n\r\n".to_vec();
        let mut reader = BufReader::new(Cursor::new(wire));
        let err = Request::read_from_limited(&mut reader, 64).unwrap_err();
        assert!(matches!(err, Error::Remote { status: 413, .. }), "{err}");
    }

    #[test]
    fn service_unavailable_carries_retry_after() {
        let r = Response::service_unavailable("shedding", 2);
        assert_eq!(r.status, 503);
        assert_eq!(r.header("retry-after"), Some("2"));
    }

    #[test]
    fn into_result_maps_statuses() {
        assert!(Response::no_content().into_result().is_ok());
        let err = Response::bad_request("nope").into_result().unwrap_err();
        assert!(matches!(err, Error::Remote { status: 400, .. }));
    }
}
