//! The storage engine: orchestrates WAL, segment files, and compaction.
//!
//! [`TsmEngine`] owns the on-disk layout of one database:
//!
//! ```text
//! <dir>/wal/<seq:016x>.wal          write-ahead log segments
//! <dir>/seg-<p>-<seq:016x>.tsm      sealed-block segment files
//! ```
//!
//! where `p` is the time partition (decimal, possibly negative):
//! `p = max_ts.div_euclid(partition_ns)` of each block, so a whole file is
//! provably expired — and droppable without scanning — once
//! `(p + 1) * partition_ns <= retention cutoff` (every block in the file
//! has `max_ts < (p + 1) * partition_ns`, and a block's points never
//! exceed its `max_ts`).
//!
//! The engine does not know about series or queries; the in-memory index
//! (`lms-influx`) drives it through two session types, serialized by an
//! internal maintenance lock:
//!
//! * [`FlushSession`] — rotates the WAL *first* (capturing a checkpoint
//!   boundary), then receives the sealed heads as [`BlockEntry`]s, writes
//!   them to per-partition segment files, and on [`FlushSession::commit`]
//!   deletes the frozen WAL segments. Crash anywhere before commit leaves
//!   the WAL intact, so replay restores every acknowledged point; records
//!   that were both sealed and replayed deduplicate via last-write-wins.
//! * [`RewriteSession`] — major compaction: receives the merged,
//!   re-encoded blocks, writes fresh segment files, and on commit deletes
//!   every pre-session file. A crash mid-rewrite leaves old and new files
//!   coexisting; both load at next open and last-write-wins hides the
//!   stale versions until the next compaction removes them.
//!
//! Fault-injection hooks (`inject_segment_write_failure`,
//! `set_fail_wal_remove`) let crash tests abort these protocols at their
//! two interesting points deterministically.

use crate::segment::{self, BlockEntry};
use crate::wal::{Wal, WalConfig, WalRecord};
use lms_util::{Error, Result};
use parking_lot::Mutex;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Storage engine configuration.
#[derive(Debug, Clone)]
pub struct TsmConfig {
    /// Directory for this database's files (created if missing).
    pub dir: PathBuf,
    /// Width of one time partition in nanoseconds. Segment files never span
    /// partitions, so retention drops whole files. Default: 2 hours.
    pub partition_ns: i64,
    /// WAL segment rotation size.
    pub wal_segment_bytes: usize,
    /// Fsync the WAL on every append (see [`WalConfig`]).
    pub wal_fsync: bool,
    /// Compaction trigger: rewrite once any partition holds at least this
    /// many segment files.
    pub compact_min_files: usize,
    /// WAL group-commit window in milliseconds (see
    /// [`WalConfig::group_commit_delay`]). Zero together with
    /// `wal_group_commit_bytes == 0` restores the legacy per-append path.
    pub wal_group_commit_ms: u64,
    /// WAL group-commit size bound (see [`WalConfig::group_commit_bytes`]).
    pub wal_group_commit_bytes: usize,
    /// Maximum time span of one sealed block in nanoseconds, aligned to
    /// epoch multiples. Sealing splits runs at these boundaries so a
    /// `GROUP BY time(w)` window with `w` a multiple of the span fully
    /// contains every interior block and can consume its pre-aggregated
    /// summary without decoding. Default: 1 hour (dashboards bucket by
    /// hours far more often than by partition widths).
    pub block_span_ns: i64,
}

impl TsmConfig {
    /// Defaults: 2-hour partitions, 4 MiB WAL segments, fsync on rotate,
    /// compact at 4 files per partition, 2 ms / 1 MiB group commits.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TsmConfig {
            dir: dir.into(),
            partition_ns: 2 * 3600 * 1_000_000_000,
            wal_segment_bytes: 4 * 1024 * 1024,
            wal_fsync: false,
            compact_min_files: 4,
            wal_group_commit_ms: 2,
            wal_group_commit_bytes: 1024 * 1024,
            block_span_ns: 3600 * 1_000_000_000,
        }
    }
}

/// Everything recovered at open: sealed blocks plus WAL records to replay.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Block entries from all segment files, sorted by generation — install
    /// in order and series re-appear with their pre-crash field layout.
    pub blocks: Vec<BlockEntry>,
    /// Acknowledged-but-unflushed write batches, in append order. Replay
    /// after installing `blocks`; overlap is resolved by last-write-wins.
    pub wal_records: Vec<WalRecord>,
    /// WAL bytes discarded as torn tails (crash mid-append).
    pub torn_wal_bytes: u64,
    /// CRC-failed frames found while loading segment files and the WAL —
    /// acknowledged data the disk corrupted, as opposed to torn tails.
    pub corrupt_frames: u64,
}

/// Point-in-time storage gauges for `/stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TsmStats {
    /// Bytes currently in the WAL (frozen + active segments).
    pub wal_bytes: u64,
    /// Number of sealed segment files.
    pub segment_files: u64,
    /// Total bytes across segment files.
    pub segment_bytes: u64,
    /// Major compactions completed since open.
    pub compactions: u64,
    /// WAL records replayed at the last open.
    pub recovered_records: u64,
    /// True once the engine hit `ENOSPC` (WAL append or segment write)
    /// and dropped to degraded read-only mode.
    pub degraded: bool,
    /// WAL record groups committed since open.
    pub wal_group_commits: u64,
    /// `sync_data` calls on WAL files since open.
    pub wal_fsyncs: u64,
    /// EWMA of points per committed WAL group.
    pub wal_points_per_commit: f64,
    /// Bytes re-verified by the scrubber since open.
    pub scrubbed_bytes: u64,
    /// CRC-failed frames seen since open (load time + scrub passes).
    pub corrupt_frames: u64,
    /// Segment files quarantined since open.
    pub quarantined_segments: u64,
    /// Time ranges currently marked damaged (quarantined, awaiting
    /// anti-entropy repair from a replica).
    pub damaged_ranges: u64,
}

/// A per-partition time range lost to a quarantined segment. The points it
/// covered are restored by the cluster's anti-entropy repair pass (or by a
/// surviving overlapping generation); until then queries over the range
/// may be missing data on this node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DamagedRange {
    /// Time partition of the quarantined file.
    pub partition: i64,
    /// Partition start (inclusive, ns).
    pub start_ns: i64,
    /// Partition end (exclusive, ns).
    pub end_ns: i64,
    /// The quarantined file (post-rename).
    pub file: PathBuf,
}

/// Outcome of quarantining one corrupt segment file.
#[derive(Debug, Clone)]
pub struct QuarantineReport {
    /// Original segment path (no longer present).
    pub original: PathBuf,
    /// Where the file went (`<name>.quarantine`).
    pub quarantined: PathBuf,
    /// Sidecar report path (`<name>.quarantine.json`).
    pub sidecar: PathBuf,
    /// The file's time partition.
    pub partition: i64,
    /// Damaged range start (inclusive, ns) — the whole partition,
    /// conservatively, since the corrupt frames' blocks are unreadable.
    pub start_ns: i64,
    /// Damaged range end (exclusive, ns).
    pub end_ns: i64,
    /// Offsets of the CRC-failed frames inside the original file.
    pub corrupt_offsets: Vec<u64>,
    /// Series whose blocks were still readable in the file (the corrupt
    /// frames' series are unknown by definition).
    pub intact_series: Vec<String>,
}

struct SegFile {
    partition: i64,
    seq: u64,
    path: PathBuf,
    bytes: u64,
}

struct Faults {
    /// One-shot: abort the next segment write after this many bytes.
    segment_write_after: Option<u64>,
    /// Sticky: skip WAL checkpoint removal (simulates a crash between
    /// segment fsync and WAL delete).
    skip_wal_remove: bool,
    /// Sticky: every WAL append fails as if the disk were full
    /// (`ErrorKind::StorageFull`), driving the degraded-mode transition.
    fail_wal_append: bool,
}

/// Persistent storage engine for one database. See the module docs.
pub struct TsmEngine {
    cfg: TsmConfig,
    wal: Wal,
    files: Mutex<Vec<SegFile>>,
    /// Serializes flush/compaction sessions (held by the session structs).
    maint: Mutex<()>,
    next_gen: AtomicU64,
    next_seg_seq: AtomicU64,
    compactions: AtomicU64,
    recovered_records: u64,
    /// Set on `ENOSPC` from WAL append or segment write: the engine stops
    /// accepting writes ([`TsmEngine::append_wal`] returns
    /// `Error::Unavailable`) instead of retrying a full disk forever.
    /// Reads and already-sealed data stay available.
    degraded: AtomicBool,
    /// Hard ceiling on retention cutoffs ([`TsmEngine::set_drop_floor`]):
    /// `drop_expired` never unlinks a partition reaching at or past this
    /// timestamp, whatever cutoff the caller computed. `i64::MAX` = no
    /// floor.
    drop_floor: AtomicI64,
    /// Bytes re-verified by scrub passes.
    scrubbed_bytes: AtomicU64,
    /// CRC-failed frames observed (segment load, WAL recovery, scrub).
    corrupt_frames: AtomicU64,
    /// Segment files quarantined since open.
    quarantined: AtomicU64,
    /// Time ranges lost to quarantine, pending anti-entropy repair.
    damaged: Mutex<Vec<DamagedRange>>,
    faults: Mutex<Faults>,
}

/// True for I/O errors that mean "the disk is full": retrying cannot help
/// until an operator frees space, so the engine degrades instead.
fn is_storage_full(e: &Error) -> bool {
    matches!(e, Error::Io(io) if io.kind() == std::io::ErrorKind::StorageFull)
}

fn segment_file_name(partition: i64, seq: u64) -> String {
    format!("seg-{partition}-{seq:016x}.tsm")
}

/// Parses `seg-<p>-<seq:016x>.tsm`; `p` is decimal and may be negative.
fn parse_segment_name(name: &str) -> Option<(i64, u64)> {
    let stem = name.strip_prefix("seg-")?.strip_suffix(".tsm")?;
    let (partition, seq) = stem.rsplit_once('-')?;
    Some((partition.parse().ok()?, u64::from_str_radix(seq, 16).ok()?))
}

/// `seg-<p>-<seq>.tsm` → `seg-<p>-<seq>.tsm.quarantine`. The suffix is
/// appended (not substituted) so the original name — and therefore the
/// partition/seq — stays recoverable, and `parse_segment_name` no longer
/// matches, keeping the file out of every future open.
fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    name.push_str(".quarantine");
    path.with_file_name(name)
}

fn sidecar_path(quarantined: &Path) -> PathBuf {
    let mut name =
        quarantined.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    name.push_str(".json");
    quarantined.with_file_name(name)
}

fn quarantine_sidecar_json(report: &QuarantineReport) -> String {
    use lms_util::json::Json;
    Json::obj([
        ("file", Json::str(report.original.display().to_string())),
        ("quarantined", Json::str(report.quarantined.display().to_string())),
        ("partition", Json::Int(report.partition)),
        ("start_ns", Json::Int(report.start_ns)),
        ("end_ns", Json::Int(report.end_ns)),
        (
            "corrupt_offsets",
            Json::arr(report.corrupt_offsets.iter().map(|&o| Json::Int(o as i64))),
        ),
        ("intact_series", Json::arr(report.intact_series.iter().map(Json::str))),
    ])
    .to_pretty()
}

impl TsmEngine {
    /// Opens the engine, recovering sealed blocks from segment files and
    /// unflushed batches from the WAL. Stray `.tmp` files (crash mid-flush)
    /// are deleted.
    pub fn open(cfg: TsmConfig) -> Result<(TsmEngine, Recovered)> {
        assert!(cfg.partition_ns > 0, "partition width must be positive");
        fs::create_dir_all(&cfg.dir)?;

        let mut files = Vec::new();
        for entry in fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let name = match entry.file_name().into_string() {
                Ok(n) => n,
                Err(_) => continue,
            };
            if name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some((partition, seq)) = parse_segment_name(&name) {
                let bytes = entry.metadata()?.len();
                files.push(SegFile { partition, seq, path: entry.path(), bytes });
            }
        }
        files.sort_by_key(|f| f.seq);

        let mut blocks = Vec::new();
        let mut corrupt_frames = 0u64;
        for f in &files {
            let scan = segment::scan_segment(&f.path)?;
            if scan.corrupt_frames > 0 {
                corrupt_frames += scan.corrupt_frames;
                eprintln!(
                    "lms-tsm: warning: {} CRC-failed frame(s) in {} at offsets {:?}; \
                     intact blocks loaded, file left for the scrubber to quarantine",
                    scan.corrupt_frames,
                    f.path.display(),
                    scan.corrupt_offsets
                );
            }
            blocks.extend(scan.entries);
        }
        blocks.sort_by_key(|e| e.block.gen);

        let (wal, wal_recovery) = Wal::open(WalConfig {
            dir: cfg.dir.join("wal"),
            segment_bytes: cfg.wal_segment_bytes,
            fsync_every_append: cfg.wal_fsync,
            group_commit_delay: std::time::Duration::from_millis(cfg.wal_group_commit_ms),
            group_commit_bytes: cfg.wal_group_commit_bytes,
        })?;

        let next_gen = blocks.last().map(|e| e.block.gen + 1).unwrap_or(0);
        let next_seg_seq = files.last().map(|f| f.seq + 1).unwrap_or(0);
        corrupt_frames += wal_recovery.corrupt_frames;
        let recovered = Recovered {
            blocks,
            wal_records: wal_recovery.records,
            torn_wal_bytes: wal_recovery.torn_bytes,
            corrupt_frames,
        };
        let engine = TsmEngine {
            cfg,
            wal,
            files: Mutex::new(files),
            maint: Mutex::new(()),
            next_gen: AtomicU64::new(next_gen),
            next_seg_seq: AtomicU64::new(next_seg_seq),
            compactions: AtomicU64::new(0),
            recovered_records: recovered.wal_records.len() as u64,
            degraded: AtomicBool::new(false),
            drop_floor: AtomicI64::new(i64::MAX),
            scrubbed_bytes: AtomicU64::new(0),
            corrupt_frames: AtomicU64::new(corrupt_frames),
            quarantined: AtomicU64::new(0),
            damaged: Mutex::new(Vec::new()),
            faults: Mutex::new(Faults {
                segment_write_after: None,
                skip_wal_remove: false,
                fail_wal_append: false,
            }),
        };
        Ok((engine, recovered))
    }

    /// Appends one acknowledged write batch of `points` points to the WAL
    /// (the count only feeds the points-per-commit gauge). The call
    /// returns once the record's commit group is durable; concurrent
    /// appends share one write (and fsync) per group. In degraded
    /// read-only mode (after `ENOSPC`) the append is refused up front with
    /// `Error::Unavailable` — transient, so the delivery pipeline keeps
    /// the data spooled instead of dropping it.
    pub fn append_wal(&self, batch: &str, points: u64) -> Result<u64> {
        if self.degraded.load(Ordering::Acquire) {
            return Err(Error::unavailable("storage degraded (disk full): writes refused"));
        }
        let result = if self.faults.lock().fail_wal_append {
            Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "fault injection: no space left on device",
            )))
        } else {
            self.wal.append(batch, points)
        };
        if let Err(e) = &result {
            if is_storage_full(e) {
                self.degraded.store(true, Ordering::Release);
            }
        }
        result
    }

    /// True once the engine dropped to degraded read-only mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Clears degraded mode (operator freed disk space). Subsequent writes
    /// are attempted again; another `ENOSPC` re-degrades.
    pub fn clear_degraded(&self) {
        self.degraded.store(false, Ordering::Release);
    }

    /// Allocates the next seal generation (monotonic across restarts).
    pub fn next_gen(&self) -> u64 {
        self.next_gen.fetch_add(1, Ordering::Relaxed)
    }

    /// The partition a block with this `max_ts` belongs to.
    pub fn partition_of(&self, max_ts: i64) -> i64 {
        max_ts.div_euclid(self.cfg.partition_ns)
    }

    /// The epoch-aligned block-span bucket of a timestamp: sealing splits
    /// point runs where this changes, bounding every block to one span so
    /// window-aligned queries can answer interior blocks from summaries.
    pub fn span_of(&self, ts: i64) -> i64 {
        ts.div_euclid(self.cfg.block_span_ns.max(1))
    }

    /// Starts a flush: rotates the WAL and returns a session to write the
    /// sealed heads through. Blocks while another maintenance session runs.
    pub fn begin_flush(&self) -> Result<FlushSession<'_>> {
        let guard = self.maint.lock();
        let boundary = self.wal.rotate()?;
        Ok(FlushSession { engine: self, _guard: guard, boundary })
    }

    /// Starts a major compaction rewrite session. The caller merges and
    /// re-encodes blocks however it likes; the session replaces every
    /// pre-existing segment file on commit.
    pub fn begin_rewrite(&self) -> RewriteSession<'_> {
        let guard = self.maint.lock();
        let old: Vec<PathBuf> = self.files.lock().iter().map(|f| f.path.clone()).collect();
        RewriteSession { engine: self, _guard: guard, old, new: Vec::new() }
    }

    /// Writes `entries` grouped into one segment file per partition and
    /// registers the files. Used by both session types.
    fn write_entries(&self, entries: &[BlockEntry]) -> Result<Vec<SegFile>> {
        let mut by_partition: Vec<(i64, Vec<&BlockEntry>)> = Vec::new();
        for e in entries {
            let p = self.partition_of(e.block.max_ts);
            match by_partition.iter_mut().find(|(q, _)| *q == p) {
                Some((_, v)) => v.push(e),
                None => by_partition.push((p, vec![e])),
            }
        }
        by_partition.sort_by_key(|(p, _)| *p);

        let mut written = Vec::new();
        for (partition, group) in by_partition {
            let seq = self.next_seg_seq.fetch_add(1, Ordering::Relaxed);
            let path = self.cfg.dir.join(segment_file_name(partition, seq));
            let fail_after = self.faults.lock().segment_write_after.take();
            let owned: Vec<BlockEntry> = group.into_iter().cloned().collect();
            let bytes = match segment::write_segment(&path, &owned, fail_after) {
                Ok(b) => b,
                Err(e) => {
                    if is_storage_full(&e) {
                        self.degraded.store(true, Ordering::Release);
                    }
                    return Err(e);
                }
            };
            written.push(SegFile { partition, seq, path, bytes });
        }
        Ok(written)
    }

    /// Sets the retention drop floor: [`TsmEngine::drop_expired`] clamps
    /// every cutoff to at most `floor_ns`. The rollup layer uses this as
    /// defense in depth — raw segments holding points not yet covered by a
    /// durable rollup tier must survive even a miscomputed cutoff.
    pub fn set_drop_floor(&self, floor_ns: i64) {
        self.drop_floor.store(floor_ns, Ordering::Release);
    }

    /// Deletes every segment file whose partition is entirely older than
    /// `cutoff_ns` (clamped to the drop floor, see
    /// [`TsmEngine::set_drop_floor`]). Returns the number of files removed.
    pub fn drop_expired(&self, cutoff_ns: i64) -> Result<usize> {
        let cutoff_ns = cutoff_ns.min(self.drop_floor.load(Ordering::Acquire));
        let _g = self.maint.lock();
        let mut files = self.files.lock();
        let mut kept = Vec::new();
        let mut dropped = 0;
        for f in files.drain(..) {
            // All points in the file satisfy ts <= max_ts < (p+1)*width.
            let partition_end = (f.partition + 1).saturating_mul(self.cfg.partition_ns);
            if partition_end <= cutoff_ns {
                fs::remove_file(&f.path)?;
                dropped += 1;
            } else {
                kept.push(f);
            }
        }
        *files = kept;
        Ok(dropped)
    }

    /// True when any partition has accumulated `compact_min_files` files.
    pub fn needs_compaction(&self) -> bool {
        let files = self.files.lock();
        let mut counts: Vec<(i64, usize)> = Vec::new();
        for f in files.iter() {
            match counts.iter_mut().find(|(p, _)| *p == f.partition) {
                Some((_, n)) => *n += 1,
                None => counts.push((f.partition, 1)),
            }
        }
        counts.iter().any(|(_, n)| *n >= self.cfg.compact_min_files)
    }

    /// Number of live segment files.
    pub fn segment_file_count(&self) -> usize {
        self.files.lock().len()
    }

    /// Current storage gauges.
    pub fn stats(&self) -> TsmStats {
        let (segment_files, segment_bytes) = {
            let files = self.files.lock();
            (files.len() as u64, files.iter().map(|f| f.bytes).sum())
        };
        let group = self.wal.group_stats();
        TsmStats {
            wal_bytes: self.wal.bytes(),
            segment_files,
            segment_bytes,
            compactions: self.compactions.load(Ordering::Relaxed),
            recovered_records: self.recovered_records,
            degraded: self.degraded.load(Ordering::Acquire),
            wal_group_commits: group.group_commits,
            wal_fsyncs: group.fsyncs,
            wal_points_per_commit: group.points_per_commit,
            scrubbed_bytes: self.scrubbed_bytes.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            quarantined_segments: self.quarantined.load(Ordering::Relaxed),
            damaged_ranges: self.damaged.lock().len() as u64,
        }
    }

    /// Snapshot of the registered segment files for the scrubber:
    /// `(path, partition, bytes)`, in registration (seq) order.
    pub fn scrub_targets(&self) -> Vec<(PathBuf, i64, u64)> {
        self.files.lock().iter().map(|f| (f.path.clone(), f.partition, f.bytes)).collect()
    }

    /// Paths of the frozen (immutable) WAL segments, safe to CRC-verify
    /// concurrently with appends to the active segment.
    pub fn wal_frozen_paths(&self) -> Vec<PathBuf> {
        self.wal.frozen_paths()
    }

    /// CRC-verifies one frozen WAL segment; returns `(bytes, corrupt_at)`.
    pub(crate) fn verify_wal_file(&self, path: &Path) -> Result<(u64, Option<u64>)> {
        crate::wal::verify_wal_segment(path)
    }

    /// Accounts bytes the scrubber re-verified.
    pub fn record_scrubbed(&self, bytes: u64) {
        self.scrubbed_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Accounts CRC failures the scrubber (or a reader) observed.
    pub fn record_corrupt_frames(&self, n: u64) {
        if n > 0 {
            self.corrupt_frames.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The configured partition width in nanoseconds.
    pub fn partition_ns(&self) -> i64 {
        self.cfg.partition_ns
    }

    /// Quarantines a corrupt segment file: atomically renames it to
    /// `<name>.quarantine`, writes a `<name>.quarantine.json` sidecar
    /// (offsets + affected time range + surviving series), unregisters the
    /// file, and marks the partition's time range damaged. The caller then
    /// rebuilds its in-memory state for the partition from the surviving
    /// files ([`TsmEngine::reload_partition`]) and relies on anti-entropy
    /// repair to restore the lost points from a replica.
    pub fn quarantine_segment(&self, path: &Path, corrupt_offsets: &[u64]) -> Result<QuarantineReport> {
        let _g = self.maint.lock();
        let seg = {
            let mut files = self.files.lock();
            let idx = files
                .iter()
                .position(|f| f.path == path)
                .ok_or_else(|| Error::invalid(format!("{}: not a registered segment", path.display())))?;
            files.remove(idx)
        };
        // The corrupt frames' contents are unreadable, so the damage is
        // bounded only by the file's partition.
        let start_ns = seg.partition.saturating_mul(self.cfg.partition_ns);
        let end_ns = (seg.partition + 1).saturating_mul(self.cfg.partition_ns);
        let intact_series: Vec<String> = {
            let mut keys: Vec<String> = segment::scan_segment(&seg.path)
                .map(|s| s.entries.into_iter().map(|e| e.series_key).collect())
                .unwrap_or_default();
            keys.sort();
            keys.dedup();
            keys
        };
        let quarantined = quarantine_path(&seg.path);
        let sidecar = sidecar_path(&quarantined);
        fs::rename(&seg.path, &quarantined)?;
        let report = QuarantineReport {
            original: seg.path.clone(),
            quarantined,
            sidecar: sidecar.clone(),
            partition: seg.partition,
            start_ns,
            end_ns,
            corrupt_offsets: corrupt_offsets.to_vec(),
            intact_series,
        };
        // Best-effort: the sidecar is forensic, the rename is the safety.
        let _ = fs::write(&sidecar, quarantine_sidecar_json(&report));
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.damaged.lock().push(DamagedRange {
            partition: seg.partition,
            start_ns,
            end_ns,
            file: report.quarantined.clone(),
        });
        eprintln!(
            "lms-tsm: warning: quarantined {} ({} corrupt frame(s), partition {} covering \
             [{start_ns}, {end_ns}) ns); awaiting anti-entropy repair",
            report.quarantined.display(),
            corrupt_offsets.len(),
            seg.partition
        );
        Ok(report)
    }

    /// The time ranges currently marked damaged by quarantines.
    pub fn damaged_ranges(&self) -> Vec<DamagedRange> {
        self.damaged.lock().clone()
    }

    /// Re-reads every surviving segment file of one partition, returning
    /// its intact entries sorted by generation — the caller swaps these in
    /// for the partition's previous in-memory sealed blocks after a
    /// quarantine.
    pub fn reload_partition(&self, partition: i64) -> Result<Vec<BlockEntry>> {
        let paths: Vec<PathBuf> = {
            let files = self.files.lock();
            files.iter().filter(|f| f.partition == partition).map(|f| f.path.clone()).collect()
        };
        let mut blocks = Vec::new();
        for p in &paths {
            let scan = segment::scan_segment(p)?;
            self.record_corrupt_frames(scan.corrupt_frames);
            blocks.extend(scan.entries);
        }
        blocks.sort_by_key(|e| e.block.gen);
        Ok(blocks)
    }

    /// Fsyncs the active WAL segment (graceful shutdown).
    pub fn sync(&self) -> Result<()> {
        self.wal.sync()
    }

    /// Fault injection: abort the next segment-file write after roughly
    /// `after_bytes` bytes (one-shot).
    pub fn inject_segment_write_failure(&self, after_bytes: u64) {
        self.faults.lock().segment_write_after = Some(after_bytes);
    }

    /// Fault injection: when set, flush commits skip WAL checkpoint
    /// removal, as if the process died between segment fsync and delete.
    pub fn set_fail_wal_remove(&self, on: bool) {
        self.faults.lock().skip_wal_remove = on;
    }

    /// Fault injection: when set, every WAL append fails with a simulated
    /// `ENOSPC`, driving the engine into degraded read-only mode (sticky;
    /// clear with `inject_wal_append_failure(false)` + [`clear_degraded`]
    /// to simulate an operator freeing space).
    ///
    /// [`clear_degraded`]: TsmEngine::clear_degraded
    pub fn inject_wal_append_failure(&self, on: bool) {
        self.faults.lock().fail_wal_append = on;
    }
}

impl std::fmt::Debug for TsmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsmEngine").field("dir", &self.cfg.dir).finish_non_exhaustive()
    }
}

/// An in-progress flush (see [`TsmEngine::begin_flush`]).
pub struct FlushSession<'a> {
    engine: &'a TsmEngine,
    _guard: parking_lot::MutexGuard<'a, ()>,
    boundary: u64,
}

impl FlushSession<'_> {
    /// Writes one batch of sealed heads to per-partition segment files.
    /// May be called multiple times (e.g. once per shard).
    pub fn write(&mut self, entries: &[BlockEntry]) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let written = self.engine.write_entries(entries)?;
        self.engine.files.lock().extend(written);
        Ok(())
    }

    /// Completes the flush: the sealed data is durable, so the frozen WAL
    /// segments below the checkpoint boundary are deleted.
    pub fn commit(self) -> Result<()> {
        if self.engine.faults.lock().skip_wal_remove {
            return Err(Error::invalid("fault injection: wal checkpoint removal skipped"));
        }
        self.engine.wal.remove_frozen(self.boundary)
    }
}

/// An in-progress major compaction (see [`TsmEngine::begin_rewrite`]).
pub struct RewriteSession<'a> {
    engine: &'a TsmEngine,
    _guard: parking_lot::MutexGuard<'a, ()>,
    old: Vec<PathBuf>,
    new: Vec<SegFile>,
}

impl RewriteSession<'_> {
    /// Writes one batch of merged, re-encoded blocks.
    pub fn write(&mut self, entries: &[BlockEntry]) -> Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        self.new.extend(self.engine.write_entries(entries)?);
        Ok(())
    }

    /// Installs the rewritten files and deletes every pre-session file.
    pub fn commit(self) -> Result<()> {
        {
            let mut files = self.engine.files.lock();
            files.retain(|f| !self.old.contains(&f.path));
            files.extend(self.new);
        }
        for path in &self.old {
            fs::remove_file(path)?;
        }
        self.engine.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Lists the segment files currently registered, for tests and tooling.
pub fn list_segment_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(rd) = fs::read_dir(dir) else { return Vec::new() };
    let mut out: Vec<PathBuf> = rd
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| parse_segment_name(n).is_some())
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::SealedBlock;
    use lms_lineproto::FieldValue;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lms-tsm-eng-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: &Path) -> TsmConfig {
        TsmConfig { partition_ns: 1_000, ..TsmConfig::new(dir) }
    }

    fn entry(key: &str, gen: u64, ts: std::ops::Range<i64>) -> BlockEntry {
        let points: Vec<(i64, FieldValue)> =
            ts.map(|t| (t, FieldValue::Float(t as f64))).collect();
        BlockEntry {
            series_key: key.to_string(),
            measurement: "m".to_string(),
            tags: Vec::new(),
            field: "v".to_string(),
            block: SealedBlock::seal(gen, &points),
        }
    }

    #[test]
    fn segment_name_round_trip() {
        assert_eq!(parse_segment_name(&segment_file_name(0, 0)), Some((0, 0)));
        assert_eq!(parse_segment_name(&segment_file_name(-3, 0xabc)), Some((-3, 0xabc)));
        assert_eq!(
            parse_segment_name(&segment_file_name(i64::MAX / 2, u64::MAX)),
            Some((i64::MAX / 2, u64::MAX))
        );
        assert_eq!(parse_segment_name("seg-1.tsm"), None);
        assert_eq!(parse_segment_name("wal-1-0.tsm"), None);
    }

    #[test]
    fn flush_persists_and_checkpoints() {
        let dir = tmp("flush");
        let (engine, rec) = TsmEngine::open(cfg(&dir)).unwrap();
        assert!(rec.blocks.is_empty() && rec.wal_records.is_empty());
        engine.append_wal("m v=1 500", 1).unwrap();
        let gen = engine.next_gen();
        let mut flush = engine.begin_flush().unwrap();
        flush.write(&[entry("m", gen, 500..501)]).unwrap();
        flush.commit().unwrap();
        assert_eq!(engine.segment_file_count(), 1);
        drop(engine);

        let (engine2, rec2) = TsmEngine::open(cfg(&dir)).unwrap();
        assert_eq!(rec2.blocks.len(), 1, "sealed block survives restart");
        assert_eq!(rec2.wal_records.len(), 0, "checkpointed WAL is gone");
        assert_eq!(engine2.next_gen(), gen + 1, "generation counter resumes past sealed max");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_before_commit_keeps_wal() {
        let dir = tmp("crash");
        {
            let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
            engine.append_wal("m v=1 500", 1).unwrap();
            let gen = engine.next_gen();
            let mut flush = engine.begin_flush().unwrap();
            flush.write(&[entry("m", gen, 500..501)]).unwrap();
            // No commit: simulated crash after segment write, before WAL delete.
        }
        let (_, rec) = TsmEngine::open(cfg(&dir)).unwrap();
        assert_eq!(rec.blocks.len(), 1);
        assert_eq!(rec.wal_records.len(), 1, "WAL still replayable (idempotent overlap)");
        assert_eq!(rec.wal_records[0].batch, "m v=1 500");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_write_fault_aborts_flush_without_data_loss() {
        let dir = tmp("fault");
        {
            let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
            engine.append_wal("m v=1 500", 1).unwrap();
            engine.inject_segment_write_failure(4);
            let gen = engine.next_gen();
            let mut flush = engine.begin_flush().unwrap();
            assert!(flush.write(&[entry("m", gen, 500..501)]).is_err());
        }
        let (engine, rec) = TsmEngine::open(cfg(&dir)).unwrap();
        assert_eq!(rec.blocks.len(), 0, "aborted segment never became visible");
        assert_eq!(rec.wal_records.len(), 1, "WAL covers the lost flush");
        assert_eq!(engine.segment_file_count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_on_wal_append_degrades_to_read_only() {
        let dir = tmp("enospc");
        let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
        engine.append_wal("m v=1 500", 1).unwrap();
        assert!(!engine.is_degraded());

        engine.inject_wal_append_failure(true);
        let err = engine.append_wal("m v=2 501", 1).unwrap_err();
        assert!(matches!(err, Error::Io(_)), "first failure surfaces the ENOSPC: {err}");
        assert!(engine.is_degraded());
        assert!(engine.stats().degraded);

        // Degraded mode refuses up front — no disk I/O, transient error.
        let err = engine.append_wal("m v=3 502", 1).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "{err}");
        assert!(err.is_transient(), "callers must keep the data spooled, not drop it");

        // Operator frees space: clear the fault and degraded flag, writes
        // resume.
        engine.inject_wal_append_failure(false);
        engine.clear_degraded();
        engine.append_wal("m v=4 503", 1).unwrap();
        assert!(!engine.is_degraded());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partitioning_and_retention_drop() {
        let dir = tmp("retention");
        let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
        let mut flush = engine.begin_flush().unwrap();
        // Three partitions: [0,1000), [1000,2000), [2000,3000).
        flush.write(&[entry("a", 0, 0..10), entry("b", 1, 1500..1510), entry("c", 2, 2500..2510)])
            .unwrap();
        flush.commit().unwrap();
        assert_eq!(engine.segment_file_count(), 3, "one file per partition");

        assert_eq!(engine.drop_expired(1000).unwrap(), 1);
        assert_eq!(engine.drop_expired(1999).unwrap(), 0, "partition 1 ends at 2000");
        assert_eq!(engine.drop_expired(2000).unwrap(), 1);
        assert_eq!(engine.segment_file_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_replaces_files_and_counts_compactions() {
        let dir = tmp("rewrite");
        let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
        for i in 0..4u64 {
            let mut flush = engine.begin_flush().unwrap();
            flush.write(&[entry("a", i, 0..10)]).unwrap();
            flush.commit().unwrap();
        }
        assert_eq!(engine.segment_file_count(), 4);
        assert!(engine.needs_compaction());

        let mut rw = engine.begin_rewrite();
        rw.write(&[entry("a", 4, 0..10)]).unwrap();
        rw.commit().unwrap();
        assert_eq!(engine.segment_file_count(), 1);
        assert!(!engine.needs_compaction());
        assert_eq!(engine.stats().compactions, 1);
        assert_eq!(list_segment_files(&dir).len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
