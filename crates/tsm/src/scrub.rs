//! Background integrity scrub: incremental CRC re-verification of sealed
//! segments and frozen WAL tails.
//!
//! Disks corrupt data silently; a CRC check at write time proves nothing
//! about what a sector holds a month later. The scrubber walks the
//! engine's sealed segment files in path order, re-verifying every frame's
//! CRC under a byte budget per pass, so a full cycle over the data
//! completes on a configurable cadence without stealing meaningful
//! bandwidth from ingest. A file that fails verification — CRC-failed
//! frames, a torn tail in what must be an immutable file, or a destroyed
//! magic — is handed to [`TsmEngine::quarantine_segment`]: renamed to
//! `*.quarantine` with a JSON sidecar, unregistered, and its partition's
//! time range marked damaged for the cluster's anti-entropy repair pass to
//! restore from a replica.
//!
//! The scrubber holds no lock while reading files (segments are immutable
//! once renamed into place); only the quarantine itself serializes with
//! maintenance. Frozen WAL segments are verified once per completed cycle
//! — the active WAL segment is skipped, since its tail is legitimately
//! mid-write under group commit.

use crate::engine::{list_segment_files, QuarantineReport, TsmEngine};
use crate::segment;
use lms_util::rng::XorShift64;
use lms_util::{Error, Result};
use std::path::{Path, PathBuf};

/// Scrub pacing configuration, carried by the storage layer that drives
/// the worker loop (the scrubber itself is budget-driven per call).
#[derive(Debug, Clone)]
pub struct ScrubConfig {
    /// Seconds between scrub passes. `0` disables the scrubber.
    pub interval_secs: u64,
    /// Byte budget per pass: one pass verifies roughly this many bytes
    /// before yielding, bounding the I/O rate to
    /// `rate_bytes / interval_secs` per second.
    pub rate_bytes: u64,
}

impl Default for ScrubConfig {
    /// Defaults: one pass per minute, 8 MiB per pass (~136 KiB/s steady
    /// state — invisible next to ingest, yet a full cycle over a 10 GiB
    /// node completes in under a day).
    fn default() -> Self {
        ScrubConfig { interval_secs: 60, rate_bytes: 8 * 1024 * 1024 }
    }
}

impl ScrubConfig {
    /// True when the scrubber should run at all.
    pub fn enabled(&self) -> bool {
        self.interval_secs > 0 && self.rate_bytes > 0
    }
}

/// What one scrub pass did.
#[derive(Debug, Default)]
pub struct ScrubOutcome {
    /// Bytes re-verified this pass.
    pub scrubbed_bytes: u64,
    /// Files fully verified this pass.
    pub files_verified: u64,
    /// CRC-failed frames found this pass.
    pub corrupt_frames: u64,
    /// Segments quarantined this pass.
    pub quarantined: Vec<QuarantineReport>,
    /// True when the pass reached the end of the file list (and verified
    /// the frozen WAL tails): the next pass starts a fresh cycle.
    pub cycle_completed: bool,
}

/// Incremental scrubber for one engine. Holds only cursors (the last
/// paths verified), so it survives files appearing and disappearing under
/// compaction between passes.
#[derive(Debug, Default)]
pub struct Scrubber {
    /// Resume segment verification after this path; `None` = start of a
    /// cycle.
    cursor: Option<PathBuf>,
    /// Resume frozen-WAL verification after this path — set when the
    /// segment list was finished but the byte budget ran out mid-WAL, so
    /// a busy node's large frozen WAL cannot turn one pass into an
    /// unbounded I/O burst.
    wal_cursor: Option<PathBuf>,
}

impl Scrubber {
    /// A scrubber at the start of its first cycle.
    pub fn new() -> Self {
        Scrubber::default()
    }

    /// Runs one budgeted pass: verifies segment files (whole files; at
    /// least one per pass so progress is guaranteed) until roughly
    /// `budget_bytes` bytes are read, quarantining every file that fails.
    /// When the pass reaches the end of the list it continues into the
    /// frozen WAL segments under the same budget, and reports the cycle
    /// complete once those are verified too.
    pub fn run(&mut self, engine: &TsmEngine, budget_bytes: u64) -> Result<ScrubOutcome> {
        let mut targets = engine.scrub_targets();
        targets.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = ScrubOutcome::default();

        let start = match &self.cursor {
            Some(c) => targets.partition_point(|(p, _, _)| p <= c),
            None => 0,
        };
        let mut reached_end = true;
        for (path, _, _) in &targets[start..] {
            match self.verify_one(engine, path, &mut out) {
                Ok(()) => {}
                // Compaction may have deleted the file after the snapshot.
                Err(Error::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            self.cursor = Some(path.clone());
            if out.scrubbed_bytes >= budget_bytes {
                reached_end = targets[start..].last().map(|(p, _, _)| p) == Some(path);
                break;
            }
        }

        if reached_end {
            // End of the segment list: verify the frozen WAL tails under
            // the same byte budget (resuming where the last pass left
            // off), then rewind for the next cycle.
            let mut paths = engine.wal_frozen_paths();
            paths.sort();
            let wstart = match &self.wal_cursor {
                Some(c) => paths.partition_point(|p| p <= c),
                None => 0,
            };
            let mut verified_to_end = true;
            for path in &paths[wstart..] {
                match engine.verify_wal_file(path) {
                    Ok((bytes, corrupt_at)) => {
                        out.scrubbed_bytes += bytes;
                        engine.record_scrubbed(bytes);
                        if let Some(off) = corrupt_at {
                            out.corrupt_frames += 1;
                            engine.record_corrupt_frames(1);
                            eprintln!(
                                "lms-tsm: warning: scrub found a CRC-failed WAL frame at \
                                 {}:{off}; the records are already applied in memory, \
                                 recovery will truncate here after a crash",
                                path.display()
                            );
                        }
                    }
                    Err(Error::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
                self.wal_cursor = Some(path.clone());
                if out.scrubbed_bytes >= budget_bytes {
                    verified_to_end = paths.last() == Some(path);
                    break;
                }
            }
            if verified_to_end {
                out.cycle_completed = true;
                self.cursor = None;
                self.wal_cursor = None;
            }
        }
        Ok(out)
    }

    /// Verifies one sealed segment file; quarantines it on any damage.
    fn verify_one(
        &mut self,
        engine: &TsmEngine,
        path: &Path,
        out: &mut ScrubOutcome,
    ) -> Result<()> {
        let scan = match segment::verify_segment(path) {
            Ok(scan) => scan,
            Err(Error::Invalid(_)) => {
                // Destroyed magic: the whole file is unreadable.
                out.corrupt_frames += 1;
                engine.record_corrupt_frames(1);
                out.quarantined.push(engine.quarantine_segment(path, &[0])?);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        out.scrubbed_bytes += scan.bytes_scanned;
        out.files_verified += 1;
        engine.record_scrubbed(scan.bytes_scanned);
        if scan.is_clean() {
            return Ok(());
        }
        // Sealed segments are immutable: a torn tail here is corruption
        // just like a failed CRC (segment writes are tmp+fsync+rename, so
        // a registered file can never be legitimately half-written).
        out.corrupt_frames += scan.corrupt_frames.max(1);
        engine.record_corrupt_frames(scan.corrupt_frames.max(1));
        let offsets = if scan.corrupt_offsets.is_empty() {
            vec![scan.bytes_scanned - scan.torn_bytes]
        } else {
            scan.corrupt_offsets.clone()
        };
        out.quarantined.push(engine.quarantine_segment(path, &offsets)?);
        Ok(())
    }
}

/// Test hook: seeded bit-flip corruption. Picks one sealed segment file
/// under `dir` and flips one bit inside its *first frame's payload* —
/// guaranteed to fail that frame's CRC while leaving the framing intact,
/// so the corruption class is deterministic across seeds. Returns the
/// file and byte offset hit, or `None` when `dir` holds no segment file
/// large enough.
pub fn inject_bit_flip(dir: &Path, rng: &mut XorShift64) -> Option<(PathBuf, u64)> {
    let files = list_segment_files(dir);
    if files.is_empty() {
        return None;
    }
    let path = files[rng.below(files.len() as u64) as usize].clone();
    let mut bytes = std::fs::read(&path).ok()?;
    // [magic 8][len u32][crc u32][payload...]
    if bytes.len() < 17 {
        return None;
    }
    let payload_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    if payload_len == 0 || 16 + payload_len > bytes.len() {
        return None;
    }
    let off = 16 + rng.below(payload_len as u64) as usize;
    bytes[off] ^= 1u8 << rng.below(8);
    std::fs::write(&path, &bytes).ok()?;
    Some((path, off as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::SealedBlock;
    use crate::engine::{TsmConfig, TsmEngine};
    use crate::segment::BlockEntry;
    use lms_lineproto::FieldValue;
    use std::fs;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lms-tsm-scrub-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: &Path) -> TsmConfig {
        TsmConfig { partition_ns: 1_000, ..TsmConfig::new(dir) }
    }

    fn entry(key: &str, gen: u64, ts: std::ops::Range<i64>) -> BlockEntry {
        let points: Vec<(i64, FieldValue)> =
            ts.map(|t| (t, FieldValue::Float(t as f64))).collect();
        BlockEntry {
            series_key: key.to_string(),
            measurement: "m".to_string(),
            tags: Vec::new(),
            field: "v".to_string(),
            block: SealedBlock::seal(gen, &points),
        }
    }

    fn flush(engine: &TsmEngine, entries: &[BlockEntry]) {
        let mut f = engine.begin_flush().unwrap();
        f.write(entries).unwrap();
        f.commit().unwrap();
    }

    #[test]
    fn clean_files_scrub_clean() {
        let dir = tmp("clean");
        let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
        flush(&engine, &[entry("a", 0, 0..100), entry("b", 1, 1500..1600)]);
        let mut s = Scrubber::new();
        let out = s.run(&engine, u64::MAX).unwrap();
        assert_eq!(out.files_verified, 2);
        assert_eq!(out.corrupt_frames, 0);
        assert!(out.quarantined.is_empty());
        assert!(out.cycle_completed);
        assert!(out.scrubbed_bytes > 0);
        let stats = engine.stats();
        assert_eq!(stats.scrubbed_bytes, out.scrubbed_bytes);
        assert_eq!(stats.quarantined_segments, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected_and_quarantined() {
        let dir = tmp("flip");
        let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
        flush(&engine, &[entry("a", 0, 0..100)]);
        flush(&engine, &[entry("b", 1, 0..100)]);
        let mut rng = XorShift64::new(7);
        let (hit, _) = inject_bit_flip(&dir, &mut rng).expect("segments exist");

        let mut s = Scrubber::new();
        let out = s.run(&engine, u64::MAX).unwrap();
        assert_eq!(out.corrupt_frames, 1);
        assert_eq!(out.quarantined.len(), 1);
        let q = &out.quarantined[0];
        assert_eq!(q.original, hit);
        assert!(!hit.exists(), "corrupt file renamed away");
        assert!(q.quarantined.exists());
        assert!(q.quarantined.to_string_lossy().ends_with(".quarantine"));
        assert!(q.sidecar.exists());
        let sidecar = fs::read_to_string(&q.sidecar).unwrap();
        let json = lms_util::json::Json::parse(&sidecar).unwrap();
        assert_eq!(json.get("partition").unwrap().as_i64(), Some(q.partition));
        assert!(!json.get("corrupt_offsets").unwrap().as_arr().unwrap().is_empty());

        let stats = engine.stats();
        assert_eq!(stats.quarantined_segments, 1);
        assert_eq!(stats.damaged_ranges, 1);
        assert!(stats.corrupt_frames >= 1);
        let ranges = engine.damaged_ranges();
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0].partition, q.partition);

        // The surviving file scrubs clean on the next cycle.
        let out2 = s.run(&engine, u64::MAX).unwrap();
        assert_eq!(out2.corrupt_frames, 0);
        assert!(out2.quarantined.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_paces_the_cycle() {
        let dir = tmp("budget");
        let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
        for i in 0..4u64 {
            flush(&engine, &[entry("a", i, (i as i64 * 1000)..(i as i64 * 1000 + 50))]);
        }
        let mut s = Scrubber::new();
        // A 1-byte budget verifies exactly one file per pass.
        let mut passes = 0;
        loop {
            passes += 1;
            let out = s.run(&engine, 1).unwrap();
            assert!(out.files_verified <= 1);
            if out.cycle_completed {
                break;
            }
            assert!(passes < 10, "cycle must terminate");
        }
        assert_eq!(passes, 4, "one pass per file");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The byte budget bounds the frozen-WAL phase too: a pass that
    /// finishes the segment list with no budget left must not burn
    /// through a large frozen WAL in one burst, but resume it across
    /// passes via the WAL cursor.
    #[test]
    fn wal_verification_respects_the_byte_budget() {
        let dir = tmp("wal-budget");
        let mut c = cfg(&dir);
        c.wal_segment_bytes = 256; // force rotations every few appends
        let (engine, _) = TsmEngine::open(c).unwrap();
        flush(&engine, &[entry("a", 0, 0..50)]);
        for i in 0..40 {
            let batch = format!("m v={i} {i}\n").repeat(8);
            engine.append_wal(&batch, 8).unwrap();
        }
        let frozen = engine.wal_frozen_paths().len();
        assert!(frozen >= 2, "need several frozen WAL segments, got {frozen}");

        let mut s = Scrubber::new();
        let mut passes = 0;
        loop {
            passes += 1;
            // A 1-byte budget allows at most one WAL file beyond the
            // point where the budget ran out.
            let out = s.run(&engine, 1).unwrap();
            assert!(out.files_verified <= 1);
            if out.cycle_completed {
                break;
            }
            assert!(passes < 64, "cycle must terminate");
        }
        // Pass 1 covers the lone segment plus the first frozen WAL file;
        // every further pass advances the WAL cursor by exactly one.
        assert_eq!(passes, frozen, "the WAL walk must be spread across passes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn destroyed_magic_quarantines_whole_file() {
        let dir = tmp("magic");
        let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
        flush(&engine, &[entry("a", 0, 0..50)]);
        let path = list_segment_files(&dir).pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let mut s = Scrubber::new();
        let out = s.run(&engine, u64::MAX).unwrap();
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(engine.segment_file_count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_sealed_segment_is_treated_as_corruption() {
        let dir = tmp("torn");
        let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
        flush(&engine, &[entry("a", 0, 0..50), entry("b", 1, 0..50)]);
        let path = list_segment_files(&dir).pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let mut s = Scrubber::new();
        let out = s.run(&engine, u64::MAX).unwrap();
        assert_eq!(out.quarantined.len(), 1, "immutable files must not shrink");
        let _ = fs::remove_dir_all(&dir);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

            /// scrub(quarantine(corrupt(segments))) never loses a point
            /// that a healthy replica holds *without marking its time
            /// range damaged*: every written point is either still served
            /// bit-exact by the surviving files, or falls inside a
            /// reported damaged range — so a repair pass re-fetching
            /// exactly the damaged ranges from a healthy replica restores
            /// everything.
            #[test]
            fn quarantine_never_silently_loses_a_point(
                seed in 0u64..1u64 << 48,
                nflips in 1usize..4,
                series in proptest::collection::vec((0u8..4, 0i64..8000, 1u16..60), 1..6),
            ) {
                let dir = tmp(&format!("prop-{seed}-{nflips}"));
                let (engine, _) = TsmEngine::open(cfg(&dir)).unwrap();
                // Healthy-replica ground truth: every (series, ts, value).
                let mut truth: Vec<(String, i64, f64)> = Vec::new();
                for (gen, &(sid, start, n)) in series.iter().enumerate() {
                    let key = format!("s{sid}");
                    let points: Vec<(i64, FieldValue)> = (start..start + n as i64)
                        .map(|t| (t, FieldValue::Float(t as f64 + sid as f64)))
                        .collect();
                    for (t, v) in &points {
                        if let FieldValue::Float(f) = v {
                            truth.push((key.clone(), *t, *f));
                        }
                    }
                    let e = BlockEntry {
                        series_key: key.clone(),
                        measurement: "m".into(),
                        tags: Vec::new(),
                        field: "v".into(),
                        block: SealedBlock::seal(gen as u64, &points),
                    };
                    flush(&engine, &[e]);
                }
                // Corrupt: seeded random byte flips anywhere in random files.
                let mut rng = XorShift64::new(seed);
                let files = list_segment_files(&dir);
                for _ in 0..nflips {
                    let path = &files[rng.below(files.len() as u64) as usize];
                    if let Ok(mut bytes) = fs::read(path) {
                        if bytes.is_empty() { continue; }
                        let off = rng.below(bytes.len() as u64) as usize;
                        bytes[off] ^= 1u8 << rng.below(8);
                        let _ = fs::write(path, &bytes);
                    }
                }
                // Scrub until the cycle completes (quarantining as it goes).
                let mut s = Scrubber::new();
                loop {
                    if s.run(&engine, u64::MAX).unwrap().cycle_completed { break; }
                }
                // Survivors: decode every remaining registered file.
                let mut surviving: std::collections::HashSet<(String, i64, u64)> =
                    std::collections::HashSet::new();
                for (path, _, _) in engine.scrub_targets() {
                    for e in segment::scan_segment(&path).unwrap().entries {
                        for (t, v) in e.block.decode() {
                            if let FieldValue::Float(f) = v {
                                surviving.insert((e.series_key.clone(), t, f.to_bits()));
                            }
                        }
                    }
                }
                let damaged = engine.damaged_ranges();
                for (key, t, v) in &truth {
                    let held = surviving.contains(&(key.clone(), *t, v.to_bits()));
                    let covered = damaged.iter().any(|d| d.start_ns <= *t && *t < d.end_ns);
                    prop_assert!(
                        held || covered,
                        "point ({key}, {t}) lost without a damaged-range mark"
                    );
                }
                let _ = fs::remove_dir_all(&dir);
            }
        }
    }
}
