//! `lms-tsm`: the persistent time-series storage engine.
//!
//! Until this crate, `lms-influx` was memory-only: a restart lost every
//! point. `lms-tsm` adds an LSM-flavored persistence layer beneath the
//! in-memory index, sized for the monitoring workload (append-mostly,
//! time-ordered, per-series reads):
//!
//! * **Durability** — every acknowledged write batch lands in a CRC-framed
//!   [write-ahead log](wal) before the write call returns. Crash recovery
//!   replays the log; torn tails are detected by CRC and truncated, so the
//!   recovered state is exactly the acknowledged prefix.
//! * **Compression** — when a series' mutable head is flushed it is sealed
//!   into immutable [blocks](block): delta-of-delta varint timestamps,
//!   Gorilla-style XOR floats, dictionary-encoded strings (see [`encode`]).
//!   Regular scrapes compress well over 4x against the in-memory
//!   representation.
//! * **Bounded space** — sealed blocks live in time-partitioned
//!   [segment files](segment); retention deletes whole expired files
//!   without scanning, and background [compaction](engine) merges
//!   accumulated flush files and drops overwritten point versions.
//!
//! The crate is deliberately index-agnostic: it stores and recovers
//! `(series identity, sealed block)` pairs and WAL batches. The database
//! layer in `lms-influx` owns series semantics — which points are visible,
//! how overlapping versions resolve (last-write-wins by seal generation,
//! mutable head on top) — and drives the engine's flush/compaction
//! sessions from a background worker.

pub mod bits;
pub mod block;
pub mod encode;
pub mod engine;
pub mod scrub;
pub mod segment;
pub mod wal;

pub use block::{BlockSummary, SealedBlock};
pub use engine::{
    DamagedRange, FlushSession, QuarantineReport, Recovered, RewriteSession, TsmConfig, TsmEngine,
    TsmStats,
};
pub use scrub::{ScrubConfig, ScrubOutcome, Scrubber};
pub use segment::{BlockEntry, SegmentScan};
pub use wal::{Wal, WalConfig, WalRecord, WalRecovery};
