//! Bit-granular I/O for the Gorilla-style float codec.
//!
//! The XOR float encoding emits values that are not byte-aligned (a control
//! bit, 5-bit leading-zero counts, 6-bit significand lengths, and raw
//! significand bits). [`BitWriter`] packs bits MSB-first into a byte
//! vector; [`BitReader`] consumes them in the same order. Both are
//! deliberately minimal — no seeking, no error recovery — because block
//! payloads are always read end-to-end and guarded by the segment frame
//! CRC one layer up.

/// Packs bits MSB-first into a growable byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the final byte of `buf` (0 when byte-aligned).
    used: u8,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the lowest `n` bits of `value`, most significant first.
    pub fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        let mut left = n;
        while left > 0 {
            if self.used == 0 {
                self.buf.push(0);
            }
            let free = 8 - self.used;
            let take = free.min(left);
            let shift = left - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
            let idx = self.buf.len() - 1;
            self.buf[idx] |= chunk << (free - take);
            self.used = (self.used + take) % 8;
            left -= take;
        }
    }

    /// Writes one bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Finishes writing and returns the packed bytes (final byte
    /// zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// A reader over `buf` starting at bit 0.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Reads `n` bits into the low bits of a `u64`. Returns `None` when the
    /// buffer is exhausted (possible only on corrupt input — intact blocks
    /// are read exactly to their encoded value count).
    pub fn read_bits(&mut self, n: u8) -> Option<u64> {
        debug_assert!(n <= 64);
        if self.pos + n as usize > self.buf.len() * 8 {
            return None;
        }
        let mut out = 0u64;
        let mut left = n;
        while left > 0 {
            let byte = self.buf[self.pos / 8];
            let bit_off = (self.pos % 8) as u8;
            let avail = 8 - bit_off;
            let take = avail.min(left);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.pos += take as usize;
            left -= take;
        }
        Some(out)
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_unaligned_widths() {
        let mut w = BitWriter::new();
        let fields: &[(u64, u8)] = &[
            (1, 1),
            (0b10110, 5),
            (0x3F, 6),
            (u64::MAX, 64),
            (0, 3),
            (0xDEADBEEF, 32),
            (1, 1),
        ];
        for &(v, n) in fields {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in fields {
            assert_eq!(r.read_bits(n), Some(v), "width {n}");
        }
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        // Padding bits of the final byte are readable ...
        assert!(r.read_bits(5).is_some());
        // ... but reading past the buffer is not.
        assert_eq!(r.read_bits(1), None);
    }
}
