//! Time-partitioned segment files: the durable home of sealed blocks.
//!
//! A segment file holds the sealed blocks flushed (or compacted) in one
//! maintenance pass for one time partition. Layout:
//!
//! ```text
//! [magic: b"LMSTSM1\n"]
//! repeated frames: [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! Each frame payload is one [`BlockEntry`] — enough metadata to rebuild
//! the owning series in the in-memory index without consulting any other
//! file, followed by the compressed block bytes:
//!
//! ```text
//! [gen: u64][min_ts: i64][max_ts: i64][count: u32]
//! [key_len: u16][series_key][meas_len: u16][measurement]
//! [ntags: u16] ntags * ([klen: u16][key][vlen: u16][value])
//! [field_len: u16][field]
//! [block_len: u32][compressed block bytes]
//! ```
//!
//! Segments are written to a `.tmp` sibling, fsynced, then atomically
//! renamed into place — readers never observe a half-written `.tsm` file,
//! and stray `.tmp` files from a crash are deleted on open. Reads are
//! still prefix-safe (stop at the first corrupt frame) as defense in
//! depth against storage-level corruption.

use crate::block::SealedBlock;
use lms_util::hash::crc32;
use lms_util::{Error, Result};
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::Path;

/// File magic: identifies format + version.
pub const MAGIC: &[u8; 8] = b"LMSTSM1\n";

const HEADER_LEN: usize = 8;
const MAX_PAYLOAD: usize = 256 * 1024 * 1024;

/// One sealed block plus the series identity it belongs to.
#[derive(Debug, Clone)]
pub struct BlockEntry {
    /// The series key exactly as used by the database shard maps.
    pub series_key: String,
    /// Measurement name.
    pub measurement: String,
    /// Sorted tag pairs.
    pub tags: Vec<(String, String)>,
    /// Field name within the series.
    pub field: String,
    /// The compressed block.
    pub block: SealedBlock,
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "identifier too long for segment file");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn encode_entry(entry: &BlockEntry, out: &mut Vec<u8>) {
    let payload_start = out.len() + HEADER_LEN;
    out.extend_from_slice(&[0; HEADER_LEN]); // length + CRC back-patched
    let b = &entry.block;
    out.extend_from_slice(&b.gen.to_le_bytes());
    out.extend_from_slice(&b.min_ts.to_le_bytes());
    out.extend_from_slice(&b.max_ts.to_le_bytes());
    out.extend_from_slice(&b.count.to_le_bytes());
    put_str16(out, &entry.series_key);
    put_str16(out, &entry.measurement);
    assert!(entry.tags.len() <= u16::MAX as usize);
    out.extend_from_slice(&(entry.tags.len() as u16).to_le_bytes());
    for (k, v) in &entry.tags {
        put_str16(out, k);
        put_str16(out, v);
    }
    put_str16(out, &entry.field);
    out.extend_from_slice(&(b.bytes().len() as u32).to_le_bytes());
    out.extend_from_slice(b.bytes());
    let payload_len = out.len() - payload_start;
    assert!(payload_len <= MAX_PAYLOAD, "block entry too large for one frame");
    let crc = crc32(&out[payload_start..]);
    out[payload_start - HEADER_LEN..payload_start - 4]
        .copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[payload_start - 4..payload_start].copy_from_slice(&crc.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.off.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.off..end];
        self.off = end;
        Some(s)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).ok().map(str::to_string)
    }
}

fn decode_entry(payload: &[u8]) -> Option<BlockEntry> {
    let mut c = Cursor { buf: payload, off: 0 };
    let gen = c.u64()?;
    let min_ts = c.i64()?;
    let max_ts = c.i64()?;
    let count = c.u32()?;
    let series_key = c.str16()?;
    let measurement = c.str16()?;
    let ntags = c.u16()? as usize;
    let mut tags = Vec::with_capacity(ntags.min(64));
    for _ in 0..ntags {
        tags.push((c.str16()?, c.str16()?));
    }
    let field = c.str16()?;
    let block_len = c.u32()? as usize;
    let bytes = c.take(block_len)?.to_vec();
    if c.off != payload.len() {
        return None; // trailing garbage inside a CRC-clean frame
    }
    Some(BlockEntry {
        series_key,
        measurement,
        tags,
        field,
        block: SealedBlock::from_parts(gen, min_ts, max_ts, count, bytes),
    })
}

/// Writes `entries` to `path` atomically (tmp + fsync + rename). Returns the
/// file size in bytes.
///
/// `fail_after_bytes` is a fault-injection hook for crash tests: when set,
/// the write stops (with an error) after roughly that many bytes reach the
/// temp file, simulating a crash mid-flush — the `.tsm` file never appears.
pub fn write_segment(
    path: &Path,
    entries: &[BlockEntry],
    fail_after_bytes: Option<u64>,
) -> Result<u64> {
    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(MAGIC);
    for e in entries {
        encode_entry(e, &mut buf);
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
        if let Some(limit) = fail_after_bytes {
            let n = (limit as usize).min(buf.len());
            f.write_all(&buf[..n])?;
            f.sync_data()?;
            return Err(Error::invalid(format!(
                "fault injection: segment write aborted after {n} bytes"
            )));
        }
        f.write_all(&buf)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    Ok(buf.len() as u64)
}

/// Reads every intact entry from a segment file. A bad magic is an error
/// (the file is not ours); torn or corrupt frames end the scan early
/// rather than failing, so one bad sector loses one block, not the file.
pub fn read_segment(path: &Path) -> Result<Vec<BlockEntry>> {
    let buf = fs::read(path)?;
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(Error::invalid(format!("{}: bad segment magic", path.display())));
    }
    let mut entries = Vec::new();
    let mut off = MAGIC.len();
    loop {
        let rest = &buf[off..];
        if rest.len() < HEADER_LEN {
            return Ok(entries);
        }
        let payload_len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if payload_len > MAX_PAYLOAD || rest.len() < HEADER_LEN + payload_len {
            return Ok(entries);
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + payload_len];
        if crc32(payload) != crc {
            return Ok(entries);
        }
        let Some(entry) = decode_entry(payload) else {
            return Ok(entries);
        };
        entries.push(entry);
        off += HEADER_LEN + payload_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_lineproto::FieldValue;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lms-tsm-seg-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(key: &str, field: &str, gen: u64, ts: std::ops::Range<i64>) -> BlockEntry {
        let points: Vec<(i64, FieldValue)> =
            ts.map(|t| (t, FieldValue::Float(t as f64 * 0.5))).collect();
        BlockEntry {
            series_key: key.to_string(),
            measurement: "cpu".to_string(),
            tags: vec![("host".to_string(), "n01".to_string())],
            field: field.to_string(),
            block: SealedBlock::seal(gen, &points),
        }
    }

    #[test]
    fn round_trip() {
        let dir = tmp("rt");
        let path = dir.join("seg-0-0000000000000000.tsm");
        let entries =
            vec![entry("cpu,host=n01", "usage", 1, 0..100), entry("cpu,host=n01", "temp", 2, 50..80)];
        let bytes = write_segment(&path, &entries, None).unwrap();
        assert_eq!(bytes, fs::metadata(&path).unwrap().len());
        let back = read_segment(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].series_key, "cpu,host=n01");
        assert_eq!(back[0].tags, entries[0].tags);
        assert_eq!(back[0].block.gen, 1);
        assert_eq!(back[0].block.decode(), entries[0].block.decode());
        assert_eq!(back[1].field, "temp");
        assert_eq!(back[1].block.decode().len(), 30);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_injection_leaves_no_visible_segment() {
        let dir = tmp("fault");
        let path = dir.join("seg-0-0000000000000001.tsm");
        let err = write_segment(&path, &[entry("k", "f", 0, 0..10)], Some(12));
        assert!(err.is_err());
        assert!(!path.exists(), "aborted write must not surface a .tsm file");
        assert!(path.with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_ends_scan_keeping_prefix() {
        let dir = tmp("corrupt");
        let path = dir.join("seg-0-0000000000000002.tsm");
        let entries = vec![entry("a", "f", 0, 0..10), entry("b", "f", 1, 0..10)];
        write_segment(&path, &entries, None).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 4] ^= 0xFF; // clobber the last entry's block bytes
        fs::write(&path, &bytes).unwrap();
        let back = read_segment(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].series_key, "a");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_an_error() {
        let dir = tmp("magic");
        let path = dir.join("seg-0-0000000000000003.tsm");
        fs::write(&path, b"not a segment").unwrap();
        assert!(read_segment(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
