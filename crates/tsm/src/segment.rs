//! Time-partitioned segment files: the durable home of sealed blocks.
//!
//! A segment file holds the sealed blocks flushed (or compacted) in one
//! maintenance pass for one time partition. Layout:
//!
//! ```text
//! [magic: b"LMSTSM1\n"]
//! repeated frames: [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! Each frame payload is one [`BlockEntry`] — enough metadata to rebuild
//! the owning series in the in-memory index without consulting any other
//! file, followed by the compressed block bytes:
//!
//! ```text
//! [gen: u64][min_ts: i64][max_ts: i64][count: u32]
//! [key_len: u16][series_key][meas_len: u16][measurement]
//! [ntags: u16] ntags * ([klen: u16][key][vlen: u16][value])
//! [field_len: u16][field]
//! [block_len: u32][compressed block bytes]
//! (V2 only) [summary: see below]
//! ```
//!
//! Format V2 appends the block's pre-aggregated summary after the block
//! bytes, so queries can answer `mean`/`min`/`max`/`sum`/`count` over a
//! fully-covered block without ever decoding it:
//!
//! ```text
//! [present: u8]                      0 = no summary (corrupt legacy block)
//! [numeric: u8][sum: f64][sum_sq: f64][min: f64][max: f64]
//! [first: tagged value][last: tagged value]
//! ```
//!
//! Tagged values reuse the mixed-block tags: `0` float (8-byte LE bits),
//! `1` integer (zigzag varint), `2` bool (1 byte), `3` text (varint
//! length + UTF-8 bytes). V1 files (magic `LMSTSM1\n`) remain readable:
//! their blocks get summaries recomputed by a one-time decode at load.
//!
//! Segments are written to a `.tmp` sibling, fsynced, then atomically
//! renamed into place — readers never observe a half-written `.tsm` file,
//! and stray `.tmp` files from a crash are deleted on open. Reads are
//! corruption-tolerant: a frame whose CRC fails is skipped and counted
//! (the frame length lets the scan resynchronize), so one bad sector
//! loses one block, not the rest of the file; only a torn tail — where
//! the framing itself is unreadable — ends the scan.

use crate::block::{BlockSummary, SealedBlock};
use crate::encode::{get_uvarint, put_uvarint, unzigzag, zigzag};
use lms_lineproto::FieldValue;
use lms_util::hash::crc32;
use lms_util::{Error, Result};
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Legacy file magic (V1): entries carry no block summaries.
pub const MAGIC_V1: &[u8; 8] = b"LMSTSM1\n";

/// File magic: identifies format + version.
pub const MAGIC: &[u8; 8] = b"LMSTSM2\n";

const HEADER_LEN: usize = 8;
const MAX_PAYLOAD: usize = 256 * 1024 * 1024;

/// One sealed block plus the series identity it belongs to.
#[derive(Debug, Clone)]
pub struct BlockEntry {
    /// The series key exactly as used by the database shard maps.
    pub series_key: String,
    /// Measurement name.
    pub measurement: String,
    /// Sorted tag pairs.
    pub tags: Vec<(String, String)>,
    /// Field name within the series.
    pub field: String,
    /// The compressed block.
    pub block: SealedBlock,
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "identifier too long for segment file");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &FieldValue) {
    match v {
        FieldValue::Float(f) => {
            out.push(0);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        FieldValue::Integer(n) => {
            out.push(1);
            put_uvarint(out, zigzag(*n));
        }
        FieldValue::Boolean(b) => {
            out.push(2);
            out.push(*b as u8);
        }
        FieldValue::Text(s) => {
            out.push(3);
            put_uvarint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn put_summary(out: &mut Vec<u8>, summary: Option<&BlockSummary>) {
    let Some(s) = summary else {
        out.push(0);
        return;
    };
    out.push(1);
    out.push(s.numeric as u8);
    for x in [s.sum, s.sum_sq, s.min, s.max] {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    put_value(out, &s.first);
    put_value(out, &s.last);
}

fn encode_entry(entry: &BlockEntry, out: &mut Vec<u8>, with_summary: bool) {
    let payload_start = out.len() + HEADER_LEN;
    out.extend_from_slice(&[0; HEADER_LEN]); // length + CRC back-patched
    let b = &entry.block;
    out.extend_from_slice(&b.gen.to_le_bytes());
    out.extend_from_slice(&b.min_ts.to_le_bytes());
    out.extend_from_slice(&b.max_ts.to_le_bytes());
    out.extend_from_slice(&b.count.to_le_bytes());
    put_str16(out, &entry.series_key);
    put_str16(out, &entry.measurement);
    assert!(entry.tags.len() <= u16::MAX as usize);
    out.extend_from_slice(&(entry.tags.len() as u16).to_le_bytes());
    for (k, v) in &entry.tags {
        put_str16(out, k);
        put_str16(out, v);
    }
    put_str16(out, &entry.field);
    out.extend_from_slice(&(b.bytes().len() as u32).to_le_bytes());
    out.extend_from_slice(b.bytes());
    if with_summary {
        put_summary(out, b.summary());
    }
    let payload_len = out.len() - payload_start;
    assert!(payload_len <= MAX_PAYLOAD, "block entry too large for one frame");
    let crc = crc32(&out[payload_start..]);
    out[payload_start - HEADER_LEN..payload_start - 4]
        .copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[payload_start - 4..payload_start].copy_from_slice(&crc.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.off.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.off..end];
        self.off = end;
        Some(s)
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str16(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        std::str::from_utf8(self.take(len)?).ok().map(str::to_string)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(u64::from_le_bytes(self.take(8)?.try_into().unwrap())))
    }

    fn uvarint(&mut self) -> Option<u64> {
        let v = get_uvarint(self.buf, &mut self.off)?;
        Some(v)
    }

    fn value(&mut self) -> Option<FieldValue> {
        Some(match self.u8()? {
            0 => FieldValue::Float(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            1 => FieldValue::Integer(unzigzag(self.uvarint()?)),
            2 => FieldValue::Boolean(self.u8()? != 0),
            3 => {
                let len = self.uvarint()? as usize;
                FieldValue::Text(std::str::from_utf8(self.take(len)?).ok()?.to_string())
            }
            _ => return None,
        })
    }

    fn summary(&mut self) -> Option<Option<BlockSummary>> {
        match self.u8()? {
            0 => Some(None),
            1 => {
                let numeric = self.u8()? != 0;
                let sum = self.f64()?;
                let sum_sq = self.f64()?;
                let min = self.f64()?;
                let max = self.f64()?;
                let first = self.value()?;
                let last = self.value()?;
                Some(Some(BlockSummary { numeric, sum, sum_sq, min, max, first, last }))
            }
            _ => None,
        }
    }
}

fn decode_entry(payload: &[u8], with_summary: bool) -> Option<BlockEntry> {
    let mut c = Cursor { buf: payload, off: 0 };
    let gen = c.u64()?;
    let min_ts = c.i64()?;
    let max_ts = c.i64()?;
    let count = c.u32()?;
    let series_key = c.str16()?;
    let measurement = c.str16()?;
    let ntags = c.u16()? as usize;
    let mut tags = Vec::with_capacity(ntags.min(64));
    for _ in 0..ntags {
        tags.push((c.str16()?, c.str16()?));
    }
    let field = c.str16()?;
    let block_len = c.u32()? as usize;
    let bytes = c.take(block_len)?.to_vec();
    let block = if with_summary {
        let summary = c.summary()?;
        SealedBlock::from_parts_with_summary(gen, min_ts, max_ts, count, bytes, summary)
    } else {
        // Legacy V1 entry: recompute the summary with one decode pass.
        SealedBlock::from_parts(gen, min_ts, max_ts, count, bytes)
    };
    if c.off != payload.len() {
        return None; // trailing garbage inside a CRC-clean frame
    }
    Some(BlockEntry { series_key, measurement, tags, field, block })
}

/// Writes `entries` to `path` atomically (tmp + fsync + rename). Returns the
/// file size in bytes.
///
/// `fail_after_bytes` is a fault-injection hook for crash tests: when set,
/// the write stops (with an error) after roughly that many bytes reach the
/// temp file, simulating a crash mid-flush — the `.tsm` file never appears.
pub fn write_segment(
    path: &Path,
    entries: &[BlockEntry],
    fail_after_bytes: Option<u64>,
) -> Result<u64> {
    write_segment_impl(path, entries, fail_after_bytes, true)
}

/// Writes a legacy V1 segment (no summaries). Kept for backward-compat
/// tests: every reader must keep accepting files older deployments wrote.
pub fn write_segment_v1(path: &Path, entries: &[BlockEntry]) -> Result<u64> {
    write_segment_impl(path, entries, None, false)
}

fn write_segment_impl(
    path: &Path,
    entries: &[BlockEntry],
    fail_after_bytes: Option<u64>,
    with_summary: bool,
) -> Result<u64> {
    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(if with_summary { MAGIC } else { MAGIC_V1 });
    for e in entries {
        encode_entry(e, &mut buf, with_summary);
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
        if let Some(limit) = fail_after_bytes {
            let n = (limit as usize).min(buf.len());
            f.write_all(&buf[..n])?;
            f.sync_data()?;
            return Err(Error::invalid(format!(
                "fault injection: segment write aborted after {n} bytes"
            )));
        }
        f.write_all(&buf)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    Ok(buf.len() as u64)
}

/// Result of scanning one segment file frame by frame.
///
/// A frame whose length header is plausible but whose CRC (or decode)
/// fails is *skipped and counted* — the scan resynchronizes at the next
/// frame boundary, so one bad sector loses one block, not the file's
/// suffix. A short frame or an implausible length means the framing
/// itself is gone; the remainder is reported as a torn tail and the scan
/// stops.
#[derive(Debug, Default)]
pub struct SegmentScan {
    /// Every entry whose frame passed CRC and decoded cleanly.
    pub entries: Vec<BlockEntry>,
    /// Frames with a plausible length but failed CRC or decode.
    pub corrupt_frames: u64,
    /// File offset of each corrupt frame header.
    pub corrupt_offsets: Vec<u64>,
    /// Bytes of unreadable tail (short frame / implausible length).
    pub torn_bytes: u64,
    /// Total file bytes examined (the whole file).
    pub bytes_scanned: u64,
}

impl SegmentScan {
    /// True when every frame verified clean end to end.
    pub fn is_clean(&self) -> bool {
        self.corrupt_frames == 0 && self.torn_bytes == 0
    }
}

fn scan_segment_impl(path: &Path, decode: bool) -> Result<SegmentScan> {
    let buf = fs::read(path)?;
    let with_summary = if buf.len() >= MAGIC.len() && &buf[..MAGIC.len()] == MAGIC {
        true
    } else if buf.len() >= MAGIC_V1.len() && &buf[..MAGIC_V1.len()] == MAGIC_V1 {
        false
    } else {
        return Err(Error::invalid(format!("{}: bad segment magic", path.display())));
    };
    let mut scan = SegmentScan { bytes_scanned: buf.len() as u64, ..SegmentScan::default() };
    let mut off = MAGIC.len();
    loop {
        let rest = &buf[off..];
        if rest.len() < HEADER_LEN {
            scan.torn_bytes = rest.len() as u64;
            return Ok(scan);
        }
        let payload_len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if payload_len > MAX_PAYLOAD || rest.len() < HEADER_LEN + payload_len {
            scan.torn_bytes = rest.len() as u64;
            return Ok(scan);
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + payload_len];
        if crc32(payload) != crc {
            scan.corrupt_frames += 1;
            scan.corrupt_offsets.push(off as u64);
        } else if decode {
            match decode_entry(payload, with_summary) {
                Some(entry) => scan.entries.push(entry),
                None => {
                    scan.corrupt_frames += 1;
                    scan.corrupt_offsets.push(off as u64);
                }
            }
        }
        off += HEADER_LEN + payload_len;
    }
}

/// Scans a segment file, decoding every intact entry and counting what
/// could not be read. A bad magic is an error (the file is not ours).
pub fn scan_segment(path: &Path) -> Result<SegmentScan> {
    scan_segment_impl(path, true)
}

/// CRC-verifies every frame of a segment file without decoding blocks —
/// the cheap integrity pass the scrubber runs. Counters are filled the
/// same as [`scan_segment`]; `entries` stays empty.
pub fn verify_segment(path: &Path) -> Result<SegmentScan> {
    scan_segment_impl(path, false)
}

/// Reads every intact entry from a segment file, skipping (silently, at
/// this API level) corrupt frames — callers who need the corruption
/// counters use [`scan_segment`].
pub fn read_segment(path: &Path) -> Result<Vec<BlockEntry>> {
    Ok(scan_segment(path)?.entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lms_lineproto::FieldValue;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lms-tsm-seg-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(key: &str, field: &str, gen: u64, ts: std::ops::Range<i64>) -> BlockEntry {
        let points: Vec<(i64, FieldValue)> =
            ts.map(|t| (t, FieldValue::Float(t as f64 * 0.5))).collect();
        BlockEntry {
            series_key: key.to_string(),
            measurement: "cpu".to_string(),
            tags: vec![("host".to_string(), "n01".to_string())],
            field: field.to_string(),
            block: SealedBlock::seal(gen, &points),
        }
    }

    #[test]
    fn round_trip() {
        let dir = tmp("rt");
        let path = dir.join("seg-0-0000000000000000.tsm");
        let entries =
            vec![entry("cpu,host=n01", "usage", 1, 0..100), entry("cpu,host=n01", "temp", 2, 50..80)];
        let bytes = write_segment(&path, &entries, None).unwrap();
        assert_eq!(bytes, fs::metadata(&path).unwrap().len());
        let back = read_segment(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].series_key, "cpu,host=n01");
        assert_eq!(back[0].tags, entries[0].tags);
        assert_eq!(back[0].block.gen, 1);
        assert_eq!(back[0].block.decode(), entries[0].block.decode());
        assert_eq!(back[1].field, "temp");
        assert_eq!(back[1].block.decode().len(), 30);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_injection_leaves_no_visible_segment() {
        let dir = tmp("fault");
        let path = dir.join("seg-0-0000000000000001.tsm");
        let err = write_segment(&path, &[entry("k", "f", 0, 0..10)], Some(12));
        assert!(err.is_err());
        assert!(!path.exists(), "aborted write must not surface a .tsm file");
        assert!(path.with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_is_skipped_and_counted() {
        let dir = tmp("corrupt");
        let path = dir.join("seg-0-0000000000000002.tsm");
        let entries = vec![entry("a", "f", 0, 0..10), entry("b", "f", 1, 0..10)];
        write_segment(&path, &entries, None).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 4] ^= 0xFF; // clobber the last entry's block bytes
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.entries[0].series_key, "a");
        assert_eq!(scan.corrupt_frames, 1);
        assert_eq!(scan.corrupt_offsets.len(), 1);
        assert_eq!(scan.torn_bytes, 0);
        assert!(!scan.is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_frame_keeps_the_suffix() {
        let dir = tmp("resync");
        let path = dir.join("seg-0-0000000000000007.tsm");
        let entries =
            vec![entry("a", "f", 0, 0..10), entry("b", "f", 1, 0..10), entry("c", "f", 2, 0..10)];
        write_segment(&path, &entries, None).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Locate the middle frame and flip a payload byte inside it.
        let first_len =
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize + HEADER_LEN;
        let mid = 8 + first_len + HEADER_LEN + 4;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.corrupt_frames, 1);
        let keys: Vec<&str> = scan.entries.iter().map(|e| e.series_key.as_str()).collect();
        assert_eq!(keys, ["a", "c"], "scan must resynchronize past the bad frame");
        // verify_segment sees the same corruption without decoding.
        let v = verify_segment(&path).unwrap();
        assert_eq!(v.corrupt_frames, 1);
        assert_eq!(v.corrupt_offsets, scan.corrupt_offsets);
        assert!(v.entries.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_torn_not_corrupt() {
        let dir = tmp("torn");
        let path = dir.join("seg-0-0000000000000008.tsm");
        let entries = vec![entry("a", "f", 0, 0..10), entry("b", "f", 1, 0..10)];
        write_segment(&path, &entries, None).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.corrupt_frames, 0);
        assert!(scan.torn_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_round_trips_summaries() {
        let dir = tmp("v2sum");
        let path = dir.join("seg-0-0000000000000004.tsm");
        let entries = vec![entry("cpu,host=n01", "usage", 1, 0..100)];
        write_segment(&path, &entries, None).unwrap();
        let back = read_segment(&path).unwrap();
        let s = back[0].block.summary().expect("V2 carries a summary");
        assert_eq!(s, entries[0].block.summary().unwrap());
        assert!(s.numeric);
        // Values are t * 0.5 for t in 0..100.
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 49.5);
        assert_eq!(s.sum, (0..100).map(|t| t as f64 * 0.5).sum::<f64>());
        assert_eq!(s.first, FieldValue::Float(0.0));
        assert_eq!(s.last, FieldValue::Float(49.5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_segments_still_open_and_get_summaries() {
        let dir = tmp("v1compat");
        let path = dir.join("seg-0-0000000000000005.tsm");
        let entries =
            vec![entry("cpu,host=n01", "usage", 1, 0..50), entry("cpu,host=n01", "temp", 2, 5..25)];
        write_segment_v1(&path, &entries).unwrap();
        assert_eq!(&fs::read(&path).unwrap()[..8], MAGIC_V1);
        let back = read_segment(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].block.decode(), entries[0].block.decode());
        // Summaries are recomputed at load, so V1 files benefit from
        // pruning too.
        let s = back[1].block.summary().expect("recomputed at load");
        assert_eq!(s, entries[1].block.summary().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn text_and_mixed_summaries_survive_the_footer() {
        let dir = tmp("textsum");
        let path = dir.join("seg-0-0000000000000006.tsm");
        let points = vec![
            (10, FieldValue::Text("job start".into())),
            (20, FieldValue::Integer(7)),
            (30, FieldValue::Boolean(true)),
        ];
        let e = BlockEntry {
            series_key: "events,jobid=9".into(),
            measurement: "events".into(),
            tags: vec![("jobid".into(), "9".into())],
            field: "text".into(),
            block: SealedBlock::seal(3, &points),
        };
        write_segment(&path, &[e.clone()], None).unwrap();
        let back = read_segment(&path).unwrap();
        let s = back[0].block.summary().unwrap();
        assert_eq!(s.first, FieldValue::Text("job start".into()));
        assert_eq!(s.last, FieldValue::Boolean(true));
        assert!(s.numeric); // integer + boolean are numeric-viewed
        assert_eq!(s.sum, 8.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_an_error() {
        let dir = tmp("magic");
        let path = dir.join("seg-0-0000000000000003.tsm");
        fs::write(&path, b"not a segment").unwrap();
        assert!(read_segment(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
