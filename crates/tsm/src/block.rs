//! Immutable sealed blocks: the compressed at-rest form of a column run.
//!
//! When a series' mutable head is flushed, its points are sealed into one
//! [`SealedBlock`] per field: an owned compressed byte payload (see
//! [`crate::encode`]) plus the metadata queries need to skip the block
//! without decoding it (time bounds, point count) and to resolve
//! last-write-wins across overlapping blocks (the generation number).
//!
//! Blocks are shared (`Arc`) between the in-memory column that serves
//! queries and the flush/compaction sessions that write them to segment
//! files — sealing compresses once, and the bytes are never copied again.

use crate::encode::{decode_block, encode_block};
use lms_lineproto::FieldValue;

/// Pre-aggregated statistics over one sealed block, computed at seal time
/// and persisted in the segment footer (format V2).
///
/// The fields mirror what a single streaming pass over the decoded points
/// would accumulate, so an aggregate over a fully-covered, unshadowed block
/// can consume the summary instead of decoding: `sum`/`sum_sq`/`min`/`max`
/// run over the numeric view of each value (`Float` as-is, `Integer` and
/// `Boolean` widened), while `first`/`last` keep the raw boundary values of
/// the run. Point count and time bounds already live on [`SealedBlock`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSummary {
    /// True when at least one point had a numeric view (min/max/sum valid).
    pub numeric: bool,
    /// Sum of numeric values.
    pub sum: f64,
    /// Sum of squared numeric values (for stddev recombination).
    pub sum_sq: f64,
    /// Smallest numeric value (meaningless unless `numeric`).
    pub min: f64,
    /// Largest numeric value (meaningless unless `numeric`).
    pub max: f64,
    /// Value at the block's earliest timestamp.
    pub first: FieldValue,
    /// Value at the block's latest timestamp.
    pub last: FieldValue,
}

impl BlockSummary {
    /// Computes the summary a full decode-and-accumulate pass would produce
    /// over a timestamp-ascending run. Returns `None` on an empty run.
    pub fn compute(points: &[(i64, FieldValue)]) -> Option<BlockSummary> {
        let first = points.first()?.1.clone();
        let last = points[points.len() - 1].1.clone();
        let mut s = BlockSummary {
            numeric: false,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            first,
            last,
        };
        for (_, v) in points {
            if let Some(x) = numeric_view(v) {
                s.numeric = true;
                s.sum += x;
                s.sum_sq += x * x;
                s.min = s.min.min(x);
                s.max = s.max.max(x);
            }
        }
        Some(s)
    }
}

/// The numeric view aggregates use: floats as-is, integers and booleans
/// widened. Text yields `None` (counted but excluded from numeric stats).
pub fn numeric_view(v: &FieldValue) -> Option<f64> {
    v.as_f64()
}

/// One immutable, compressed run of a field column.
#[derive(Debug, Clone)]
pub struct SealedBlock {
    /// Monotonic seal generation: among blocks holding the same timestamp,
    /// the highest generation wins (the mutable head outranks all blocks).
    pub gen: u64,
    /// Smallest timestamp in the block.
    pub min_ts: i64,
    /// Largest timestamp in the block.
    pub max_ts: i64,
    /// Number of encoded points.
    pub count: u32,
    bytes: Vec<u8>,
    /// Pre-aggregated stats; `None` only for blocks loaded from legacy V1
    /// segments whose points failed to decode (corrupt payloads).
    summary: Option<BlockSummary>,
}

impl SealedBlock {
    /// Seals a timestamp-ascending, unique-timestamp run of points.
    ///
    /// Panics on an empty run (callers seal only non-empty heads).
    pub fn seal(gen: u64, points: &[(i64, FieldValue)]) -> SealedBlock {
        assert!(!points.is_empty(), "cannot seal an empty run");
        SealedBlock {
            gen,
            min_ts: points[0].0,
            max_ts: points[points.len() - 1].0,
            count: points.len() as u32,
            bytes: encode_block(points),
            summary: BlockSummary::compute(points),
        }
    }

    /// Reconstructs a block from already-encoded bytes (segment file load).
    /// The summary is recomputed with one decode pass — used for legacy V1
    /// segments that carry no persisted summaries.
    pub fn from_parts(gen: u64, min_ts: i64, max_ts: i64, count: u32, bytes: Vec<u8>) -> Self {
        let summary = decode_block(&bytes).as_deref().and_then(BlockSummary::compute);
        SealedBlock { gen, min_ts, max_ts, count, bytes, summary }
    }

    /// Reconstructs a block with a persisted summary (segment V2 load).
    pub fn from_parts_with_summary(
        gen: u64,
        min_ts: i64,
        max_ts: i64,
        count: u32,
        bytes: Vec<u8>,
        summary: Option<BlockSummary>,
    ) -> Self {
        SealedBlock { gen, min_ts, max_ts, count, bytes, summary }
    }

    /// The pre-aggregated stats, when available.
    pub fn summary(&self) -> Option<&BlockSummary> {
        self.summary.as_ref()
    }

    /// The compressed payload.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// True when the block may contain points in `[start, end)`.
    pub fn overlaps(&self, start: i64, end: i64) -> bool {
        self.min_ts < end && self.max_ts >= start
    }

    /// Decompresses the full point run.
    ///
    /// Returns an empty vec if the payload is structurally corrupt — only
    /// reachable past the segment frame CRC, so treated as data loss rather
    /// than a panic.
    pub fn decode(&self) -> Vec<(i64, FieldValue)> {
        decode_block(&self.bytes).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ts: std::ops::Range<i64>, gen: u64) -> SealedBlock {
        let points: Vec<(i64, FieldValue)> =
            ts.map(|t| (t, FieldValue::Float(t as f64))).collect();
        SealedBlock::seal(gen, &points)
    }

    #[test]
    fn seal_records_bounds_and_count() {
        let b = block(10..20, 3);
        assert_eq!((b.gen, b.min_ts, b.max_ts, b.count), (3, 10, 19, 10));
        assert_eq!(b.decode().len(), 10);
    }

    #[test]
    fn overlap_is_inclusive_of_bounds() {
        let b = block(10..20, 0);
        assert!(b.overlaps(19, 100));
        assert!(b.overlaps(0, 11));
        assert!(b.overlaps(i64::MIN, i64::MAX));
        assert!(!b.overlaps(20, 100)); // [20, ..) excludes max_ts 19
        assert!(!b.overlaps(0, 10)); // [0, 10) excludes min_ts 10
    }

    #[test]
    fn corrupt_bytes_decode_empty() {
        let b = SealedBlock::from_parts(0, 0, 10, 5, vec![0xFF, 0xFF, 0xFF]);
        assert!(b.decode().is_empty());
    }
}
