//! Immutable sealed blocks: the compressed at-rest form of a column run.
//!
//! When a series' mutable head is flushed, its points are sealed into one
//! [`SealedBlock`] per field: an owned compressed byte payload (see
//! [`crate::encode`]) plus the metadata queries need to skip the block
//! without decoding it (time bounds, point count) and to resolve
//! last-write-wins across overlapping blocks (the generation number).
//!
//! Blocks are shared (`Arc`) between the in-memory column that serves
//! queries and the flush/compaction sessions that write them to segment
//! files — sealing compresses once, and the bytes are never copied again.

use crate::encode::{decode_block, encode_block};
use lms_lineproto::FieldValue;

/// One immutable, compressed run of a field column.
#[derive(Debug, Clone)]
pub struct SealedBlock {
    /// Monotonic seal generation: among blocks holding the same timestamp,
    /// the highest generation wins (the mutable head outranks all blocks).
    pub gen: u64,
    /// Smallest timestamp in the block.
    pub min_ts: i64,
    /// Largest timestamp in the block.
    pub max_ts: i64,
    /// Number of encoded points.
    pub count: u32,
    bytes: Vec<u8>,
}

impl SealedBlock {
    /// Seals a timestamp-ascending, unique-timestamp run of points.
    ///
    /// Panics on an empty run (callers seal only non-empty heads).
    pub fn seal(gen: u64, points: &[(i64, FieldValue)]) -> SealedBlock {
        assert!(!points.is_empty(), "cannot seal an empty run");
        SealedBlock {
            gen,
            min_ts: points[0].0,
            max_ts: points[points.len() - 1].0,
            count: points.len() as u32,
            bytes: encode_block(points),
        }
    }

    /// Reconstructs a block from already-encoded bytes (segment file load).
    pub fn from_parts(gen: u64, min_ts: i64, max_ts: i64, count: u32, bytes: Vec<u8>) -> Self {
        SealedBlock { gen, min_ts, max_ts, count, bytes }
    }

    /// The compressed payload.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// True when the block may contain points in `[start, end)`.
    pub fn overlaps(&self, start: i64, end: i64) -> bool {
        self.min_ts < end && self.max_ts >= start
    }

    /// Decompresses the full point run.
    ///
    /// Returns an empty vec if the payload is structurally corrupt — only
    /// reachable past the segment frame CRC, so treated as data loss rather
    /// than a panic.
    pub fn decode(&self) -> Vec<(i64, FieldValue)> {
        decode_block(&self.bytes).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ts: std::ops::Range<i64>, gen: u64) -> SealedBlock {
        let points: Vec<(i64, FieldValue)> =
            ts.map(|t| (t, FieldValue::Float(t as f64))).collect();
        SealedBlock::seal(gen, &points)
    }

    #[test]
    fn seal_records_bounds_and_count() {
        let b = block(10..20, 3);
        assert_eq!((b.gen, b.min_ts, b.max_ts, b.count), (3, 10, 19, 10));
        assert_eq!(b.decode().len(), 10);
    }

    #[test]
    fn overlap_is_inclusive_of_bounds() {
        let b = block(10..20, 0);
        assert!(b.overlaps(19, 100));
        assert!(b.overlaps(0, 11));
        assert!(b.overlaps(i64::MIN, i64::MAX));
        assert!(!b.overlaps(20, 100)); // [20, ..) excludes max_ts 19
        assert!(!b.overlaps(0, 10)); // [0, 10) excludes min_ts 10
    }

    #[test]
    fn corrupt_bytes_decode_empty() {
        let b = SealedBlock::from_parts(0, 0, 10, 5, vec![0xFF, 0xFF, 0xFF]);
        assert!(b.decode().is_empty());
    }
}
