//! Block encoding: delta-of-delta timestamps + per-type value compression.
//!
//! A block is one field column's run of `(timestamp, value)` points,
//! timestamp-ascending and unique. The layout is
//!
//! ```text
//! [version: u8 = 1][value kind: u8][count: varint]
//! [timestamps: zigzag-varint delta-of-delta stream]
//! [values: kind-specific payload]
//! ```
//!
//! Timestamps from live collectors arrive at a near-constant interval, so
//! their second differences are almost always zero — one byte per point,
//! usually less after the first two. Value payloads:
//!
//! | kind | encoding |
//! |---|---|
//! | float | Gorilla-style XOR: control bits + leading/length windows |
//! | integer | zigzag-varint deltas |
//! | boolean | bit-packed |
//! | text | dictionary (unique strings + varint indices) |
//! | mixed | per-value type tag + plain encoding (heterogeneous columns) |
//!
//! Decoding trusts its input only as far as the segment/WAL frame CRC
//! vouches for it: every read is bounds-checked and a short or inconsistent
//! payload yields `None` rather than a panic.

use crate::bits::{BitReader, BitWriter};
use lms_lineproto::FieldValue;

/// Block format version byte.
pub const BLOCK_VERSION: u8 = 1;

const KIND_FLOAT: u8 = 0;
const KIND_INT: u8 = 1;
const KIND_BOOL: u8 = 2;
const KIND_TEXT: u8 = 3;
const KIND_MIXED: u8 = 4;

/// Appends an LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads an LEB128 varint, advancing `pos`.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None; // over-long varint: corrupt
        }
        out |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(out);
        }
        shift += 7;
    }
}

/// Zigzag maps signed to unsigned so small magnitudes stay short varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

fn get_ivarint(buf: &[u8], pos: &mut usize) -> Option<i64> {
    get_uvarint(buf, pos).map(unzigzag)
}

/// Encodes timestamps as first value + delta-of-deltas (zigzag varints).
fn encode_timestamps(points: &[(i64, FieldValue)], out: &mut Vec<u8>) {
    let mut prev_ts = 0i64;
    let mut prev_delta = 0i64;
    for (i, &(ts, _)) in points.iter().enumerate() {
        if i == 0 {
            put_ivarint(out, ts);
        } else {
            let delta = ts.wrapping_sub(prev_ts);
            put_ivarint(out, delta.wrapping_sub(prev_delta));
            prev_delta = delta;
        }
        prev_ts = ts;
    }
}

fn decode_timestamps(buf: &[u8], pos: &mut usize, count: usize) -> Option<Vec<i64>> {
    let mut out = Vec::with_capacity(count);
    let mut prev_ts = 0i64;
    let mut prev_delta = 0i64;
    for i in 0..count {
        if i == 0 {
            prev_ts = get_ivarint(buf, pos)?;
        } else {
            prev_delta = prev_delta.wrapping_add(get_ivarint(buf, pos)?);
            prev_ts = prev_ts.wrapping_add(prev_delta);
        }
        out.push(prev_ts);
    }
    Some(out)
}

/// Gorilla XOR stream for floats: `0` bit = identical to previous; `10` =
/// XOR fits the previous leading/length window; `11` = new 5-bit leading
/// count + 6-bit significand length follow.
fn encode_floats<'a>(values: impl Iterator<Item = &'a FieldValue>, out: &mut Vec<u8>) {
    let mut w = BitWriter::new();
    let mut prev = 0u64;
    let mut prev_lead = u8::MAX; // force a window on the first non-zero XOR
    let mut prev_len = 0u8;
    for (i, v) in values.enumerate() {
        let bits = match v {
            FieldValue::Float(f) => f.to_bits(),
            _ => unreachable!("kind-checked by caller"),
        };
        if i == 0 {
            w.write_bits(bits, 64);
            prev = bits;
            continue;
        }
        let xor = bits ^ prev;
        prev = bits;
        if xor == 0 {
            w.write_bit(false);
            continue;
        }
        w.write_bit(true);
        let lead = (xor.leading_zeros() as u8).min(31);
        let sig_len = 64 - lead - xor.trailing_zeros() as u8;
        if lead >= prev_lead && lead + sig_len <= prev_lead + prev_len {
            // Fits the previous window: reuse it.
            w.write_bit(false);
            w.write_bits(xor >> (64 - prev_lead - prev_len), prev_len);
        } else {
            w.write_bit(true);
            w.write_bits(lead as u64, 5);
            w.write_bits((sig_len - 1) as u64, 6);
            w.write_bits(xor >> (64 - lead - sig_len), sig_len);
            prev_lead = lead;
            prev_len = sig_len;
        }
    }
    let packed = w.into_bytes();
    put_uvarint(out, packed.len() as u64);
    out.extend_from_slice(&packed);
}

fn decode_floats(buf: &[u8], pos: &mut usize, count: usize) -> Option<Vec<FieldValue>> {
    let packed_len = get_uvarint(buf, pos)? as usize;
    let packed = buf.get(*pos..*pos + packed_len)?;
    *pos += packed_len;
    let mut r = BitReader::new(packed);
    let mut out = Vec::with_capacity(count);
    let mut prev = 0u64;
    let mut lead = 0u8;
    let mut sig_len = 0u8;
    for i in 0..count {
        if i == 0 {
            prev = r.read_bits(64)?;
        } else if r.read_bit()? {
            if r.read_bit()? {
                lead = r.read_bits(5)? as u8;
                sig_len = r.read_bits(6)? as u8 + 1;
            }
            if lead + sig_len > 64 {
                return None;
            }
            let sig = r.read_bits(sig_len)?;
            prev ^= sig << (64 - lead - sig_len);
        }
        out.push(FieldValue::Float(f64::from_bits(prev)));
    }
    Some(out)
}

fn encode_ints<'a>(values: impl Iterator<Item = &'a FieldValue>, out: &mut Vec<u8>) {
    let mut prev = 0i64;
    for (i, v) in values.enumerate() {
        let n = match v {
            FieldValue::Integer(n) => *n,
            _ => unreachable!("kind-checked by caller"),
        };
        if i == 0 {
            put_ivarint(out, n);
        } else {
            put_ivarint(out, n.wrapping_sub(prev));
        }
        prev = n;
    }
}

fn decode_ints(buf: &[u8], pos: &mut usize, count: usize) -> Option<Vec<FieldValue>> {
    let mut out = Vec::with_capacity(count);
    let mut prev = 0i64;
    for i in 0..count {
        let d = get_ivarint(buf, pos)?;
        prev = if i == 0 { d } else { prev.wrapping_add(d) };
        out.push(FieldValue::Integer(prev));
    }
    Some(out)
}

fn encode_bools<'a>(values: impl Iterator<Item = &'a FieldValue>, out: &mut Vec<u8>) {
    let mut w = BitWriter::new();
    for v in values {
        match v {
            FieldValue::Boolean(b) => w.write_bit(*b),
            _ => unreachable!("kind-checked by caller"),
        }
    }
    out.extend_from_slice(&w.into_bytes());
}

fn decode_bools(buf: &[u8], pos: &mut usize, count: usize) -> Option<Vec<FieldValue>> {
    let bytes = count.div_ceil(8);
    let packed = buf.get(*pos..*pos + bytes)?;
    *pos += bytes;
    let mut r = BitReader::new(packed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(FieldValue::Boolean(r.read_bit()?));
    }
    Some(out)
}

/// Dictionary encoding: events repeat a small vocabulary ("job start",
/// "job end", ...), so each point costs one varint index.
fn encode_texts<'a>(values: impl Iterator<Item = &'a FieldValue> + Clone, out: &mut Vec<u8>) {
    let mut dict: Vec<&str> = Vec::new();
    let mut indices: Vec<u64> = Vec::new();
    for v in values {
        let s = match v {
            FieldValue::Text(s) => s.as_str(),
            _ => unreachable!("kind-checked by caller"),
        };
        let idx = dict.iter().position(|d| *d == s).unwrap_or_else(|| {
            dict.push(s);
            dict.len() - 1
        });
        indices.push(idx as u64);
    }
    put_uvarint(out, dict.len() as u64);
    for s in dict {
        put_uvarint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
    for idx in indices {
        put_uvarint(out, idx);
    }
}

fn decode_texts(buf: &[u8], pos: &mut usize, count: usize) -> Option<Vec<FieldValue>> {
    let dict_len = get_uvarint(buf, pos)? as usize;
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let len = get_uvarint(buf, pos)? as usize;
        let bytes = buf.get(*pos..*pos + len)?;
        *pos += len;
        dict.push(std::str::from_utf8(bytes).ok()?.to_string());
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = get_uvarint(buf, pos)? as usize;
        out.push(FieldValue::Text(dict.get(idx)?.clone()));
    }
    Some(out)
}

fn encode_mixed<'a>(values: impl Iterator<Item = &'a FieldValue>, out: &mut Vec<u8>) {
    for v in values {
        match v {
            FieldValue::Float(f) => {
                out.push(KIND_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            FieldValue::Integer(n) => {
                out.push(KIND_INT);
                put_ivarint(out, *n);
            }
            FieldValue::Boolean(b) => {
                out.push(KIND_BOOL);
                out.push(*b as u8);
            }
            FieldValue::Text(s) => {
                out.push(KIND_TEXT);
                put_uvarint(out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

fn decode_mixed(buf: &[u8], pos: &mut usize, count: usize) -> Option<Vec<FieldValue>> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = *buf.get(*pos)?;
        *pos += 1;
        out.push(match tag {
            KIND_FLOAT => {
                let bytes = buf.get(*pos..*pos + 8)?;
                *pos += 8;
                FieldValue::Float(f64::from_bits(u64::from_le_bytes(bytes.try_into().ok()?)))
            }
            KIND_INT => FieldValue::Integer(get_ivarint(buf, pos)?),
            KIND_BOOL => {
                let b = *buf.get(*pos)?;
                *pos += 1;
                FieldValue::Boolean(b != 0)
            }
            KIND_TEXT => {
                let len = get_uvarint(buf, pos)? as usize;
                let bytes = buf.get(*pos..*pos + len)?;
                *pos += len;
                FieldValue::Text(std::str::from_utf8(bytes).ok()?.to_string())
            }
            _ => return None,
        });
    }
    Some(out)
}

fn kind_of(v: &FieldValue) -> u8 {
    match v {
        FieldValue::Float(_) => KIND_FLOAT,
        FieldValue::Integer(_) => KIND_INT,
        FieldValue::Boolean(_) => KIND_BOOL,
        FieldValue::Text(_) => KIND_TEXT,
    }
}

/// Encodes a timestamp-ascending, unique-timestamp run of points into a
/// compressed block payload. `points` must be non-empty.
pub fn encode_block(points: &[(i64, FieldValue)]) -> Vec<u8> {
    assert!(!points.is_empty(), "cannot seal an empty block");
    let first_kind = kind_of(&points[0].1);
    let kind = if points.iter().all(|(_, v)| kind_of(v) == first_kind) {
        first_kind
    } else {
        KIND_MIXED
    };
    let mut out = Vec::with_capacity(points.len() / 2 + 16);
    out.push(BLOCK_VERSION);
    out.push(kind);
    put_uvarint(&mut out, points.len() as u64);
    encode_timestamps(points, &mut out);
    let values = points.iter().map(|(_, v)| v);
    match kind {
        KIND_FLOAT => encode_floats(values, &mut out),
        KIND_INT => encode_ints(values, &mut out),
        KIND_BOOL => encode_bools(values, &mut out),
        KIND_TEXT => encode_texts(values, &mut out),
        _ => encode_mixed(values, &mut out),
    }
    out
}

/// Decodes a block payload produced by [`encode_block`]. `None` on any
/// structural inconsistency (only reachable past a CRC collision or a bug).
pub fn decode_block(buf: &[u8]) -> Option<Vec<(i64, FieldValue)>> {
    if *buf.first()? != BLOCK_VERSION {
        return None;
    }
    let kind = *buf.get(1)?;
    let mut pos = 2usize;
    let count = get_uvarint(buf, &mut pos)? as usize;
    // An absurd count would make the Vec::with_capacity calls below balloon.
    if count == 0 || count > buf.len().saturating_mul(64) {
        return None;
    }
    let timestamps = decode_timestamps(buf, &mut pos, count)?;
    let values = match kind {
        KIND_FLOAT => decode_floats(buf, &mut pos, count)?,
        KIND_INT => decode_ints(buf, &mut pos, count)?,
        KIND_BOOL => decode_bools(buf, &mut pos, count)?,
        KIND_TEXT => decode_texts(buf, &mut pos, count)?,
        KIND_MIXED => decode_mixed(buf, &mut pos, count)?,
        _ => return None,
    };
    Some(timestamps.into_iter().zip(values).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(points: Vec<(i64, FieldValue)>) {
        let encoded = encode_block(&points);
        let decoded = decode_block(&encoded).expect("decodes");
        assert_eq!(decoded, points);
    }

    #[test]
    fn float_round_trip_and_compression() {
        let points: Vec<(i64, FieldValue)> = (0..1000)
            .map(|i| (i * 1_000_000_000, FieldValue::Float(50.0 + (i % 7) as f64)))
            .collect();
        let encoded = encode_block(&points);
        round_trip(points.clone());
        let raw = points.len() * std::mem::size_of::<(i64, FieldValue)>();
        assert!(
            encoded.len() * 4 <= raw,
            "regular series must compress >= 4x: {} vs {raw}",
            encoded.len()
        );
    }

    #[test]
    fn float_special_values() {
        // NaN != NaN under PartialEq, so compare bit patterns instead.
        let points = vec![
            (1, FieldValue::Float(0.0)),
            (2, FieldValue::Float(-0.0)),
            (3, FieldValue::Float(f64::MAX)),
            (4, FieldValue::Float(f64::MIN_POSITIVE)),
            (5, FieldValue::Float(f64::NAN)),
            (6, FieldValue::Float(f64::INFINITY)),
        ];
        let decoded = decode_block(&encode_block(&points)).expect("decodes");
        assert_eq!(decoded.len(), points.len());
        for ((t0, v0), (t1, v1)) in points.iter().zip(&decoded) {
            let (FieldValue::Float(a), FieldValue::Float(b)) = (v0, v1) else { panic!() };
            assert_eq!(t0, t1);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn int_bool_text_round_trip() {
        round_trip((0..500).map(|i| (i, FieldValue::Integer(i * 3 - 100))).collect());
        round_trip((0..77).map(|i| (i, FieldValue::Boolean(i % 3 == 0))).collect());
        round_trip(
            (0..64)
                .map(|i| {
                    (i, FieldValue::Text(if i % 2 == 0 { "job start" } else { "job end" }.into()))
                })
                .collect(),
        );
    }

    #[test]
    fn mixed_column_round_trip() {
        round_trip(vec![
            (10, FieldValue::Float(1.5)),
            (20, FieldValue::Integer(-7)),
            (30, FieldValue::Boolean(true)),
            (40, FieldValue::Text("event".into())),
            (50, FieldValue::Float(2.5)),
        ]);
    }

    #[test]
    fn irregular_and_negative_timestamps() {
        round_trip(vec![
            (-1_000_000, FieldValue::Float(1.0)),
            (-3, FieldValue::Float(2.0)),
            (0, FieldValue::Float(3.0)),
            (i64::MAX / 2, FieldValue::Float(4.0)),
        ]);
    }

    #[test]
    fn single_point_block() {
        round_trip(vec![(42, FieldValue::Integer(7))]);
    }

    #[test]
    fn truncated_payload_is_rejected_not_panicking() {
        let points: Vec<(i64, FieldValue)> =
            (0..100).map(|i| (i, FieldValue::Float(i as f64))).collect();
        let encoded = encode_block(&points);
        for cut in 0..encoded.len() {
            let _ = decode_block(&encoded[..cut]); // must not panic
        }
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
