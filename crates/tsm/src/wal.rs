//! The write-ahead log: crash durability for the mutable head.
//!
//! Every acknowledged write batch is appended to the WAL before the write
//! call returns; the in-memory head can then be rebuilt after a crash by
//! replaying the log. The WAL is segmented (`<seq:016x>.wal`, hex-padded so
//! lexicographic order is append order) and each record is one length+CRC
//! frame — the same framing idiom proven by `lms-spool`:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [record_seq: u64 LE][batch: UTF-8 line protocol, explicit ns timestamps]
//! ```
//!
//! ## Recovery
//!
//! [`Wal::open`] scans segments in order, decodes every intact record, and
//! truncates the first torn or corrupt frame and everything after it in
//! that file (a crash mid-append leaves a half-written frame; only the
//! unacknowledged tail record can be affected). Recovery therefore yields
//! exactly the acknowledged prefix — zero silent loss, no torn records.
//!
//! ## Checkpointing
//!
//! A flush calls [`Wal::rotate`] *before* sealing the head: every record in
//! the now-frozen segments is already applied in memory (writers insert
//! into memory before appending to the WAL), so once the sealed blocks are
//! durably in a segment file the frozen WAL segments are deleted with
//! [`Wal::remove_frozen`]. Records landing in the new active segment during
//! the flush may be sealed *and* replayed after a crash — replay is
//! idempotent (last-write-wins on series+timestamp), so over-persisting is
//! safe; only under-persisting would lose data.

use lms_util::hash::crc32;
use lms_util::Result;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Frame header size: payload length + CRC.
const HEADER_LEN: usize = 8;

/// Upper bound on one payload; larger lengths read as corruption.
const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// WAL configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding WAL segments (created if missing).
    pub dir: PathBuf,
    /// Rotate the active segment once it reaches this size.
    pub segment_bytes: usize,
    /// `fsync` after every append (true durability across power loss) or
    /// only on rotation/flush (crash-safe against process death, the
    /// default throughput trade-off — same policy as `lms-spool`).
    pub fsync_every_append: bool,
}

impl WalConfig {
    /// Defaults: 4 MiB segments, fsync on rotation only.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig { dir: dir.into(), segment_bytes: 4 * 1024 * 1024, fsync_every_append: false }
    }
}

/// One recovered WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic record sequence number.
    pub seq: u64,
    /// The write batch, line protocol with explicit nanosecond timestamps.
    pub batch: String,
}

/// Outcome of WAL recovery.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Intact records in append order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded as torn tails or corruption.
    pub torn_bytes: u64,
}

struct Frozen {
    seq: u64,
    path: PathBuf,
    bytes: u64,
}

struct Inner {
    active: File,
    active_seq: u64,
    active_bytes: u64,
    frozen: Vec<Frozen>,
    next_record_seq: u64,
}

/// A segmented, CRC-framed write-ahead log.
pub struct Wal {
    cfg: WalConfig,
    inner: Mutex<Inner>,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{seq:016x}.wal"))
}

fn encode_record(seq: u64, batch: &str, out: &mut Vec<u8>) {
    let payload_len = 8 + batch.len();
    assert!(payload_len <= MAX_PAYLOAD, "batch too large for one WAL record");
    out.reserve(HEADER_LEN + payload_len);
    let payload_start = out.len() + HEADER_LEN;
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0; 4]); // CRC back-patched below
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(batch.as_bytes());
    let crc = crc32(&out[payload_start..]);
    out[payload_start - 4..payload_start].copy_from_slice(&crc.to_le_bytes());
}

/// Decodes intact records until the first torn/corrupt frame; returns the
/// records and the byte offset of the clean prefix.
fn decode_segment(buf: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = &buf[off..];
        if rest.len() < HEADER_LEN {
            return (records, off);
        }
        let payload_len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if !(8..=MAX_PAYLOAD).contains(&payload_len) || rest.len() < HEADER_LEN + payload_len {
            return (records, off);
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + payload_len];
        if crc32(payload) != crc {
            return (records, off);
        }
        let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        let Ok(batch) = std::str::from_utf8(&payload[8..]) else {
            return (records, off);
        };
        records.push(WalRecord { seq, batch: batch.to_string() });
        off += HEADER_LEN + payload_len;
    }
}

impl Wal {
    /// Opens (or creates) the WAL, recovering every intact record. Torn
    /// tails are truncated in place; appending resumes in a fresh segment
    /// so recovery never re-reads replayed records after the next
    /// checkpoint.
    pub fn open(cfg: WalConfig) -> Result<(Wal, WalRecovery)> {
        fs::create_dir_all(&cfg.dir)?;
        let mut seqs: Vec<u64> = fs::read_dir(&cfg.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let stem = name.strip_suffix(".wal")?;
                u64::from_str_radix(stem, 16).ok()
            })
            .collect();
        seqs.sort_unstable();

        let mut recovery = WalRecovery::default();
        let mut frozen = Vec::new();
        for &seq in &seqs {
            let path = segment_path(&cfg.dir, seq);
            let buf = fs::read(&path)?;
            let (records, clean_len) = decode_segment(&buf);
            if clean_len < buf.len() {
                recovery.torn_bytes += (buf.len() - clean_len) as u64;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(clean_len as u64)?;
            }
            if clean_len == 0 {
                fs::remove_file(&path)?;
            } else {
                frozen.push(Frozen { seq, path, bytes: clean_len as u64 });
            }
            recovery.records.extend(records);
        }

        let next_record_seq = recovery.records.last().map(|r| r.seq + 1).unwrap_or(0);
        let active_seq = seqs.last().map(|s| s + 1).unwrap_or(0);
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&cfg.dir, active_seq))?;
        let inner =
            Inner { active, active_seq, active_bytes: 0, frozen, next_record_seq };
        Ok((Wal { cfg, inner: Mutex::new(inner) }, recovery))
    }

    /// Appends one batch; returns once the record is written to the OS
    /// (and fsynced, when configured). The record survives any subsequent
    /// process crash.
    pub fn append(&self, batch: &str) -> Result<u64> {
        let mut inner = self.inner.lock().unwrap();
        if inner.active_bytes >= self.cfg.segment_bytes as u64 {
            self.rotate_locked(&mut inner)?;
        }
        let seq = inner.next_record_seq;
        let mut buf = Vec::with_capacity(HEADER_LEN + 8 + batch.len());
        encode_record(seq, batch, &mut buf);
        inner.active.write_all(&buf)?;
        if self.cfg.fsync_every_append {
            inner.active.sync_data()?;
        }
        inner.active_bytes += buf.len() as u64;
        inner.next_record_seq = seq + 1;
        Ok(seq)
    }

    fn rotate_locked(&self, inner: &mut Inner) -> Result<u64> {
        // Freeze the active segment (fsync so a checkpoint can trust it
        // existed) and start a new one.
        inner.active.sync_data()?;
        let old_seq = inner.active_seq;
        let old_bytes = inner.active_bytes;
        let new_seq = old_seq + 1;
        inner.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.cfg.dir, new_seq))?;
        if old_bytes > 0 {
            inner.frozen.push(Frozen {
                seq: old_seq,
                path: segment_path(&self.cfg.dir, old_seq),
                bytes: old_bytes,
            });
        } else {
            // Empty segment: nothing to replay, delete it eagerly.
            let _ = fs::remove_file(segment_path(&self.cfg.dir, old_seq));
        }
        inner.active_seq = new_seq;
        inner.active_bytes = 0;
        Ok(new_seq)
    }

    /// Rotates to a fresh active segment and returns the checkpoint
    /// boundary: every record in segments `< boundary` is in memory now
    /// and may be deleted once sealed blocks covering them are durable.
    pub fn rotate(&self) -> Result<u64> {
        let mut inner = self.inner.lock().unwrap();
        self.rotate_locked(&mut inner)
    }

    /// Deletes frozen segments below `boundary` (returned by
    /// [`rotate`](Self::rotate)) after their contents were durably sealed.
    pub fn remove_frozen(&self, boundary: u64) -> Result<()> {
        let mut inner = self.inner.lock().unwrap();
        let mut kept = Vec::new();
        for f in inner.frozen.drain(..) {
            if f.seq < boundary {
                fs::remove_file(&f.path)?;
            } else {
                kept.push(f);
            }
        }
        inner.frozen = kept;
        Ok(())
    }

    /// Total bytes currently on disk (frozen + active).
    pub fn bytes(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.active_bytes + inner.frozen.iter().map(|f| f.bytes).sum::<u64>()
    }

    /// Fsyncs the active segment (graceful-shutdown hook).
    pub fn sync(&self) -> Result<()> {
        let inner = self.inner.lock().unwrap();
        inner.active.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lms-tsm-wal-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_and_recover() {
        let dir = tmp("basic");
        {
            let (wal, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
            assert!(rec.records.is_empty());
            wal.append("m v=1 1").unwrap();
            wal.append("m v=2 2\nm v=3 3").unwrap();
        }
        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        let batches: Vec<&str> = rec.records.iter().map(|r| r.batch.as_str()).collect();
        assert_eq!(batches, vec!["m v=1 1", "m v=2 2\nm v=3 3"]);
        assert_eq!(rec.records[0].seq, 0);
        assert_eq!(rec.records[1].seq, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_to_acknowledged_prefix() {
        let dir = tmp("torn");
        let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        wal.append("a v=1 1").unwrap();
        wal.append("b v=2 2").unwrap();
        drop(wal);
        // Find the single non-empty segment and cut its tail mid-record.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| fs::metadata(p).unwrap().len() > 0)
            .unwrap();
        let full = fs::metadata(&seg).unwrap().len();
        fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(full - 3).unwrap();

        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(rec.records.len(), 1, "second record torn, first intact");
        assert_eq!(rec.records[0].batch, "a v=1 1");
        assert!(rec.torn_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_checkpoint_removal() {
        let dir = tmp("rotate");
        let cfg = WalConfig { segment_bytes: 64, ..WalConfig::new(&dir) };
        let (wal, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..20 {
            wal.append(&format!("m v={i} {i}")).unwrap();
        }
        let boundary = wal.rotate().unwrap();
        wal.append("m v=99 99").unwrap(); // lands after the checkpoint
        wal.remove_frozen(boundary).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(cfg).unwrap();
        assert_eq!(rec.records.len(), 1, "only the post-checkpoint record survives");
        assert_eq!(rec.records[0].batch, "m v=99 99");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_record_discards_suffix_not_prefix() {
        let dir = tmp("corrupt");
        let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        wal.append("a v=1 1").unwrap();
        wal.append("b v=2 2").unwrap();
        wal.append("c v=3 3").unwrap();
        drop(wal);
        let seg = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| fs::metadata(p).unwrap().len() > 0)
            .unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        let record_len = bytes.len() / 3;
        bytes[record_len + HEADER_LEN + 9] ^= 0xFF; // flip a byte of record 2
        fs::write(&seg, &bytes).unwrap();
        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].batch, "a v=1 1");
        assert!(rec.torn_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
