//! The write-ahead log: crash durability for the mutable head.
//!
//! Every acknowledged write batch is appended to the WAL before the write
//! call returns; the in-memory head can then be rebuilt after a crash by
//! replaying the log. The WAL is segmented (`<seq:016x>.wal`, hex-padded so
//! lexicographic order is append order) and each record is one length+CRC
//! frame — the same framing idiom proven by `lms-spool`:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [record_seq: u64 LE][batch: UTF-8 line protocol, explicit ns timestamps]
//! ```
//!
//! ## Group commit
//!
//! Concurrent appends do not serialize on the file: each appender encodes
//! its record into a shared staging buffer under a short mutex and then
//! waits; the first-in appender becomes the *leader* and commits the whole
//! group — one `write_all` (and one `sync_data`, when fsync is configured)
//! for every record staged so far. While the leader is inside the write
//! syscall the staging buffer keeps accepting records for the *next* group,
//! so the commit pipeline never stalls arriving writers.
//!
//! An append only returns once its record's group is durably committed
//! (acks release after the group fsync), so durability semantics are
//! identical to the old record-at-a-time path — only the fsync *count*
//! changes. With [`WalConfig::fsync_every_append`] set, the leader
//! additionally holds the group open for up to
//! [`WalConfig::group_commit_delay`] (or until
//! [`WalConfig::group_commit_bytes`] accumulate), bounding the fsync rate
//! under load; without per-append fsync there is no artificial delay —
//! grouping is purely the natural coalescing of concurrent appends.
//! Setting both knobs to zero disables grouping entirely and restores the
//! legacy one-write-one-fsync-per-append path (the benchmark baseline).
//!
//! ## Recovery
//!
//! [`Wal::open`] scans segments in order, decodes every intact record, and
//! truncates the first torn or corrupt frame and everything after it in
//! that file (a crash mid-append leaves a half-written frame; only records
//! of the unacknowledged tail group can be affected). Recovery therefore
//! yields exactly the acknowledged prefix — zero silent loss, no torn
//! records. Symmetrically, a group write that *fails* marks the active
//! segment's tail dirty: the next commit rotates to a fresh segment first,
//! so later acknowledged records are never stranded behind a torn middle.
//!
//! ## Checkpointing
//!
//! A flush calls [`Wal::rotate`] *before* sealing the head: every record in
//! the now-frozen segments is already applied in memory (writers insert
//! into memory before appending to the WAL), so once the sealed blocks are
//! durably in a segment file the frozen WAL segments are deleted with
//! [`Wal::remove_frozen`]. Records landing in the new active segment during
//! the flush may be sealed *and* replayed after a crash — replay is
//! idempotent (last-write-wins on series+timestamp), so over-persisting is
//! safe; only under-persisting would lose data.

use lms_util::hash::crc32;
use lms_util::{Error, Result};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Frame header size: payload length + CRC.
const HEADER_LEN: usize = 8;

/// Upper bound on one payload; larger lengths read as corruption.
const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// WAL configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding WAL segments (created if missing).
    pub dir: PathBuf,
    /// Rotate the active segment once it reaches this size.
    pub segment_bytes: usize,
    /// `fsync` after every commit (true durability across power loss) or
    /// only on rotation/flush (crash-safe against process death, the
    /// default throughput trade-off — same policy as `lms-spool`).
    pub fsync_every_append: bool,
    /// How long the commit leader holds a group open waiting for more
    /// appends (only when `fsync_every_append` is set — the delay exists
    /// to amortize fsyncs, not writes). Zero together with
    /// `group_commit_bytes == 0` disables grouping entirely.
    pub group_commit_delay: Duration,
    /// Commit the group early once this many staged bytes accumulate
    /// (`0` = no size bound).
    pub group_commit_bytes: usize,
}

impl WalConfig {
    /// Defaults: 4 MiB segments, fsync on rotation only, 2 ms group window
    /// bounded at 1 MiB.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            segment_bytes: 4 * 1024 * 1024,
            fsync_every_append: false,
            group_commit_delay: Duration::from_millis(2),
            group_commit_bytes: 1024 * 1024,
        }
    }
}

/// One recovered WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonic record sequence number.
    pub seq: u64,
    /// The write batch, line protocol with explicit nanosecond timestamps.
    pub batch: String,
}

/// Outcome of WAL recovery.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Intact records in append order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded as torn tails or corruption.
    pub torn_bytes: u64,
    /// Frames whose length header was plausible but whose CRC failed — a
    /// torn tail from a crash mid-append is *expected* and not counted
    /// here; a complete frame that fails its CRC means the storage
    /// corrupted data we already acknowledged.
    pub corrupt_frames: u64,
}

/// Group-commit gauges (monotonic counters since open).
#[derive(Debug, Clone, Copy, Default)]
pub struct WalGroupStats {
    /// Committed record groups.
    pub group_commits: u64,
    /// `sync_data` calls on WAL files (commits, rotations, explicit syncs).
    pub fsyncs: u64,
    /// Exponentially-weighted moving average of points per committed group.
    pub points_per_commit: f64,
}

struct Frozen {
    seq: u64,
    path: PathBuf,
    bytes: u64,
}

/// Record staging and sequencing; guarded by `Wal::state` and never held
/// across file I/O by the commit leader.
struct GroupState {
    /// Encoded frames of the group being formed.
    buf: Vec<u8>,
    /// Recycled buffer swapped in when the leader takes `buf`.
    spare: Vec<u8>,
    /// Points staged in `buf` (for the points-per-commit gauge).
    buf_points: u64,
    /// Sequence of the first record staged in `buf`.
    buf_first_seq: u64,
    /// When the current group's first record was staged (deadline base).
    opened_at: Option<Instant>,
    next_record_seq: u64,
    /// Every record with `seq < durable_seq` is resolved: durably written,
    /// or part of a failed group listed in `failed`.
    durable_seq: u64,
    /// True while one appender is committing a group.
    leader: bool,
    /// Seq ranges `[start, end)` whose group write failed, with the error
    /// to report to their waiters (bounded; disk faults are rare and the
    /// engine degrades on `ENOSPC` anyway).
    failed: Vec<(u64, u64, std::io::ErrorKind, String)>,
}

/// The active segment file; guarded by `Wal::file`, acquired after (never
/// before) releasing `Wal::state`.
struct FileState {
    active: File,
    active_seq: u64,
    active_bytes: u64,
    frozen: Vec<Frozen>,
    /// A write to the active segment failed partway: recovery stops at the
    /// torn frame, so nothing more may be appended to this file — the next
    /// commit rotates first.
    dirty_tail: bool,
}

/// A segmented, CRC-framed write-ahead log with group commit.
pub struct Wal {
    cfg: WalConfig,
    /// False when both group-commit knobs are zero: legacy per-append path.
    grouped: bool,
    state: Mutex<GroupState>,
    cv: Condvar,
    file: Mutex<FileState>,
    fsyncs: AtomicU64,
    group_commits: AtomicU64,
    /// f64 bits of the points-per-commit EWMA.
    ewma_bits: AtomicU64,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{seq:016x}.wal"))
}

fn encode_record(seq: u64, batch: &str, out: &mut Vec<u8>) {
    let payload_len = 8 + batch.len();
    assert!(payload_len <= MAX_PAYLOAD, "batch too large for one WAL record");
    out.reserve(HEADER_LEN + payload_len);
    let payload_start = out.len() + HEADER_LEN;
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0; 4]); // CRC back-patched below
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(batch.as_bytes());
    let crc = crc32(&out[payload_start..]);
    out[payload_start - 4..payload_start].copy_from_slice(&crc.to_le_bytes());
}

/// Decodes intact records until the first torn/corrupt frame; returns the
/// records, the byte offset of the clean prefix, and — when the stop was a
/// complete frame failing its CRC rather than a short/implausible tail —
/// the offset of that corrupt frame. Replay must stop either way (records
/// after the bad frame may depend on ordering), but the two causes mean
/// different things: a torn tail is an expected crash artifact, a corrupt
/// complete frame is the disk flipping bits under acknowledged data.
fn decode_segment(buf: &[u8]) -> (Vec<WalRecord>, usize, Option<usize>) {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = &buf[off..];
        if rest.len() < HEADER_LEN {
            return (records, off, None);
        }
        let payload_len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if !(8..=MAX_PAYLOAD).contains(&payload_len) || rest.len() < HEADER_LEN + payload_len {
            return (records, off, None);
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + payload_len];
        if crc32(payload) != crc {
            return (records, off, Some(off));
        }
        let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        let Ok(batch) = std::str::from_utf8(&payload[8..]) else {
            return (records, off, Some(off));
        };
        records.push(WalRecord { seq, batch: batch.to_string() });
        off += HEADER_LEN + payload_len;
    }
}

/// CRC-verifies every frame of one WAL segment file without materializing
/// records — the scrubber's cheap pass over the durable tail. Returns
/// `(bytes_scanned, corrupt_frame_offset)`.
pub(crate) fn verify_wal_segment(path: &Path) -> Result<(u64, Option<u64>)> {
    let buf = fs::read(path)?;
    let (_, _, corrupt) = decode_segment(&buf);
    Ok((buf.len() as u64, corrupt.map(|o| o as u64)))
}

impl Wal {
    /// Opens (or creates) the WAL, recovering every intact record. Torn
    /// tails are truncated in place; appending resumes in a fresh segment
    /// so recovery never re-reads replayed records after the next
    /// checkpoint.
    pub fn open(cfg: WalConfig) -> Result<(Wal, WalRecovery)> {
        fs::create_dir_all(&cfg.dir)?;
        let mut seqs: Vec<u64> = fs::read_dir(&cfg.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let stem = name.strip_suffix(".wal")?;
                u64::from_str_radix(stem, 16).ok()
            })
            .collect();
        seqs.sort_unstable();

        let mut recovery = WalRecovery::default();
        let mut frozen = Vec::new();
        for &seq in &seqs {
            let path = segment_path(&cfg.dir, seq);
            let buf = fs::read(&path)?;
            let (records, clean_len, corrupt_at) = decode_segment(&buf);
            if let Some(off) = corrupt_at {
                recovery.corrupt_frames += 1;
                eprintln!(
                    "lms-tsm: warning: WAL corruption: CRC-failed frame at {}:{off} \
                     (not a torn tail — acknowledged data may be lost); \
                     truncating to the clean prefix",
                    path.display()
                );
            }
            if clean_len < buf.len() {
                recovery.torn_bytes += (buf.len() - clean_len) as u64;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(clean_len as u64)?;
            }
            if clean_len == 0 {
                fs::remove_file(&path)?;
            } else {
                frozen.push(Frozen { seq, path, bytes: clean_len as u64 });
            }
            recovery.records.extend(records);
        }

        let next_record_seq = recovery.records.last().map(|r| r.seq + 1).unwrap_or(0);
        let active_seq = seqs.last().map(|s| s + 1).unwrap_or(0);
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&cfg.dir, active_seq))?;
        let grouped = !cfg.group_commit_delay.is_zero() || cfg.group_commit_bytes > 0;
        let wal = Wal {
            cfg,
            grouped,
            state: Mutex::new(GroupState {
                buf: Vec::new(),
                spare: Vec::new(),
                buf_points: 0,
                buf_first_seq: next_record_seq,
                opened_at: None,
                next_record_seq,
                durable_seq: next_record_seq,
                leader: false,
                failed: Vec::new(),
            }),
            cv: Condvar::new(),
            file: Mutex::new(FileState {
                active,
                active_seq,
                active_bytes: 0,
                frozen,
                dirty_tail: false,
            }),
            fsyncs: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            ewma_bits: AtomicU64::new(0),
        };
        Ok((wal, recovery))
    }

    /// Appends one batch of `points` points; returns once the record's
    /// group is written to the OS (and fsynced, when configured). The
    /// record survives any subsequent process crash.
    pub fn append(&self, batch: &str, points: u64) -> Result<u64> {
        if !self.grouped {
            return self.append_legacy(batch);
        }
        let mut st = self.state.lock().unwrap();
        let seq = st.next_record_seq;
        st.next_record_seq += 1;
        if st.buf.is_empty() {
            st.buf_first_seq = seq;
            st.opened_at = Some(Instant::now());
        }
        encode_record(seq, batch, &mut st.buf);
        st.buf_points += points;
        if self.cfg.group_commit_bytes > 0 && st.buf.len() >= self.cfg.group_commit_bytes {
            // Wake a leader blocked in its group window: the size bound is
            // reached.
            self.cv.notify_all();
        }
        loop {
            if st.durable_seq > seq {
                if let Some((_, _, kind, msg)) =
                    st.failed.iter().find(|f| f.0 <= seq && seq < f.1)
                {
                    return Err(Error::Io(std::io::Error::new(*kind, msg.clone())));
                }
                return Ok(seq);
            }
            if !st.leader {
                st.leader = true;
                st = self.lead_commit(st);
            } else {
                st = self.cv.wait(st).unwrap();
            }
        }
    }

    /// Commits the staged group as its leader: optionally holds the group
    /// open (fsync amortization), then writes and syncs outside the state
    /// lock so the next group can form during the I/O. Returns with the
    /// state lock re-held, `durable_seq` advanced past the group and all
    /// waiters notified.
    fn lead_commit<'a>(&'a self, mut st: MutexGuard<'a, GroupState>) -> MutexGuard<'a, GroupState> {
        if self.cfg.fsync_every_append && !self.cfg.group_commit_delay.is_zero() {
            let deadline =
                st.opened_at.unwrap_or_else(Instant::now) + self.cfg.group_commit_delay;
            let size_bound =
                if self.cfg.group_commit_bytes == 0 { usize::MAX } else { self.cfg.group_commit_bytes };
            loop {
                if st.buf.len() >= size_bound {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self.cv.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }
        let spare = std::mem::take(&mut st.spare);
        let group = std::mem::replace(&mut st.buf, spare);
        let points = std::mem::replace(&mut st.buf_points, 0);
        let first_seq = st.buf_first_seq;
        let end_seq = st.next_record_seq;
        st.opened_at = None;
        drop(st);

        let result = self.write_group(&group);

        let mut st = self.state.lock().unwrap();
        let mut group = group;
        group.clear();
        st.spare = group;
        st.durable_seq = end_seq;
        st.leader = false;
        match result {
            Ok(()) => {
                self.group_commits.fetch_add(1, Ordering::Relaxed);
                let prev = f64::from_bits(self.ewma_bits.load(Ordering::Relaxed));
                let next = if prev == 0.0 {
                    points as f64
                } else {
                    prev + 0.2 * (points as f64 - prev)
                };
                self.ewma_bits.store(next.to_bits(), Ordering::Relaxed);
            }
            Err(e) => {
                let (kind, msg) = match &e {
                    Error::Io(io) => (io.kind(), io.to_string()),
                    other => (std::io::ErrorKind::Other, other.to_string()),
                };
                st.failed.push((first_seq, end_seq, kind, msg));
                if st.failed.len() > 16 {
                    st.failed.remove(0);
                }
            }
        }
        self.cv.notify_all();
        st
    }

    /// Writes one encoded group to the active segment.
    fn write_group(&self, group: &[u8]) -> Result<()> {
        let mut file = self.file.lock().unwrap();
        if file.dirty_tail || file.active_bytes >= self.cfg.segment_bytes as u64 {
            self.rotate_file_locked(&mut file)?;
        }
        if let Err(e) = file.active.write_all(group) {
            file.dirty_tail = true;
            return Err(e.into());
        }
        file.active_bytes += group.len() as u64;
        if self.cfg.fsync_every_append {
            if let Err(e) = file.active.sync_data() {
                // The kernel may have dropped dirty pages: nothing after
                // this point in the file can be trusted.
                file.dirty_tail = true;
                return Err(e.into());
            }
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Legacy path (grouping disabled): sequence assignment and the file
    /// write are serialized under one critical section, exactly the old
    /// one-write-one-fsync-per-append behaviour.
    fn append_legacy(&self, batch: &str) -> Result<u64> {
        let mut st = self.state.lock().unwrap();
        let seq = st.next_record_seq;
        let mut buf = Vec::with_capacity(HEADER_LEN + 8 + batch.len());
        encode_record(seq, batch, &mut buf);
        {
            let mut file = self.file.lock().unwrap();
            if file.dirty_tail || file.active_bytes >= self.cfg.segment_bytes as u64 {
                self.rotate_file_locked(&mut file)?;
            }
            if let Err(e) = file.active.write_all(&buf) {
                file.dirty_tail = true;
                return Err(e.into());
            }
            file.active_bytes += buf.len() as u64;
            if self.cfg.fsync_every_append {
                if let Err(e) = file.active.sync_data() {
                    file.dirty_tail = true;
                    return Err(e.into());
                }
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
        }
        st.next_record_seq = seq + 1;
        st.durable_seq = seq + 1;
        Ok(seq)
    }

    fn rotate_file_locked(&self, file: &mut FileState) -> Result<u64> {
        // Freeze the active segment (fsync so a checkpoint can trust it
        // existed) and start a new one.
        if let Err(e) = file.active.sync_data() {
            file.dirty_tail = true;
            return Err(e.into());
        }
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        let old_seq = file.active_seq;
        let old_bytes = file.active_bytes;
        let new_seq = old_seq + 1;
        file.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.cfg.dir, new_seq))?;
        if old_bytes > 0 || file.dirty_tail {
            // A dirty tail may hold a clean prefix worth replaying even
            // when the byte counter says zero; recovery sorts it out.
            file.frozen.push(Frozen {
                seq: old_seq,
                path: segment_path(&self.cfg.dir, old_seq),
                bytes: old_bytes,
            });
        } else {
            // Empty segment: nothing to replay, delete it eagerly.
            let _ = fs::remove_file(segment_path(&self.cfg.dir, old_seq));
        }
        file.active_seq = new_seq;
        file.active_bytes = 0;
        file.dirty_tail = false;
        Ok(new_seq)
    }

    /// Rotates to a fresh active segment and returns the checkpoint
    /// boundary: every record in segments `< boundary` is in memory now
    /// and may be deleted once sealed blocks covering them are durable.
    pub fn rotate(&self) -> Result<u64> {
        let mut file = self.file.lock().unwrap();
        self.rotate_file_locked(&mut file)
    }

    /// Deletes frozen segments below `boundary` (returned by
    /// [`rotate`](Self::rotate)) after their contents were durably sealed.
    pub fn remove_frozen(&self, boundary: u64) -> Result<()> {
        let mut file = self.file.lock().unwrap();
        let mut kept = Vec::new();
        for f in file.frozen.drain(..) {
            if f.seq < boundary {
                fs::remove_file(&f.path)?;
            } else {
                kept.push(f);
            }
        }
        file.frozen = kept;
        Ok(())
    }

    /// Total bytes currently on disk (frozen + active).
    pub fn bytes(&self) -> u64 {
        let file = self.file.lock().unwrap();
        file.active_bytes + file.frozen.iter().map(|f| f.bytes).sum::<u64>()
    }

    /// Paths of the frozen (immutable, pre-checkpoint) segments. The
    /// scrubber verifies these — never the active segment, whose tail is
    /// legitimately mid-write under group commit.
    pub(crate) fn frozen_paths(&self) -> Vec<PathBuf> {
        let file = self.file.lock().unwrap();
        file.frozen.iter().map(|f| f.path.clone()).collect()
    }

    /// Fsyncs the active segment (graceful-shutdown hook).
    pub fn sync(&self) -> Result<()> {
        let file = self.file.lock().unwrap();
        file.active.sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Group-commit gauges.
    pub fn group_stats(&self) -> WalGroupStats {
        WalGroupStats {
            group_commits: self.group_commits.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            points_per_commit: f64::from_bits(self.ewma_bits.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lms-tsm-wal-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_and_recover() {
        let dir = tmp("basic");
        {
            let (wal, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
            assert!(rec.records.is_empty());
            wal.append("m v=1 1", 1).unwrap();
            wal.append("m v=2 2\nm v=3 3", 2).unwrap();
        }
        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(rec.torn_bytes, 0);
        let batches: Vec<&str> = rec.records.iter().map(|r| r.batch.as_str()).collect();
        assert_eq!(batches, vec!["m v=1 1", "m v=2 2\nm v=3 3"]);
        assert_eq!(rec.records[0].seq, 0);
        assert_eq!(rec.records[1].seq, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_to_acknowledged_prefix() {
        let dir = tmp("torn");
        let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        wal.append("a v=1 1", 1).unwrap();
        wal.append("b v=2 2", 1).unwrap();
        drop(wal);
        // Find the single non-empty segment and cut its tail mid-record.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| fs::metadata(p).unwrap().len() > 0)
            .unwrap();
        let full = fs::metadata(&seg).unwrap().len();
        fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(full - 3).unwrap();

        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(rec.records.len(), 1, "second record torn, first intact");
        assert_eq!(rec.records[0].batch, "a v=1 1");
        assert!(rec.torn_bytes > 0);
        assert_eq!(rec.corrupt_frames, 0, "a torn tail is not corruption");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_checkpoint_removal() {
        let dir = tmp("rotate");
        let cfg = WalConfig { segment_bytes: 64, ..WalConfig::new(&dir) };
        let (wal, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..20 {
            wal.append(&format!("m v={i} {i}"), 1).unwrap();
        }
        let boundary = wal.rotate().unwrap();
        wal.append("m v=99 99", 1).unwrap(); // lands after the checkpoint
        wal.remove_frozen(boundary).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(cfg).unwrap();
        assert_eq!(rec.records.len(), 1, "only the post-checkpoint record survives");
        assert_eq!(rec.records[0].batch, "m v=99 99");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_record_discards_suffix_not_prefix() {
        let dir = tmp("corrupt");
        let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
        wal.append("a v=1 1", 1).unwrap();
        wal.append("b v=2 2", 1).unwrap();
        wal.append("c v=3 3", 1).unwrap();
        drop(wal);
        let seg = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| fs::metadata(p).unwrap().len() > 0)
            .unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        let record_len = bytes.len() / 3;
        bytes[record_len + HEADER_LEN + 9] ^= 0xFF; // flip a byte of record 2
        fs::write(&seg, &bytes).unwrap();
        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].batch, "a v=1 1");
        assert!(rec.torn_bytes > 0);
        assert_eq!(rec.corrupt_frames, 1, "mid-file CRC failure is corruption, not a tear");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_group_appends_all_recovered_in_seq_order() {
        let dir = tmp("group-concurrent");
        {
            let (wal, _) = Wal::open(WalConfig::new(&dir)).unwrap();
            std::thread::scope(|s| {
                for t in 0..8 {
                    let wal = &wal;
                    s.spawn(move || {
                        for i in 0..50 {
                            wal.append(&format!("m,t=t{t} v={i} {i}"), 1).unwrap();
                        }
                    });
                }
            });
            let stats = wal.group_stats();
            assert!(stats.group_commits >= 1);
            assert!(stats.group_commits <= 400);
        }
        let (_, rec) = Wal::open(WalConfig::new(&dir)).unwrap();
        assert_eq!(rec.records.len(), 400, "every acknowledged append recovered");
        let seqs: Vec<u64> = rec.records.iter().map(|r| r.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "file order is sequence order");
        assert_eq!(seqs, (0..400).collect::<Vec<u64>>());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_group_window_coalesces_concurrent_appends() {
        let dir = tmp("group-fsync");
        let cfg = WalConfig {
            fsync_every_append: true,
            group_commit_delay: Duration::from_millis(250),
            group_commit_bytes: 0, // time bound only
            ..WalConfig::new(&dir)
        };
        let (wal, _) = Wal::open(cfg.clone()).unwrap();
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let wal = &wal;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    wal.append(&format!("m v={t} {t}"), 1).unwrap();
                });
            }
        });
        let stats = wal.group_stats();
        assert!(
            stats.fsyncs <= 3,
            "8 simultaneous appends inside one 250ms window must share fsyncs, got {}",
            stats.fsyncs
        );
        assert!(stats.points_per_commit > 1.0, "groups hold more than one point on average");
        drop(wal);
        let (_, rec) = Wal::open(cfg).unwrap();
        assert_eq!(rec.records.len(), 8);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_knobs_disable_grouping() {
        let dir = tmp("legacy");
        let cfg = WalConfig {
            fsync_every_append: true,
            group_commit_delay: Duration::ZERO,
            group_commit_bytes: 0,
            ..WalConfig::new(&dir)
        };
        let (wal, _) = Wal::open(cfg.clone()).unwrap();
        for i in 0..10 {
            wal.append(&format!("m v={i} {i}"), 1).unwrap();
        }
        let stats = wal.group_stats();
        assert_eq!(stats.group_commits, 0, "legacy path never forms groups");
        assert_eq!(stats.fsyncs, 10, "one fsync per append");
        drop(wal);
        let (_, rec) = Wal::open(cfg).unwrap();
        assert_eq!(rec.records.len(), 10);
        let _ = fs::remove_dir_all(&dir);
    }
}
