//! Offline shim for the `criterion` crate.
//!
//! The registry is unreachable in this environment, so the workspace vendors
//! a small wall-clock timing harness exposing the criterion API subset the
//! bench files use: [`Criterion::benchmark_group`], group configuration
//! (`sample_size`, `throughput`), `bench_function` / `bench_with_input`,
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], [`BenchmarkId`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is auto-calibrated to batches of
//! roughly a few milliseconds, warmed up, then sampled `sample_size` times;
//! the median ns/iter is reported together with derived throughput. No
//! statistical analysis, plots, or baseline storage — results print to
//! stdout as single lines that downstream tooling can scrape.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput metadata attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s where criterion does.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, running `setup` outside the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The top-level harness.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run(&id, &mut f);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_id();
        self.run(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (prints a separator, matching criterion's API shape).
    pub fn finish(self) {
        println!();
    }

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: grow the iteration count until one batch takes ~2ms,
        // so per-sample timer overhead is amortized away.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 4).min(1 << 24);
        }
        // Warmup once more at the final count, then sample.
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let lo = samples_ns[0];
        let hi = samples_ns[samples_ns.len() - 1];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:>11.4} Kelem/s", n as f64 / median * 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {:>11.4} MiB/s", n as f64 / median * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{}/{:<40} time: [{:.2} ns {:.2} ns {:.2} ns]{}",
            self.name, id, lo, median, hi, rate
        );
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("parse", 8).to_string(), "parse/8");
        assert_eq!(BenchmarkId::from_parameter("hot").to_string(), "hot");
    }

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter_with_setup(|| n, |n| (0..n).sum::<u64>());
        });
        group.finish();
        assert!(ran);
    }
}
