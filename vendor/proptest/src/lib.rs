//! Offline shim for the `proptest` crate.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors a miniature property-testing engine exposing the API subset its
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_filter` / `prop_recursive`, range and tuple strategies,
//! `collection::{vec, btree_map, btree_set}`, `option::of`,
//! `string::string_regex` (character-class + `{m,n}` quantifier subset),
//! `num::f64::NORMAL`, `any::<T>()`, `Just`, [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a seed derived
//! deterministically from the test's module path (reproducible runs, no
//! persistence files), and failing inputs are reported but **not shrunk**.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

pub mod test_runner {
    use std::fmt;

    /// A failed property-test case (carries the assertion message).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        /// A rejected case (filter/assume miss) — treated as failure here;
        /// the engine retries filters internally instead.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic split-mix PRNG driving generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG for one named test case.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
        }

        /// Next raw 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Multiply-shift bounded sampling; bias is negligible for test
            // generation purposes.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::{TestCaseError, TestRng};

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Upper bound on filter retries per case before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48, max_global_rejects: 4096 }
    }
}

/// A value generator. Object is stateless; all randomness flows through the
/// [`TestRng`] so runs are reproducible.
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `f`, regenerating (bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), f }
    }

    /// Builds recursive structures: `self` is the leaf strategy and `f`
    /// wraps an inner strategy into one more level of nesting. `depth`
    /// bounds nesting; the size-hint parameters are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = f(current).boxed();
            // Mix the leaf back in (1/3 weight) so shallow values keep
            // appearing at every depth, like proptest's recursive unions.
            current = Union { arms: vec![leaf.clone(), deeper.clone(), deeper] }.boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1024 consecutive values", self.reason);
    }
}

/// Uniform choice between same-valued strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- scalar strategies ---

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Full-range / unconstrained generation for primitive types.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- tuples of strategies ---

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
}

// --- string literals as regex strategies ---

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Parse errors surface on first generation; string_regex() reports
        // them eagerly instead.
        string::compile(self).expect("invalid regex strategy literal").generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    /// Size specification: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Map with keys/values from the given strategies. The generated map
    /// may be smaller than requested when random keys collide.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Set of values from `element`; may be smaller than requested when
    /// random elements collide, but at least `min > 0` yields non-empty.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng).max(if self.size.min > 0 { 1 } else { 0 });
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use super::*;

    /// Strategy yielding `None` (25%) or `Some` of the inner value.
    pub struct OptionStrategy<S>(S);

    /// Wraps a strategy into `Option`, biased toward `Some` like proptest.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod num {
    //! Numeric strategies.

    pub mod f64 {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// Generator of *normal* floats (finite, non-zero, non-subnormal),
        /// covering the full exponent range with either sign.
        #[derive(Debug, Clone, Copy)]
        pub struct Normal;

        /// The `proptest::num::f64::NORMAL` strategy.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

pub mod string {
    //! Regex-shaped string strategies (character classes + quantifiers).

    use super::*;

    /// A compiled pattern: sequence of atoms with repeat counts.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    #[derive(Debug, Clone)]
    struct Atom {
        /// Candidate characters (expanded from the class or a literal).
        chars: Vec<char>,
        min: usize,
        max: usize, // inclusive
    }

    /// Pattern parse failure.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "regex strategy: {}", self.0)
        }
    }

    fn unescape_class_char(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Compiles the supported regex subset: literals, `\x` escapes, and
    /// `[...]` classes (with `a-z` ranges), each optionally followed by a
    /// `{m}` / `{m,n}` quantifier.
    pub(super) fn compile(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut atoms = Vec::new();
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let Some(&c) = chars.get(i) else {
                            return Err(Error("unterminated character class".into()));
                        };
                        i += 1;
                        match c {
                            ']' => break,
                            '\\' => {
                                let Some(&esc) = chars.get(i) else {
                                    return Err(Error("dangling escape in class".into()));
                                };
                                i += 1;
                                let lit = unescape_class_char(esc);
                                set.push(lit);
                                prev = Some(lit);
                            }
                            '-' if prev.is_some() && chars.get(i).is_some_and(|&n| n != ']') => {
                                let lo = prev.take().unwrap();
                                let mut hi = chars[i];
                                i += 1;
                                if hi == '\\' {
                                    let Some(&esc) = chars.get(i) else {
                                        return Err(Error("dangling escape in class".into()));
                                    };
                                    i += 1;
                                    hi = unescape_class_char(esc);
                                }
                                if (lo as u32) > (hi as u32) {
                                    return Err(Error(format!("inverted range {lo}-{hi}")));
                                }
                                // `lo` was already pushed; extend with the rest.
                                for u in (lo as u32 + 1)..=(hi as u32) {
                                    set.extend(char::from_u32(u));
                                }
                            }
                            other => {
                                set.push(other);
                                prev = Some(other);
                            }
                        }
                    }
                    if set.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    set
                }
                '\\' => {
                    i += 1;
                    let Some(&esc) = chars.get(i) else {
                        return Err(Error("dangling escape".into()));
                    };
                    i += 1;
                    vec![unescape_class_char(esc)]
                }
                '{' | '}' | ']' => {
                    return Err(Error(format!("unexpected `{}` at {}", chars[i], i)));
                }
                lit => {
                    i += 1;
                    vec![lit]
                }
            };
            // Optional quantifier.
            let (min, max) = if chars.get(i) == Some(&'{') {
                i += 1;
                let start = i;
                while chars.get(i).is_some_and(|&c| c != '}') {
                    i += 1;
                }
                if chars.get(i) != Some(&'}') {
                    return Err(Error("unterminated quantifier".into()));
                }
                let body: String = chars[start..i].iter().collect();
                i += 1;
                let parse = |s: &str| {
                    s.trim().parse::<usize>().map_err(|_| Error(format!("bad quantifier `{body}`")))
                };
                match body.split_once(',') {
                    Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                    None => {
                        let n = parse(&body)?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if min > max {
                return Err(Error(format!("inverted quantifier {{{min},{max}}}")));
            }
            atoms.push(Atom { chars: set, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    /// Compiles a pattern into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        compile(pattern)
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
                }
            }
            out
        }
    }
}

thread_local! {
    /// Debug rendering of the current case's inputs, for failure reports.
    pub static CURRENT_CASE_INPUTS: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Runs the cases of one `proptest!`-declared test (called by the macro).
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut one_case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(name, case);
        if let Err(e) = one_case(&mut rng) {
            let inputs = CURRENT_CASE_INPUTS.with(|s| s.borrow().clone());
            panic!("proptest {name}: case {case}/{} failed: {e}\n  inputs: {inputs}", config.cases);
        }
    }
}

pub mod prelude {
    //! The usual imports for property tests.

    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    /// Re-exported for macro use.
    pub use crate as proptest_crate;
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) {..} }`.
/// An optional leading `#![proptest_config(expr)]` overrides the defaults
/// for every test in the block.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(config = $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(config = $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (
        config = $cfg:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // A tuple of strategies is itself a strategy; one generation
                // per case keeps argument draws independent but reproducible.
                let strategies = ($($strat,)+);
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng| {
                        let values = $crate::Strategy::generate(&strategies, rng);
                        $crate::CURRENT_CASE_INPUTS.with(|s| {
                            *s.borrow_mut() = format!("{:?}", values);
                        });
                        let ($($arg,)+) = values;
                        // `mut` is needed only when `$body` mutates captures;
                        // allow it to stay unused for pure bodies.
                        #[allow(unused_mut)]
                        let mut case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            Ok(())
                        };
                        case()
                    },
                );
            }
        )*
    };
}

/// Asserts inside a property test (returns `Err` instead of panicking so
/// the runner can attach case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}", a, b);
    }};
}

/// Discards a case when its precondition fails. This shim has no rejection
/// bookkeeping; the case simply passes vacuously.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
fn string_regex_smoke() -> string::RegexGeneratorStrategy {
    string::string_regex("[a-zA-Z0-9 _\\-\"\\\\\n\t]{0,16}").unwrap()
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = (3i64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0..2.0f64).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_class_quantifier() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 1);
        let s = crate::string::string_regex("[a-c]{2,5}").unwrap();
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)));
        }
        // Escapes and literals seen in this workspace's patterns.
        let s = crate::string_regex_smoke();
        let mut rng2 = crate::test_runner::TestRng::for_case("t", 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng2);
            assert!(v.len() <= 16);
        }
    }

    proptest! {
        #[test]
        fn macro_round_trip(v in crate::collection::vec(0u8..10, 1..8)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        /// Config override applies (smoke: just runs).
        #[test]
        fn config_override(x in 0u32..5, flag in any::<bool>()) {
            prop_assert!(x < 5);
            let _ = flag;
        }
    }
}
