//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no registry access, so this workspace vendors a
//! minimal API-compatible subset over `std::sync`. Semantics match what the
//! stack relies on: guards released on drop, no poisoning (a panicked
//! holder's poison is swallowed, like parking_lot), `const`-constructible.
//! Fairness and low-level parking are not reproduced — uncontended
//! performance is within noise for the lock-striping this repo does.

use std::fmt;
use std::sync;

/// A mutex that does not poison: a panic while holding the lock leaves the
/// data accessible (parking_lot behaviour).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(0u64));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = l.clone();
                std::thread::spawn(move || *l.read())
            })
            .collect();
        for r in readers {
            assert_eq!(r.join().unwrap(), 0);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // still usable
    }
}
