//! Offline placeholder for the `rand` crate.
//!
//! Several workspace crates declare `rand` in their manifests but none
//! import it; this empty crate exists solely so `cargo` can resolve the
//! dependency without registry access. If a crate starts using `rand`,
//! replace this with a real implementation or drop the dependency.
