//! Offline shim for the `crossbeam-channel` crate.
//!
//! A multi-producer **multi-consumer** FIFO channel over `Mutex` +
//! `Condvar`, covering the subset the stack uses: `bounded`/`unbounded`
//! construction, cloneable senders *and* receivers (the router's forwarder
//! pool drains one queue from several workers), `try_send`, blocking
//! `send`/`recv`, `recv_timeout`, and emptiness/length probes.
//! Disconnection follows crossbeam semantics: receives drain the buffer
//! before reporting disconnect; sends fail once all receivers are gone.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is full.
    Full(T),
    /// All receivers were dropped.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Sender::send`] when all receivers were dropped.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders were dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders were dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when a message is popped or the last receiver leaves.
    not_full: Condvar,
    capacity: Option<usize>,
}

impl<T> Inner<T> {
    fn new(capacity: Option<usize>) -> Arc<Self> {
        Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        })
    }
}

/// The sending half; cloneable.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half; cloneable (multi-consumer).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a channel holding at most `cap` messages. `cap = 0` is promoted
/// to 1 (this shim has no rendezvous mode; the stack never uses it).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let inner = Inner::new(Some(cap.max(1)));
    (Sender { inner: inner.clone() }, Receiver { inner })
}

/// Creates a channel with unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Inner::new(None);
    (Sender { inner: inner.clone() }, Receiver { inner })
}

impl<T> Sender<T> {
    /// Attempts to send without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.inner.capacity {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Sends, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.inner.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.inner.not_full.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// True when no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.state.lock().unwrap().queue.is_empty()
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.state.lock().unwrap();
        match st.queue.pop_front() {
            Some(msg) => {
                drop(st);
                self.inner.not_full.notify_one();
                Ok(msg)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Receives, blocking until a message arrives or all senders leave.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.inner.not_empty.wait(st).unwrap();
        }
    }

    /// Receives with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self.inner.not_empty.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// True when no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.state.lock().unwrap().queue.is_empty()
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Iterator yielding buffered messages without blocking; stops at the
    /// first moment the channel is empty.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver { inner: self.inner.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.inner.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = bounded::<i32>(4);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1); // drains before disconnect
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded::<i32>(4);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(1);
        let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn multi_consumer_drains_everything_once() {
        let (tx, rx) = bounded(1024);
        let counters: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut n = 0u32;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u32 = counters.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
