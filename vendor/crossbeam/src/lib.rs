//! Offline placeholder for the `crossbeam` umbrella crate.
//!
//! `lms-apps` declares it but never imports it; this empty crate satisfies
//! dependency resolution without registry access. Channel functionality
//! lives in the vendored `crossbeam-channel` shim.
